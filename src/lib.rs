//! # aptq
//!
//! Umbrella crate for the APTQ (DAC 2024) reproduction: re-exports the
//! full stack so examples and downstream users need a single dependency.
//!
//! - [`tensor`]: dense linear algebra (matrices, Cholesky, softmax).
//! - [`lm`]: the LLaMA-family transformer substrate (train + infer).
//! - [`textgen`]: synthetic corpora, tokenizer and zero-shot tasks.
//! - [`quant`]: the quantization library — GPTQ, **APTQ**, RTN, OWQ,
//!   PB-LLM, SmoothQuant, FPQ and QAT baselines, plus the Hessian-trace
//!   mixed-precision allocator.
//! - [`qmodel`]: packed-weight inference — run the transformer straight
//!   from 2/4-bit storage (the edge-deployment path).
//! - [`eval`]: perplexity and zero-shot evaluation pipelines.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index mapping every table/figure of the paper to a harness target.

pub use aptq_core as quant;
pub use aptq_eval as eval;
pub use aptq_lm as lm;
pub use aptq_qmodel as qmodel;
pub use aptq_tensor as tensor;
pub use aptq_textgen as textgen;
