//! Derive macros for the workspace's vendored mini-serde.
//!
//! The build container has no crates.io access, so `syn`/`quote` are not
//! available; the item is parsed directly from the [`proc_macro`] token
//! stream and the generated impls are assembled as source text. Supported
//! shapes — which cover every derive site in this workspace — are:
//!
//! - non-generic structs with named fields,
//! - non-generic enums whose variants are units or carry named fields.
//!
//! - structs with **type** parameters (optionally bounded / defaulted),
//!   e.g. `struct ModelOf<L = Linear> { .. }`: the generated impl bounds
//!   every parameter by the derived trait, mirroring real serde's
//!   inferred bounds.
//!
//! Anything else (tuple structs, lifetime/const generics, generic enums,
//! tuple variants) produces a `compile_error!` naming the unsupported
//! construct. Field-level `#[serde(...)]` attributes are accepted and
//! ignored: the value-based data model has no use for them, and erroring
//! would make the stub gratuitously incompatible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the workspace mini-serde trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the workspace mini-serde trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// A parsed item: name plus shape. `params` holds the names of type
/// parameters (empty for non-generic items).
enum Item {
    Struct {
        name: String,
        params: Vec<String>,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .unwrap_or_default()
        }
    };
    let src = match (mode, &item) {
        (
            Mode::Serialize,
            Item::Struct {
                name,
                params,
                fields,
            },
        ) => ser_struct(name, params, fields),
        (
            Mode::Deserialize,
            Item::Struct {
                name,
                params,
                fields,
            },
        ) => de_struct(name, params, fields),
        (Mode::Serialize, Item::Enum { name, variants }) => ser_enum(name, variants),
        (Mode::Deserialize, Item::Enum { name, variants }) => de_enum(name, variants),
    };
    src.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"mini-serde derive generated invalid code: {e}\");")
            .parse()
            .unwrap_or_default()
    })
}

/// Renders `impl<..bounded..>` and `<..plain..>` generic lists for a
/// struct's type parameters, each bounded by `trait_path` (mirroring
/// real serde's inferred per-parameter bounds).
fn generics(params: &[String], trait_path: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let bounded = params
        .iter()
        .map(|p| format!("{p}: {trait_path}"))
        .collect::<Vec<_>>()
        .join(", ");
    let plain = params.join(", ");
    (format!("<{bounded}>"), format!("<{plain}>"))
}

fn ser_struct(name: &str, params: &[String], fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_content(&self.{f})),"
            )
        })
        .collect();
    let (impl_g, ty_g) = generics(params, "::serde::Serialize");
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn de_struct(name: &str, params: &[String], fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\
                 ::serde::Content::field(__c, {name:?}, {f:?})?)?,"
            )
        })
        .collect();
    let (impl_g, ty_g) = generics(params, "::serde::Deserialize");
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {entries} }})\n\
             }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(v, fields)| {
            if fields.is_empty() {
                format!(
                    "{name}::{v} => \
                     ::serde::Content::Str(::std::string::String::from({v:?})),"
                )
            } else {
                let binds = fields.join(", ");
                let entries: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_content({f})),"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from({v:?}), \
                      ::serde::Content::Map(::std::vec![{entries}]))]),"
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn de_enum(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, fields)| fields.is_empty())
        .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter(|(_, fields)| !fields.is_empty())
        .map(|(v, fields)| {
            let tag = format!("{name}::{v}");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::Content::field(__inner, {tag:?}, {f:?})?)?,"
                    )
                })
                .collect();
            format!("{v:?} => ::std::result::Result::Ok({name}::{v} {{ {entries} }}),")
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::unknown_variant({name:?}, __other)),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::unknown_variant({name:?}, __other)),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::DeError::invalid_shape({name:?})),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

/// Parses the derive input down to names only; types are irrelevant to
/// the value-based data model (field types are recovered via inference
/// at the `Deserialize::from_content` call sites).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = ident_at(&tokens, i).ok_or("mini-serde derive: expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i)
        .ok_or("mini-serde derive: expected a type name")?
        .to_string();
    i += 1;
    let params = parse_type_params(&tokens, &mut i, &name)?;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "mini-serde derive: `{name}` is a tuple struct, which is unsupported"
            ));
        }
        _ => return Err(format!("mini-serde derive: `{name}` has no braced body")),
    };
    match kw.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            params,
            fields: parse_named_fields(body)?,
        }),
        "enum" => {
            if !params.is_empty() {
                return Err(format!(
                    "mini-serde derive: enum `{name}` is generic, which is unsupported"
                ));
            }
            let variants = parse_variants(body, &name)?;
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!(
            "mini-serde derive: unsupported item kind `{other}`"
        )),
    }
}

/// Parses an optional `<...>` type-parameter list at `*i`, returning the
/// parameter names. Bounds (`: Trait`) and defaults (`= Type`) are
/// accepted and discarded — only the names matter for the generated
/// impl. Lifetime and `const` parameters are rejected: the vendored
/// `Deserialize` trait produces owned values, so borrowed fields cannot
/// round-trip, and const generics would need value (not trait) bounds.
fn parse_type_params(
    tokens: &[TokenTree],
    i: &mut usize,
    name: &str,
) -> Result<Vec<String>, String> {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok(Vec::new());
    }
    *i += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    // At depth 1 and the start of a parameter we expect an identifier
    // (the parameter name); everything until the next depth-1 comma is
    // bound/default noise to skip.
    let mut at_param_start = true;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return Ok(params);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err(format!(
                    "mini-serde derive: `{name}` has a lifetime parameter, \
                     which is unsupported"
                ));
            }
            TokenTree::Ident(id) if at_param_start && depth == 1 => {
                if id.to_string() == "const" {
                    return Err(format!(
                        "mini-serde derive: `{name}` has a const parameter, \
                         which is unsupported"
                    ));
                }
                params.push(id.to_string());
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    Err(format!(
        "mini-serde derive: unclosed generic parameter list on `{name}`"
    ))
}

/// Parses `name: Type, ...` named fields, skipping attributes and
/// visibility, tracking `<`/`>` depth so generic argument commas do not
/// split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_at(&tokens, i).ok_or_else(|| {
            format!(
                "mini-serde derive: expected a field name, got `{}`",
                tokens[i]
            )
        })?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "mini-serde derive: field `{field}` is missing `: Type`"
                ))
            }
        }
        skip_type_to_comma(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

/// Parses enum variants: `Name`, `Name { fields }`; tuple variants are
/// rejected.
fn parse_variants(
    body: TokenStream,
    enum_name: &str,
) -> Result<Vec<(String, Vec<String>)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = ident_at(&tokens, i)
            .ok_or_else(|| format!("mini-serde derive: expected a variant of `{enum_name}`"))?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "mini-serde derive: tuple variant `{enum_name}::{variant}` is unsupported"
                ));
            }
            _ => Vec::new(),
        };
        // Skip any discriminant (`= expr`) up to the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((variant, fields));
    }
    Ok(variants)
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes (including doc comments) and
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past a type, stopping after the field-separating comma (or
/// at end of stream). Tracks angle-bracket depth so `BTreeMap<K, V>`
/// commas do not terminate the field.
fn skip_type_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
