//! Offline vendored mini `serde_json`.
//!
//! Renders the vendored mini-serde [`Content`] tree to JSON text and
//! parses JSON text back into it. Format notes inherited from the data
//! model: maps appear as arrays of `[key, value]` pairs, non-finite
//! floats as `null`. Floats round-trip exactly: Rust's `Display` for
//! `f64` emits the shortest decimal that re-parses to the same bits.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for this mini implementation; the `Result` mirrors the
/// upstream `serde_json` signature so call sites stay unchanged.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = Parser::new(text).parse_document()?;
    Ok(T::from_content(&content)?)
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => {
            let mut buf = itoa_buffer();
            let _ = fmt::Write::write_fmt(&mut buf, format_args!("{v}"));
            out.push_str(&buf);
        }
        Content::U64(v) => {
            let mut buf = itoa_buffer();
            let _ = fmt::Write::write_fmt(&mut buf, format_args!("{v}"));
            out.push_str(&buf);
        }
        Content::F64(v) => {
            if v.is_finite() {
                let mut buf = itoa_buffer();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("{v}"));
                // `Display` omits the decimal point for integral floats;
                // keep it so the parser reads the token back as a float.
                if !buf.contains(['.', 'e', 'E']) {
                    buf.push_str(".0");
                }
                out.push_str(&buf);
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("\\u{:04x}", c as u32));
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u8).as_deref(), Ok("3"));
        assert_eq!(from_str::<u8>("3"), Ok(3));
        assert_eq!(from_str::<i64>("-12"), Ok(-12));
        assert_eq!(to_string(&true).as_deref(), Ok("true"));
        let x: f32 = 0.1;
        let s = to_string(&x).expect("serialize f32");
        assert_eq!(from_str::<f32>(&s), Ok(x));
    }

    #[test]
    fn u64_precision_survives() {
        let big: u64 = (1 << 60) + 12345;
        let s = to_string(&big).expect("serialize u64");
        assert_eq!(from_str::<u64>(&s), Ok(big));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\té\u{1F600}".to_string();
        let j = to_string(&s).expect("serialize string");
        assert_eq!(from_str::<String>(&j), Ok(s));
        // Escaped surrogate-pair form also parses.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\""),
            Ok("\u{1F600}".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.5f64], vec![], vec![-2.0, 3.0]];
        let s = to_string(&v).expect("serialize nested vec");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s), Ok(v));
    }

    #[test]
    fn whitespace_tolerated_and_garbage_rejected() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ]  "), Ok(vec![1, 2]));
        assert!(from_str::<Vec<u8>>("[1,2] trailing").is_err());
        assert!(from_str::<u8>("[").is_err());
        assert!(from_str::<u8>("{\"a\":}").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&2.0f64).expect("serialize");
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s), Ok(2.0));
    }
}
