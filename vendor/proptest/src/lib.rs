//! Offline vendored mini-proptest.
//!
//! Deterministic randomized property testing with the subset of the
//! `proptest` 1.x surface this workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), range strategies over the numeric
//! primitives, [`collection::vec`], [`bool::ANY`], `prop_map`, and the
//! `prop_assert*` macros. Each test function derives its RNG seed from
//! its own name, so failures are reproducible run to run; there is no
//! shrinking — the failing inputs are printed instead.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Execution harness types used by the [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of randomized cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case; produced by the `prop_assert*` macros.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-property runner: a deterministic RNG plus the case budget.
    #[derive(Debug)]
    pub struct TestRunner {
        /// Source of all randomness for this property.
        pub rng: StdRng,
        /// Number of cases to run.
        pub cases: u32,
    }

    impl TestRunner {
        /// Builds a runner whose RNG seed is a hash of the property name,
        /// so every run of the same test sees the same case sequence.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
                cases: config.cases,
            }
        }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec strategy: empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property test functions; see the crate docs for the
/// supported grammar (`fn name(arg in strategy, ...) { body }` items,
/// optionally preceded by `#![proptest_config(expr)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __runner =
                $crate::test_runner::TestRunner::new(__config, stringify!($name));
            for __case in 0..__runner.cases {
                // Render inputs before the body may move them; sample
                // into a temporary first so pattern args (e.g. tuple
                // destructuring) can still be formatted as a whole.
                let mut __inputs = ::std::string::String::new();
                $(
                    let __sampled = $crate::Strategy::sample(&($strat), &mut __runner.rng);
                    __inputs.push_str(&::std::format!(
                        "\n    {} = {:?}",
                        stringify!($arg),
                        &__sampled
                    ));
                    let $arg = __sampled;
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs:{}",
                        stringify!($name),
                        __case + 1,
                        __runner.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        ::std::format!(
                            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            ::std::format!($($fmt)+),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current property case unless the two sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                        ::std::format!(
                            "assertion failed: `{} != {}`: {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            ::std::format!($($fmt)+),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_honor_bounds(x in 3u8..=9, y in -2.0f32..2.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_honor_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn prop_map_applies(v in (1u8..5).prop_map(|x| x * 10)) {
            prop_assert!((10..50).contains(&v));
            prop_assert_eq!(v % 10, 0);
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            prop_assert_ne!(u8::from(b), 2, "bool strategy must yield a bool");
        }
    }

    #[test]
    fn same_name_same_sequence() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        use crate::Strategy;
        let mut a = TestRunner::new(ProptestConfig::default(), "x");
        let mut b = TestRunner::new(ProptestConfig::default(), "x");
        for _ in 0..50 {
            assert_eq!(
                (0u32..1000).sample(&mut a.rng),
                (0u32..1000).sample(&mut b.rng)
            );
        }
    }
}
