//! Offline vendored criterion shim.
//!
//! The build container has no crates.io access, so the bench harness is
//! a minimal stand-in: each `Bencher::iter` call runs the routine a
//! small fixed number of times and prints the mean wall-clock duration.
//! It exists so `cargo bench` still produces comparable smoke numbers
//! and — more importantly — so the bench targets keep compiling under
//! `cargo clippy --all-targets` and dependency resolution.

use std::time::{Duration, Instant};

/// Timing driver handed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Number of measured iterations per benchmark (upstream default 100;
    /// the shim default is small because it times one-shot).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.effective_samples(),
            _c: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let samples = self.effective_samples();
        run_one(name, samples, &mut f);
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            5
        } else {
            self.sample_size.min(20)
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 20);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.samples, &mut f);
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter label.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// A label carrying only the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `samples` calls of `routine` and accumulates the result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(std::hint::black_box(out));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.total / bencher.iters
    };
    println!(
        "bench {label:<40} mean {mean:>12.3?} over {} iters",
        bencher.iters
    );
}

/// Declares a bench entry point; both the plain and the
/// `name/config/targets` forms of the upstream macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
