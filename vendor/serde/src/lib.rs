//! Offline vendored mini-serde.
//!
//! The build container has no crates.io access, so the workspace ships a
//! deliberately small, value-based replacement for `serde`'s data model:
//! a [`Serialize`] trait lowering values into a self-describing
//! [`Content`] tree, and a [`Deserialize`] trait lifting them back out.
//! `serde_json` (also vendored) renders `Content` to JSON text and
//! parses it back. The `#[derive(Serialize, Deserialize)]` macros are
//! re-exported from the vendored `serde_derive`.
//!
//! Deviations from upstream serde, chosen for simplicity:
//!
//! - Maps serialize as a sequence of `[key, value]` pairs, so non-string
//!   keys (e.g. `BTreeMap<LayerRef, u8>`) round-trip without a key
//!   stringification story. JSON output is therefore an array of pairs
//!   rather than an object for map-typed fields.
//! - Non-finite floats serialize as `Null` and deserialize as `NaN`.
//! - There is no zero-copy deserialization and no lifetime parameter.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// The self-describing value tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`; also the encoding of `None` and non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A binary float (finite).
    F64(f64),
    /// A string (also the encoding of unit enum variants).
    Str(String),
    /// A sequence (also the encoding of maps, as `[key, value]` pairs).
    Seq(Vec<Content>),
    /// A string-keyed record: structs and payload-carrying enum variants.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a field of a struct-shaped [`Content::Map`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if `self` is not a map or the field is absent.
    pub fn field<'a>(&'a self, ty: &str, name: &str) -> Result<&'a Content, DeError> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}` while reading {ty}"))),
            other => Err(DeError(format!(
                "expected a map for {ty}, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: a message naming the type and the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An unrecognized enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }

    /// A content tree whose shape does not match the target type.
    pub fn invalid_shape(ty: &str) -> Self {
        DeError(format!("content shape does not match {ty}"))
    }

    fn expected(ty: &str, found: &Content) -> Self {
        DeError(format!("expected {ty}, found {}", found.kind_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into the [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a self-describing value.
    fn to_content(&self) -> Content;
}

/// Lifts a value out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value, erroring on shape mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the content tree does not match `Self`.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), c))?,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::expected(stringify!($t), c))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(v) => Content::I64(v),
                    Err(_) => Content::U64(u64::from(*self)),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match c {
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), c))?,
                    Content::U64(v) => *v,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::expected(stringify!($t), c))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        (*self as u64).to_content()
    }
}

impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = u64::from_content(c)?;
        usize::try_from(v).map_err(|_| DeError::expected("usize", c))
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = i64::from_content(c)?;
        isize::try_from(v).map_err(|_| DeError::expected("isize", c))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        if self.is_finite() {
            Content::F64(*self)
        } else {
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        // Widening f32 → f64 is exact, so Display shortest-round-trip
        // output of the f64 reproduces the original f32 on re-parse.
        f64::from(*self).to_content()
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(f64::from_content(c)? as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::from_content(c)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError(format!("expected an array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

fn pair_to_content<K: Serialize, V: Serialize>(k: &K, v: &V) -> Content {
    Content::Seq(vec![k.to_content(), v.to_content()])
}

fn content_to_pair<K: Deserialize, V: Deserialize>(c: &Content) -> Result<(K, V), DeError> {
    match c {
        Content::Seq(kv) if kv.len() == 2 => {
            Ok((K::from_content(&kv[0])?, V::from_content(&kv[1])?))
        }
        other => Err(DeError::expected("a [key, value] pair", other)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(|(k, v)| pair_to_content(k, v)).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(content_to_pair).collect(),
            other => Err(DeError::expected("a map (pair sequence)", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(|(k, v)| pair_to_content(k, v)).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(content_to_pair).collect(),
            other => Err(DeError::expected("a map (pair sequence)", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("a tuple sequence", other)),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::from_content(&42u8.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(usize::from_content(&123usize.to_content()), Ok(123));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hé".to_string().to_content()),
            Ok("hé".to_string())
        );
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1f32, -3.75, f32::MIN_POSITIVE, 1.0e30] {
            assert_eq!(f32::from_content(&v.to_content()), Ok(v));
        }
        assert!(f32::from_content(&f32::NAN.to_content()).unwrap().is_nan());
    }

    #[test]
    fn u64_beyond_i64_round_trips() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_content(&big.to_content()), Ok(big));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert((1u8, 2u8), "x".to_string());
        assert_eq!(
            BTreeMap::<(u8, u8), String>::from_content(&m.to_content()),
            Ok(m)
        );
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_content(&o.to_content()), Ok(o));
        assert_eq!(Option::<f64>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_content(&300u32.to_content()).is_err());
        assert!(u32::from_content(&(-1i32).to_content()).is_err());
    }
}
