//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io mirror, so
//! the workspace vendors the minimal subset of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! initialization, sampling, and property-test data generation. It is
//! **not** the upstream `StdRng` (ChaCha12) and makes no cryptographic
//! claims; sequences differ from upstream `rand` for the same seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose entire stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling adapters over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b` over the integer and float types the workspace uses).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can produce a uniform sample from one 64-bit word.
pub trait SampleRange<T> {
    /// Maps a uniform 64-bit word into the range.
    fn sample_from(self, word: u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, word: u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (word as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, word: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (word as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $mant:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, word: u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Uniform in [0, 1): `mant` top bits over 2^mant.
                let unit = (word >> (64 - $mant)) as $t / (1u64 << $mant) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up onto the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, word: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Uniform in [0, 1]: denominator 2^mant - 1 includes both ends.
                let unit = (word >> (64 - $mant)) as $t / ((1u64 << $mant) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32 => 24, f64 => 53);

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; same name so call sites
    /// keep the `rand` 0.8 spelling.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&v));
            let w: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&w));
            let x: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b}");
        }
    }
}
