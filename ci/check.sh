#!/usr/bin/env bash
# Workspace gate: formatting, lints, static audit, build, tests.
# Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

phase_t0=$SECONDS
phase() {
    if [ -n "${phase_name:-}" ]; then
        echo "    [timing] ${phase_name}: $((SECONDS - phase_t0))s"
    fi
    phase_name=$1
    phase_t0=$SECONDS
    echo "==> $1"
}

phase "cargo fmt --check"
cargo fmt --all --check

phase "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

phase "aptq-audit (A+D+H+N ratchet against results/audit-baseline.json)"
# Fails on findings not in the committed baseline (exit 1) and on stale
# baseline entries whose findings are already fixed (exit 3) — the
# baseline may only shrink. Findings print with their `= suggestion:`
# fix text; the full report is archived as an artifact.
mkdir -p results
cargo run -q -p aptq-audit -- \
    --ratchet results/audit-baseline.json \
    --json-out results/audit.json

phase "cargo build --release"
cargo build --workspace --release

phase "cargo test"
cargo test --workspace -q

phase "determinism suite (scheduler thread-count invariance)"
for threads in 1 4; do
    echo "    APTQ_THREADS=$threads"
    APTQ_THREADS=$threads cargo test -q -p aptq-core --test determinism
    APTQ_THREADS=$threads cargo test -q -p aptq-eval --test determinism
    APTQ_THREADS=$threads cargo test -q -p aptq-lm batch_grads_bit_identical
    APTQ_THREADS=$threads cargo test -q -p aptq-qmodel --test unified_path
    APTQ_THREADS=$threads cargo test -q -p aptq-textgen --test determinism
done

phase "telemetry snapshot (archived as results/telemetry.json)"
# The bench asserts the counters' structural invariants (zero qlinear
# fallbacks, O(T) KV write traffic, Hessian cache hits) and writes the
# Recorder snapshot under results/.
cargo run -q -p aptq-bench --bin telemetry --release > /dev/null

echo "    [timing] ${phase_name}: $((SECONDS - phase_t0))s"
echo "All checks passed."
