#!/usr/bin/env bash
# Workspace gate: formatting, lints, static audit, build, tests.
# Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> aptq-audit"
cargo run -q -p aptq-audit

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> determinism suite (scheduler thread-count invariance)"
for threads in 1 4; do
    echo "    APTQ_THREADS=$threads"
    APTQ_THREADS=$threads cargo test -q -p aptq-core --test determinism
    APTQ_THREADS=$threads cargo test -q -p aptq-eval --test determinism
done

echo "All checks passed."
