#!/usr/bin/env bash
# Workspace gate: formatting, lints, static audit, build, tests.
# Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

phase_t0=$SECONDS
phase() {
    if [ -n "${phase_name:-}" ]; then
        echo "    [timing] ${phase_name}: $((SECONDS - phase_t0))s"
    fi
    phase_name=$1
    phase_t0=$SECONDS
    echo "==> $1"
}

phase "cargo fmt --check"
cargo fmt --all --check

phase "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

phase "aptq-audit (A+D+E+H+N+U ratchet against results/audit-baseline.json)"
# Fails on findings not in the committed baseline (exit 1) and on stale
# baseline entries whose findings are already fixed (exit 3) — the
# baseline may only shrink (it is empty as of the D006 doc burn-down;
# workspace_audit.rs pins it empty). Findings print with their
# `= suggestion:` fix text; the full report and the inferred effects
# manifest are archived as artifacts. E004 inside the run diffs the
# committed results/effects.json against the tree, so a drifted
# manifest is itself a finding.
mkdir -p results
cargo run -q -p aptq-audit -- \
    --ratchet results/audit-baseline.json \
    --json-out results/audit.json \
    --effects-out results/effects.json

phase "aptq-audit self-check (sabotage fixture must light up)"
# A refactor that disconnects a rule from the pipeline makes the audit
# report "clean" on everything — indistinguishable from a healthy tree.
# Run the audit over a fixture with seeded violations and require a
# non-trivial finding count: zero findings here means the auditor, not
# the tree, is broken.
fixture_exit=0
cargo run -q -p aptq-audit -- \
    --root crates/audit/fixtures/sabotage \
    --json > results/audit-selfcheck.json || fixture_exit=$?
if [ "$fixture_exit" -ne 1 ]; then
    echo "self-check: expected exit 1 (findings) on the sabotage fixture, got $fixture_exit" >&2
    exit 1
fi
selfcheck_count=$(grep -o '"rule":' results/audit-selfcheck.json | wc -l)
if [ "$selfcheck_count" -lt 7 ]; then
    echo "self-check: expected >=7 findings on the sabotage fixture, got $selfcheck_count" >&2
    exit 1
fi
echo "    self-check: $selfcheck_count findings on seeded violations"

phase "effects manifest byte-stability (APTQ_THREADS invariance)"
# The manifest is a CI diff artifact: two fresh runs — across thread
# counts — must produce identical bytes or the E004 gate is flaky.
for threads in 1 4; do
    APTQ_THREADS=$threads cargo run -q -p aptq-audit -- \
        -q --effects-out "results/effects-t$threads.json" || true
    cmp results/effects.json "results/effects-t$threads.json" || {
        echo "effects manifest not byte-stable at APTQ_THREADS=$threads" >&2
        exit 1
    }
    rm -f "results/effects-t$threads.json"
done

phase "cargo build --release"
cargo build --workspace --release

phase "cargo test"
cargo test --workspace -q

phase "determinism suite (scheduler thread-count invariance)"
for threads in 1 4; do
    echo "    APTQ_THREADS=$threads"
    APTQ_THREADS=$threads cargo test -q -p aptq-core --test determinism
    APTQ_THREADS=$threads cargo test -q -p aptq-eval --test determinism
    APTQ_THREADS=$threads cargo test -q -p aptq-lm batch_grads_bit_identical
    APTQ_THREADS=$threads cargo test -q -p aptq-lm --test batch_decode
    APTQ_THREADS=$threads cargo test -q -p aptq-qmodel --test unified_path
    APTQ_THREADS=$threads cargo test -q -p aptq-qmodel --test batch_decode
    APTQ_THREADS=$threads cargo test -q -p aptq-textgen --test determinism
done

phase "chaos suite (seeded fault injection, archived as results/chaos.json)"
# Every injected fault must be detected (structured error, no panic)
# or provably harmless; the report itself is part of the determinism
# contract — two runs across thread counts must be byte-identical.
cargo run -q -p aptq-chaos --bin chaos --release -- --out results/chaos.json
for threads in 1 4; do
    APTQ_THREADS=$threads cargo run -q -p aptq-chaos --bin chaos --release -- \
        --out "results/chaos-t$threads.json"
    cmp results/chaos.json "results/chaos-t$threads.json" || {
        echo "chaos report not byte-stable at APTQ_THREADS=$threads" >&2
        exit 1
    }
    rm -f "results/chaos-t$threads.json"
done

phase "telemetry snapshot (archived as results/telemetry.json)"
# The bench asserts the counters' structural invariants (zero qlinear
# fallbacks, O(T) KV write traffic, Hessian cache hits) and writes the
# Recorder snapshot under results/.
cargo run -q -p aptq-bench --bin telemetry --release > /dev/null

echo "    [timing] ${phase_name}: $((SECONDS - phase_t0))s"
echo "All checks passed."
