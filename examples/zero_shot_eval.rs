//! Zero-shot evaluation — a miniature of the paper's Table 2.
//!
//! Evaluates the fp16 model and two quantized variants on the five
//! synthetic common-sense suites (stand-ins for PIQA, HellaSwag, ARC-E,
//! ARC-C and WinoGrande), scoring by length-normalized log-likelihood
//! like the lm-eval-harness.
//!
//! ```text
//! cargo run --example zero_shot_eval --release
//! ```

use aptq::eval::evaluate_suites;
use aptq::eval::pipeline::{quantize_clone, Method};
use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq::quant::grid::GridConfig;
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq::textgen::{TaskSuite, ZeroShotTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pretraining TinyLlama-S (quick budget)…");
    let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None)?;
    let mut calib_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 314);
    let calibration = calib_gen.segments(24, 48);

    let suites: Vec<TaskSuite> = ZeroShotTask::ALL
        .iter()
        .map(|&t| TaskSuite::generate(t, &stack.grammar, &stack.tokenizer, 80, 2718))
        .collect();

    let methods = [
        Method::Fp16,
        Method::AptqMixed { ratio: 0.9 },
        Method::Rtn { bits: 2 },
    ];

    println!(
        "\n| Method | {} | Mean |",
        ZeroShotTask::ALL.map(|t| t.paper_name()).join(" | ")
    );
    println!("|---|---|---|---|---|---|---|");
    for method in methods {
        let (model, _) =
            quantize_clone(&stack.model, method, &calibration, &GridConfig::default())?;
        let results = evaluate_suites(&model, &suites)?;
        let cells: Vec<String> = results
            .iter()
            .map(|r| format!("{:.1}", r.accuracy * 100.0))
            .collect();
        println!("| {} | {} |", method.label(), cells.join(" | "));
    }
    println!("\n(chance: 25.0 for the four 4-way suites, 50.0 for WinoGrande)");
    Ok(())
}
