//! Quickstart: the smallest end-to-end APTQ run.
//!
//! Trains a small LLaMA-style model on the synthetic corpus for a few
//! seconds, quantizes it with APTQ at an average of 3.5 bits (75% of
//! weights at 4-bit, the rest at 2-bit, allocated by Hessian trace), and
//! compares perplexity before and after.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use aptq::eval::perplexity;
use aptq::eval::pipeline::{quantize_clone, Method};
use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq::quant::grid::GridConfig;
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A pretrained model (trains in-process on first call; the paper
    //    starts from LLaMA checkpoints — see DESIGN.md for the
    //    substitution).
    println!("pretraining TinyLlama-S on the synthetic corpus…");
    let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None)?;
    println!(
        "  done (final training loss {:.3} nats/token)",
        stack.final_loss
    );

    // 2. Calibration data: fresh segments from the training distribution,
    //    as the paper samples 128 segments of C4.
    let mut calib_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 1234);
    let calibration = calib_gen.segments(24, 48);

    // 3. Held-out evaluation segments.
    let mut eval_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 5678);
    let eval_segments = eval_gen.segments(12, 48);

    let fp16_ppl = perplexity(&stack.model, &eval_segments)?;
    println!("fp16 perplexity: {fp16_ppl:.3}");

    // 4. Quantize with APTQ at R = 75% (avg 3.5 bits, Eq. 18) and with
    //    GPTQ-4bit for comparison.
    let cfg = GridConfig::default();
    for method in [
        Method::Gptq { bits: 4 },
        Method::AptqUniform { bits: 4 },
        Method::AptqMixed { ratio: 0.75 },
    ] {
        let (quantized, measured_bits) = quantize_clone(&stack.model, method, &calibration, &cfg)?;
        let ppl = perplexity(&quantized, &eval_segments)?;
        println!(
            "{:<24} avg {:.2} bits → perplexity {ppl:.3} (Δ {:+.3})",
            method.label(),
            measured_bits,
            ppl - fp16_ppl
        );
    }
    Ok(())
}
