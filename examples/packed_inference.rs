//! Packed-weight inference — the edge-deployment execution path.
//!
//! Builds a deployable [`aptq::qmodel::QuantizedModel`] (APTQ-75% mixed
//! 2/4-bit plan, packed codes + group parameters), verifies it is
//! bit-identical to the simulated-quantization reference, reports the
//! memory budget, and generates text straight from packed storage
//! through the KV-cached incremental decoder (O(T) per token, not a
//! full re-forward).
//!
//! ```text
//! cargo run --example packed_inference --release
//! ```

use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq::qmodel::QuantizedModel;
use aptq::quant::grid::GridConfig;
use aptq::quant::methods::apply_plan_obq;
use aptq::quant::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq::quant::{HessianMode, QuantSession};
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pretraining TinyLlama-S (quick budget)…");
    let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None)?;
    let mut calib_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 99);
    let mut session = QuantSession::new(calib_gen.segments(24, 48));
    let cfg = GridConfig::default();

    // APTQ-75% plan: attention-aware Hessians + empirical-loss allocation,
    // both captured once and cached by the session.
    let hessians = session.hessians(&stack.model, HessianMode::AttentionAware)?;
    let sensitivity = session.sensitivity(&stack.model, 2, &cfg)?;
    let plan = MixedPrecisionAllocator::two_four(0.75)?.allocate(
        &stack.model,
        &sensitivity,
        AllocationPolicy::HessianTrace,
    );

    // The deployable artifact.
    let qmodel = QuantizedModel::quantize_from(&stack.model, &plan, &hessians, &cfg)?;
    println!("\nmemory: {}", qmodel.memory());

    // Bit-exactness vs the simulated-quantization reference.
    let mut reference = stack.model.clone();
    apply_plan_obq("ref", &mut reference, &plan, &hessians, &cfg)?;
    let probe = stack.tokenizer.encode("the wild crow");
    let a = qmodel.forward(&probe)?;
    let b = reference.forward(&probe);
    let max_diff = a.sub(&b).abs_max();
    println!("packed vs simulated forward, max |Δlogit|: {max_diff:.2e}");
    assert!(
        max_diff < 1e-4,
        "packed execution must match simulated quantization"
    );

    // Generate directly from packed storage.
    let mut prompt = vec![aptq::textgen::tokenizer::BOS];
    prompt.extend(stack.tokenizer.encode("the sharp saw"));
    let out = qmodel.generate_greedy(&prompt, 10)?;
    println!(
        "\npacked-model continuation: {}",
        stack.tokenizer.decode(&out)
    );
    Ok(())
}
