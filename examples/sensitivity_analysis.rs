//! Sensitivity analysis — the right-hand panel of the paper's Figure 1.
//!
//! Collects attention-aware Hessians over a calibration set, ranks every
//! layer by its average Hessian trace (APTQ §3.3), and shows which
//! layers the mixed-precision allocator keeps at 4 bits for a 75%
//! target, next to the manual block-wise baseline.
//!
//! ```text
//! cargo run --example sensitivity_analysis --release
//! ```

use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq::quant::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq::quant::trace::SensitivityReport;
use aptq::quant::{collect_hessians, HessianMode};
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pretraining TinyLlama-S (quick budget)…");
    let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None)?;
    let mut calib_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 42);
    let calibration = calib_gen.segments(24, 48);

    // Attention-aware Hessians (Eqs. 9–15) and the trace ranking.
    let hessians = collect_hessians(&stack.model, &calibration, HessianMode::AttentionAware)?;
    let sensitivity = SensitivityReport::from_hessians(&hessians);

    println!("\nper-layer sensitivity (average Hessian trace, most sensitive first):\n");
    println!("{}", sensitivity.to_markdown());

    // The allocation the paper's Figure 1 sketches: high bits where the
    // trace is high.
    let allocator = MixedPrecisionAllocator::two_four(0.75)?;
    let trace_plan = allocator.allocate(&stack.model, &sensitivity, AllocationPolicy::HessianTrace);
    let block_plan = allocator.allocate(
        &stack.model,
        &sensitivity,
        AllocationPolicy::ManualBlockwise,
    );

    println!("bit allocation at R = 75% (4-bit ratio):\n");
    println!("| layer | trace rank | APTQ bits | manual block-wise bits |");
    println!("|---|---|---|---|");
    for layer in stack.model.layer_refs() {
        let rank = sensitivity
            .entries()
            .iter()
            .position(|e| e.layer == layer)
            .map(|p| (p + 1).to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "| {} | {} | {} | {} |",
            layer,
            rank,
            trace_plan.bits_for(layer).unwrap_or(0),
            block_plan.bits_for(layer).unwrap_or(0),
        );
    }
    println!(
        "\nachieved average bits: APTQ {:.2}, manual {:.2} (Eq. 18 target 3.50)",
        trace_plan.avg_bits(&stack.model),
        block_plan.avg_bits(&stack.model)
    );
    Ok(())
}
