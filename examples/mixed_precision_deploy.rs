//! Mixed-precision deployment walk-through.
//!
//! Quantizes a trained model with APTQ-75% (avg 3.5 bits), packs every
//! layer into the 2/4-bit storage format, reports the edge-device memory
//! footprint vs fp16, round-trips the packed tensors through
//! serialization, and generates text from the quantized model.
//!
//! ```text
//! cargo run --example mixed_precision_deploy --release
//! ```

use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq::lm::generate::generate_greedy;
use aptq::quant::engine::quantize_layer_obq;
use aptq::quant::grid::{GridConfig, QuantGrid};
use aptq::quant::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq::quant::pack::PackedTensor;
use aptq::quant::trace::SensitivityReport;
use aptq::quant::{collect_hessians, HessianMode};
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pretraining TinyLlama-S (quick budget)…");
    let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None)?;
    let mut model = stack.model.clone();
    let mut calib_gen =
        CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 7);
    let calibration = calib_gen.segments(24, 48);

    // Plan: 75% of weights at 4 bits by Hessian trace.
    let hessians = collect_hessians(&model, &calibration, HessianMode::AttentionAware)?;
    let sensitivity = SensitivityReport::from_hessians(&hessians);
    let plan = MixedPrecisionAllocator::two_four(0.75)?.allocate(
        &model,
        &sensitivity,
        AllocationPolicy::HessianTrace,
    );

    // Quantize layer by layer, keeping the packed tensors — this is what
    // an edge deployment would ship.
    let cfg = GridConfig::default();
    let mut packed_layers: Vec<(String, PackedTensor)> = Vec::new();
    let mut fp16_bytes = 0usize;
    for (layer, bits) in plan.iter() {
        let grid = QuantGrid::int(bits, cfg.asymmetric);
        let w = model.layer_weight(layer).clone();
        let res = quantize_layer_obq(&layer.to_string(), &w, &hessians[&layer], grid, &cfg)?;
        fp16_bytes += w.len() * 2;
        *model.layer_weight_mut(layer) = res.dequantized;
        packed_layers.push((layer.to_string(), res.packed));
    }

    let packed_bytes: usize = packed_layers.iter().map(|(_, p)| p.storage_bytes()).sum();
    println!(
        "\npacked model: {packed_bytes} bytes vs fp16 {fp16_bytes} bytes ({:.2}x smaller)",
        fp16_bytes as f32 / packed_bytes as f32
    );
    println!(
        "achieved average bits (plan): {:.2}",
        plan.avg_bits(&stack.model)
    );

    // Serialization round-trip of one packed layer (the storage format is
    // plain serde).
    let (name, tensor) = &packed_layers[0];
    let json = serde_json::to_string(tensor)?;
    let restored: PackedTensor = serde_json::from_str(&json)?;
    assert_eq!(&restored.dequantize(), &tensor.dequantize());
    println!(
        "serde round-trip of {name}: OK ({} bytes of JSON)",
        json.len()
    );

    // Generation from the quantized model.
    let prompt = stack.tokenizer.encode("<bos> the wild");
    let fp = generate_greedy(&stack.model, &prompt, 10)?;
    let q = generate_greedy(&model, &prompt, 10)?;
    println!("\nfp16 continuation:      {}", stack.tokenizer.decode(&fp));
    println!("quantized continuation: {}", stack.tokenizer.decode(&q));
    Ok(())
}
