//! End-to-end integration tests: pretrain a small model on the synthetic
//! corpus, quantize it with every method, and check that the *shapes* of
//! the paper's results hold (who wins, and in which direction quality
//! moves as bits shrink).

use std::sync::OnceLock;

use aptq::eval::pipeline::{quantize_clone, Method};
use aptq::eval::zoo::{load_or_train, ModelSize, PretrainBudget, TrainedStack};
use aptq::eval::{evaluate_suites, perplexity};
use aptq::quant::grid::GridConfig;
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq::textgen::{TaskSuite, ZeroShotTask};

/// One shared trained stack for the whole test binary (training is the
/// expensive part; quantization runs are cheap).
fn stack() -> &'static TrainedStack {
    static STACK: OnceLock<TrainedStack> = OnceLock::new();
    STACK.get_or_init(|| {
        // Same budget as the experiment harness so the shapes asserted
        // here are the shapes EXPERIMENTS.md reports.
        load_or_train(ModelSize::Small, PretrainBudget::full(), None)
            .expect("pretraining must succeed")
    })
}

fn calibration() -> Vec<Vec<u32>> {
    let s = stack();
    CorpusGenerator::new(&s.grammar, &s.tokenizer, CorpusStyle::WebC4, 9001).segments(24, 48)
}

fn eval_c4() -> Vec<Vec<u32>> {
    let s = stack();
    CorpusGenerator::new(&s.grammar, &s.tokenizer, CorpusStyle::WebC4, 9002).segments(16, 48)
}

fn eval_wiki() -> Vec<Vec<u32>> {
    let s = stack();
    CorpusGenerator::new(&s.grammar, &s.tokenizer, CorpusStyle::Wiki, 9003).segments(16, 48)
}

fn ppl_of(method: Method) -> f32 {
    let (model, _) = quantize_clone(
        &stack().model,
        method,
        &calibration(),
        &GridConfig::default(),
    )
    .unwrap();
    perplexity(&model, &eval_c4()).unwrap()
}

#[test]
fn trained_model_beats_uniform_on_both_corpora() {
    let s = stack();
    let vocab = s.tokenizer.vocab_size() as f32;
    let c4 = perplexity(&s.model, &eval_c4()).unwrap();
    let wiki = perplexity(&s.model, &eval_wiki()).unwrap();
    assert!(
        c4 < vocab * 0.25,
        "C4 PPL {c4} should be far below |V| {vocab}"
    );
    assert!(
        wiki < vocab * 0.5,
        "Wiki PPL {wiki} should be far below |V| {vocab}"
    );
}

#[test]
fn gptq_beats_rtn_at_low_bits_on_trained_model() {
    // The founding GPTQ result, reproduced on our substrate at 2 bits
    // where error compensation matters most.
    let rtn = ppl_of(Method::Rtn { bits: 2 });
    let gptq = ppl_of(Method::Gptq { bits: 2 });
    assert!(
        gptq < rtn,
        "GPTQ-2bit ({gptq}) must beat RTN-2bit ({rtn}) on a trained model"
    );
}

#[test]
fn four_bit_quantization_is_nearly_lossless() {
    // Table 1 shape: at avg 4 bits the best PTQ methods sit within a few
    // percent of fp16.
    let fp16 = ppl_of(Method::Fp16);
    for method in [Method::Gptq { bits: 4 }, Method::AptqUniform { bits: 4 }] {
        let q = ppl_of(method);
        assert!(
            q < fp16 * 1.35,
            "{}: PPL {q} should be near fp16 {fp16}",
            method.label()
        );
        assert!(
            q >= fp16 * 0.90,
            "{}: quantization cannot beat fp16 by much",
            method.label()
        );
    }
}

#[test]
fn aptq_mixed_degrades_gracefully_with_ratio() {
    // Figure 2 shape: PPL is monotone-ish in the 4-bit ratio.
    let p90 = ppl_of(Method::AptqMixed { ratio: 0.9 });
    let p50 = ppl_of(Method::AptqMixed { ratio: 0.5 });
    let fp16 = ppl_of(Method::Fp16);
    assert!(
        p90 < p50,
        "more 4-bit weights must help: R=0.9 {p90} vs R=0.5 {p50}"
    );
    assert!(
        p90 < fp16 * 2.0,
        "APTQ-90% should stay near fp16: {p90} vs {fp16}"
    );
}

#[test]
fn sensitivity_allocation_is_competitive_with_manual_blockwise() {
    // Table 3 shape. On the paper's 32-block LLaMA the trace-informed
    // allocation clearly wins; on our 6-block models front-to-back
    // block allocation is a near-optimal heuristic (early-layer errors
    // dominate via compounding), so the honest assertion at this scale
    // is *parity within noise*, not a win — EXPERIMENTS.md discusses
    // this, and results/ablations.md §E compares all allocation signals.
    let mut total_trace = 0.0f32;
    let mut total_block = 0.0f32;
    for ratio in [0.75f32, 0.5] {
        total_trace += ppl_of(Method::AptqMixed { ratio });
        total_block += ppl_of(Method::ManualBlockwise { ratio });
    }
    assert!(
        total_trace < total_block * 1.03,
        "sensitivity allocation must stay within 3% of manual blockwise \
         (trace sum {total_trace}, blockwise sum {total_block})"
    );
    // And both mixed schemes must beat naive uniform 2-bit RTN by a mile.
    let rtn2 = ppl_of(Method::Rtn { bits: 2 });
    assert!(
        total_trace / 2.0 < rtn2,
        "mixed 2/4 must beat uniform 2-bit RTN"
    );
}

#[test]
fn pbllm_low_ratio_is_much_worse_than_aptq_mixed() {
    // Table 1 shape: PB-LLM-20% (mostly binary) is far worse than
    // APTQ-50% despite similar storage.
    let pb = ppl_of(Method::PbLlm { salient_ratio: 0.1 });
    let aptq = ppl_of(Method::AptqMixed { ratio: 0.5 });
    assert!(
        pb > aptq,
        "partial binarization ({pb}) should trail APTQ mixed 2/4 ({aptq})"
    );
}

#[test]
fn trained_model_zero_shot_above_chance_and_quantization_degrades() {
    let s = stack();
    let suites: Vec<TaskSuite> = ZeroShotTask::ALL
        .iter()
        .map(|&t| TaskSuite::generate(t, &s.grammar, &s.tokenizer, 60, 777))
        .collect();
    let fp = evaluate_suites(&s.model, &suites).unwrap();
    let fp_mean = fp.last().unwrap().accuracy;
    // Chance mean over the 5 suites = (0.25*4 + 0.5)/5 = 0.3.
    assert!(
        fp_mean > 0.40,
        "trained fp16 mean accuracy {fp_mean} should beat chance 0.30"
    );

    let (q2, _) = quantize_clone(
        &s.model,
        Method::Rtn { bits: 2 },
        &calibration(),
        &GridConfig::default(),
    )
    .unwrap();
    let q2_res = evaluate_suites(&q2, &suites).unwrap();
    let q2_mean = q2_res.last().unwrap().accuracy;
    assert!(
        q2_mean < fp_mean + 0.02,
        "2-bit RTN accuracy {q2_mean} should not beat fp16 {fp_mean}"
    );
}

#[test]
fn agreement_task_is_easiest_for_trained_model() {
    // Construction check on the task ladder: adjacent-token agreement is
    // learned earliest.
    let s = stack();
    let agreement = TaskSuite::generate(ZeroShotTask::Agreement, &s.grammar, &s.tokenizer, 80, 5);
    let res = aptq::eval::evaluate_suite(&s.model, &agreement).unwrap();
    assert!(
        res.accuracy > 0.6,
        "agreement accuracy {} should be well above the 0.5 chance",
        res.accuracy
    );
}

#[test]
fn wiki_distribution_shift_shows_up_in_ppl() {
    // Calibration/training is C4-style; Wiki is shifted. On the fp16
    // model Wiki PPL should differ from C4 PPL (the Table 1 columns are
    // genuinely different distributions). Uses a larger eval sample than
    // the shared 16-segment helpers: at 16 segments the gap estimate is
    // noisy enough to dip below threshold on unlucky seeds.
    let s = stack();
    let c4_corpus =
        CorpusGenerator::new(&s.grammar, &s.tokenizer, CorpusStyle::WebC4, 9002).segments(48, 48);
    let wiki_corpus =
        CorpusGenerator::new(&s.grammar, &s.tokenizer, CorpusStyle::Wiki, 9003).segments(48, 48);
    let c4 = perplexity(&s.model, &c4_corpus).unwrap();
    let wiki = perplexity(&s.model, &wiki_corpus).unwrap();
    assert!(
        (c4 - wiki).abs() / c4 > 0.02,
        "C4 {c4} and Wiki {wiki} should differ"
    );
}
