//! Integration tests for the deployment story: packed storage sizes,
//! checkpoint round-trips, and cross-crate plumbing.

use aptq::lm::{Model, ModelConfig};
use aptq::quant::engine::{quantize_layer_obq, quantize_layer_rtn};
use aptq::quant::grid::{GridConfig, QuantGrid};
use aptq::quant::hessian::HessianAccumulator;
use aptq::quant::pack::PackedTensor;
use aptq::tensor::init;
use aptq::textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq::textgen::{Grammar, Tokenizer};

#[test]
fn packed_model_is_roughly_four_times_smaller_at_4bit() {
    let model = Model::new(&ModelConfig::tiny_llama_s(100), 3);
    let cfg = GridConfig::default();
    let grid = QuantGrid::int(4, true);
    let mut packed_total = 0usize;
    let mut fp16_total = 0usize;
    for layer in model.layer_refs() {
        let w = model.layer_weight(layer);
        let res = quantize_layer_rtn(w, grid, &cfg);
        packed_total += res.packed.storage_bytes();
        fp16_total += w.len() * 2;
    }
    let ratio = fp16_total as f32 / packed_total as f32;
    assert!(
        ratio > 3.0 && ratio < 4.0,
        "4-bit + metadata should give ~3.5x: {ratio}"
    );
}

#[test]
fn packed_mixed_precision_model_hits_eq18_storage() {
    // Half the layers at 4 bits, half at 2: storage should land near the
    // 3-bit point of Eq. (18).
    let model = Model::new(&ModelConfig::tiny_llama_s(100), 4);
    let cfg = GridConfig::default();
    let refs = model.layer_refs();
    let mut packed_total = 0usize;
    let mut weights_total = 0usize;
    for (i, layer) in refs.iter().enumerate() {
        let bits = if i % 2 == 0 { 4 } else { 2 };
        let w = model.layer_weight(*layer);
        let res = quantize_layer_rtn(w, QuantGrid::int(bits, true), &cfg);
        packed_total += res.packed.data.len(); // codes only, no metadata
        weights_total += w.len();
    }
    let bits_per_weight = packed_total as f32 * 8.0 / weights_total as f32;
    assert!(
        (bits_per_weight - 3.0).abs() < 0.35,
        "mixed 2/4 codes should average ~3 bits: {bits_per_weight}"
    );
}

#[test]
fn packed_tensor_survives_serde_and_reinstall() {
    // Quantize one layer, serialize its packed form, reload, install the
    // dequantized weights, and confirm the model computes identically.
    let mut model = Model::new(&ModelConfig::test_tiny(16), 5);
    let layer = model.layer_refs()[3];
    let x = init::normal(40, 16, 1.0, &mut init::rng(1));
    let mut acc = HessianAccumulator::new(16);
    acc.update(&x);
    let h = acc.finish();
    let w = model.layer_weight(layer).clone();
    let res = quantize_layer_obq(
        "test",
        &w,
        &h,
        QuantGrid::int(4, true),
        &GridConfig {
            group_size: 8,
            ..GridConfig::default()
        },
    )
    .unwrap();

    let json = serde_json::to_string(&res.packed).unwrap();
    let restored: PackedTensor = serde_json::from_str(&json).unwrap();
    *model.layer_weight_mut(layer) = restored.dequantize();
    let out_restored = model.forward(&[1, 2, 3, 4]);

    *model.layer_weight_mut(layer) = res.dequantized;
    let out_direct = model.forward(&[1, 2, 3, 4]);
    assert_eq!(out_restored, out_direct);
}

#[test]
fn quantized_model_checkpoint_roundtrip() {
    // Full pipeline: quantize a model, save to JSON, reload, compare
    // generation.
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let mut model = Model::new(&ModelConfig::test_tiny(tok.vocab_size()), 6);
    let calib = CorpusGenerator::new(&grammar, &tok, CorpusStyle::WebC4, 11).segments(4, 24);
    aptq::quant::methods::gptq::quantize(&mut model, &calib, 4, &GridConfig::default()).unwrap();

    let json = model.to_json().unwrap();
    let restored = Model::from_json(&json).unwrap();
    let a = aptq::lm::generate::generate_greedy(&model, &[1, 2], 8).unwrap();
    let b = aptq::lm::generate::generate_greedy(&restored, &[1, 2], 8).unwrap();
    assert_eq!(a, b);
}

#[test]
fn umbrella_crate_reexports_work() {
    // The `aptq` facade must expose the full stack.
    let _ = aptq::tensor::Matrix::zeros(2, 2);
    let _ = aptq::textgen::Grammar::standard();
    let _ = aptq::quant::grid::QuantGrid::int(4, true);
    let cfg = aptq::lm::ModelConfig::test_tiny(8);
    assert!(cfg.validate().is_ok());
}
