//! Integration tests: the recorder contract the rest of the workspace
//! builds on — by-value threading, deterministic merge, stable JSON.

use aptq_obs::{scope, Recorder};

/// A stand-in for a parallel stage: each job records into its own
/// recorder; the scheduler merges per-job recorders in index order.
fn fan_out_merge(jobs: usize) -> Recorder {
    let per_job: Vec<Recorder> = (0..jobs)
        .map(|i| {
            let mut r = Recorder::new();
            r.add("stage/items", 1);
            r.add("stage/bytes", (i as u64 + 1) * 10);
            r
        })
        .collect();
    let mut total = Recorder::new();
    for r in &per_job {
        total.merge(r);
    }
    total
}

#[test]
fn per_job_recorders_merge_deterministically() {
    let a = fan_out_merge(4);
    let b = fan_out_merge(4);
    assert_eq!(a, b);
    assert_eq!(a.get("stage/items"), 4);
    assert_eq!(a.get("stage/bytes"), 10 + 20 + 30 + 40);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn snapshot_round_trips_through_naive_parse() {
    // The snapshot must be plain enough that any JSON parser (or grep)
    // can consume it; check the shape without a parser dependency.
    let mut rec = Recorder::new();
    rec.add("quant/session/capture_passes", 2);
    rec.add("decode/tokens", 256);
    let json = rec.to_json();
    assert!(json.starts_with('{'));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"quant/session/capture_passes\": 2"));
    assert!(json.contains("\"decode/tokens\": 256"));
    // Exactly one trailing newline so archived files diff cleanly.
    assert!(json.ends_with("}\n"));
    assert!(!json.ends_with("}\n\n"));
}

#[test]
fn scope_helpers_agree_with_recorder_validation() {
    assert!(scope::is_valid("quant/obq/layers_solved"));
    let joined = scope::join(&["eval", "ppl", "segments"]);
    let mut rec = Recorder::new();
    rec.incr(&joined); // must not trip the debug-build grammar check
    assert_eq!(rec.get("eval/ppl/segments"), 1);
}
