//! The [`Recorder`]: an owned, mergeable bag of named counters.

use std::collections::BTreeMap;

use crate::scope;

/// A bag of monotonically increasing named counters.
///
/// A `Recorder` is plain data — no interior mutability, no
/// synchronization, no global registry. Whoever owns the computation
/// owns the recorder and threads `&mut Recorder` (or a
/// [`ScopedRecorder`]) into the code it wants observed; parallel stages
/// record into per-job values that the scheduler [`merge`]s back in a
/// deterministic order.
///
/// Counter values are `u64` work units: bytes, tokens, FLOPs, codes,
/// passes. Saturating arithmetic is used throughout so a runaway
/// counter can never panic a pipeline it is merely observing.
///
/// [`merge`]: Recorder::merge
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recorder {
    counters: BTreeMap<String, u64>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Adds `n` to the counter at `scope`, creating it at zero first.
    ///
    /// `add(scope, 0)` materializes a counter without changing it —
    /// useful for pinning "this path was never taken" counters (e.g.
    /// `qmodel/qlinear/fallback_entries`) into snapshots at an explicit
    /// zero.
    ///
    /// # Panics
    ///
    /// Debug builds panic on a scope that violates the grammar of
    /// [`crate::scope::is_valid`]; release builds accept it unchecked.
    pub fn add(&mut self, scope: &str, n: u64) {
        debug_assert!(scope::is_valid(scope), "invalid counter scope: {scope:?}");
        let slot = match self.counters.get_mut(scope) {
            Some(v) => v,
            // audit:allow(alloc): interns each counter key once, first sighting only
            None => self.counters.entry(scope.to_string()).or_insert(0),
        };
        *slot = slot.saturating_add(n);
    }

    /// Increments the counter at `scope` by one.
    pub fn incr(&mut self, scope: &str) {
        self.add(scope, 1);
    }

    /// Current value of the counter at `scope` (zero if never touched).
    pub fn get(&self, scope: &str) -> u64 {
        self.counters.get(scope).copied().unwrap_or(0)
    }

    /// Iterates counters in lexicographic scope order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters recorded.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Folds every counter of `other` into `self`.
    ///
    /// Merging is associative and commutative (counter addition), so a
    /// scheduler can give each parallel job its own recorder and merge
    /// the per-job values back in index order with a deterministic
    /// result.
    pub fn merge(&mut self, other: &Recorder) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
    }

    /// A view that prefixes every scope with `prefix + "/"`.
    ///
    /// # Panics
    ///
    /// Debug builds panic on an invalid prefix.
    pub fn scoped<'a>(&'a mut self, prefix: &str) -> ScopedRecorder<'a> {
        debug_assert!(scope::is_valid(prefix), "invalid scope prefix: {prefix:?}");
        ScopedRecorder {
            inner: self,
            prefix: prefix.to_string(),
        }
    }

    /// Serializes the counters as a deterministic JSON object.
    ///
    /// Keys appear in lexicographic order (the `BTreeMap` order), so
    /// two runs with equal counters produce byte-identical snapshots —
    /// `results/telemetry.json` diffs are real regressions, never
    /// serialization noise.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"aptq-obs/v1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            // Scopes are validated to [a-z0-9_/], which needs no JSON
            // escaping; escape defensively anyway for release builds
            // where the grammar is unchecked.
            for c in k.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str(&format!("\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// A borrowed recorder view that prefixes every counter scope.
///
/// Lets a subsystem record under its own namespace without knowing
/// where the caller mounted it:
///
/// ```
/// use aptq_obs::Recorder;
///
/// fn unpack(rec: &mut aptq_obs::ScopedRecorder<'_>) {
///     rec.incr("groups_unpacked");
/// }
///
/// let mut rec = Recorder::new();
/// unpack(&mut rec.scoped("qmodel/qlinear"));
/// assert_eq!(rec.get("qmodel/qlinear/groups_unpacked"), 1);
/// ```
#[derive(Debug)]
pub struct ScopedRecorder<'a> {
    inner: &'a mut Recorder,
    prefix: String,
}

impl ScopedRecorder<'_> {
    /// Adds `n` under `prefix + "/" + scope`.
    pub fn add(&mut self, scope: &str, n: u64) {
        // audit:allow(alloc): scoped names are joined per call; hot paths use Recorder directly
        let full = format!("{}/{scope}", self.prefix);
        self.inner.add(&full, n);
    }

    /// Increments `prefix + "/" + scope` by one.
    pub fn incr(&mut self, scope: &str) {
        self.add(scope, 1);
    }

    /// A further-nested view.
    pub fn scoped(&mut self, sub: &str) -> ScopedRecorder<'_> {
        ScopedRecorder {
            inner: self.inner,
            prefix: format!("{}/{sub}", self.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_incr() {
        let mut r = Recorder::new();
        assert_eq!(r.get("quant/x"), 0);
        r.incr("quant/x");
        r.add("quant/x", 41);
        assert_eq!(r.get("quant/x"), 42);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn add_zero_materializes() {
        let mut r = Recorder::new();
        r.add("qmodel/qlinear/fallback_entries", 0);
        assert_eq!(r.len(), 1);
        assert!(r
            .to_json()
            .contains("\"qmodel/qlinear/fallback_entries\": 0"));
    }

    #[test]
    fn saturating_never_panics() {
        let mut r = Recorder::new();
        r.add("x", u64::MAX);
        r.add("x", u64::MAX);
        assert_eq!(r.get("x"), u64::MAX);
    }

    #[test]
    fn merge_is_addition_in_order() {
        let mut a = Recorder::new();
        a.add("s/one", 1);
        a.add("s/shared", 10);
        let mut b = Recorder::new();
        b.add("s/two", 2);
        b.add("s/shared", 5);
        a.merge(&b);
        assert_eq!(a.get("s/one"), 1);
        assert_eq!(a.get("s/two"), 2);
        assert_eq!(a.get("s/shared"), 15);
    }

    #[test]
    fn counters_iterate_lexicographically() {
        let mut r = Recorder::new();
        r.add("b/x", 1);
        r.add("a/y", 2);
        r.add("a/b", 3);
        let keys: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a/b", "a/y", "b/x"]);
    }

    #[test]
    fn scoped_prefixes_and_nests() {
        let mut r = Recorder::new();
        let mut s = r.scoped("decode");
        s.add("tokens", 7);
        let mut n = s.scoped("kv");
        n.incr("rows");
        assert_eq!(r.get("decode/tokens"), 7);
        assert_eq!(r.get("decode/kv/rows"), 1);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let mut a = Recorder::new();
        a.add("z/last", 3);
        a.add("a/first", 1);
        let mut b = Recorder::new();
        b.add("a/first", 1);
        b.add("z/last", 3);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        let first = json.find("a/first").unwrap();
        let last = json.find("z/last").unwrap();
        assert!(first < last, "keys must be sorted");
        assert!(json.contains("\"schema\": \"aptq-obs/v1\""));
    }

    #[test]
    fn empty_json_is_well_formed() {
        let json = Recorder::new().to_json();
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid counter scope")]
    fn debug_builds_reject_bad_scopes() {
        Recorder::new().incr("Bad Scope");
    }
}
