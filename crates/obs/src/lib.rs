//! # aptq-obs
//!
//! Deterministic observability for the APTQ reproduction: named
//! counters with hierarchical scopes (`quant/obq/layers_solved`,
//! `decode/kv_bytes_moved`, …), byte/FLOP accounting, and a JSON
//! snapshot the bench binaries archive under `results/telemetry.json`.
//!
//! ## Design constraints (the determinism contract)
//!
//! The workspace's headline guarantee is bit-identical results at any
//! thread count, enforced by the aptq-audit rules D001–D006. A metrics
//! layer is only admissible if it cannot weaken that guarantee:
//!
//! * **No global state** (D005). There is no registry, no `static`
//!   sink, no `thread_local`: a [`Recorder`] is a plain value the
//!   caller owns and threads through the code it wants observed —
//!   exactly like `QuantSession` threads its caches.
//! * **No wall clock in default builds** (D004). The primary signals
//!   are deterministic *work units* — matmul FLOPs, unpacked codes,
//!   cache bytes, tokens — which are identical across runs and thread
//!   counts. Wall-clock timing exists behind the opt-in `wallclock`
//!   feature ([`wallclock::Stopwatch`]); a default build contains zero
//!   time reads.
//! * **Deterministic serialization** (D003). Counters live in a
//!   `BTreeMap`, so iteration, [`Recorder::to_json`] output and
//!   [`Recorder::merge`] results are byte-identical across runs.
//!
//! ## Scope naming
//!
//! Scopes are `/`-separated paths of `[a-z0-9_]` segments, grouped by
//! subsystem: `quant/…` (session + OBQ scheduler), `eval/…`
//! (perplexity, zero-shot), `decode/…` (KV-cache decoding) and
//! `qmodel/…` (packed-storage inference). See `DESIGN.md` for the
//! registry of counter names the bench binaries assert on.
//!
//! ## Example
//!
//! ```
//! use aptq_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! rec.incr("quant/session/capture_passes");
//! rec.add("decode/kv_bytes_moved", 4096);
//! rec.add("decode/kv_bytes_moved", 4096);
//! assert_eq!(rec.get("decode/kv_bytes_moved"), 8192);
//!
//! let mut scoped = rec.scoped("qmodel/qlinear");
//! scoped.add("groups_unpacked", 3);
//! assert_eq!(rec.get("qmodel/qlinear/groups_unpacked"), 3);
//! assert!(rec.to_json().contains("\"decode/kv_bytes_moved\": 8192"));
//! ```

pub mod recorder;
pub mod scope;
#[cfg(feature = "wallclock")]
pub mod wallclock;

pub use recorder::{Recorder, ScopedRecorder};
