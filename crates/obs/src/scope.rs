//! Scope paths: `/`-separated counter names with a fixed grammar.
//!
//! A valid scope is one or more segments joined by `/`, each segment a
//! non-empty run of `[a-z0-9_]`. The grammar is deliberately tiny: it
//! keeps JSON emission escape-free, diffs stable, and scope strings
//! greppable (`rg 'decode/kv_bytes_moved'` finds every producer and
//! every consumer).

/// Whether `scope` conforms to the scope grammar.
pub fn is_valid(scope: &str) -> bool {
    !scope.is_empty()
        && scope.split('/').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Joins segments into a scope path.
///
/// # Panics
///
/// Panics if the joined path is not a valid scope (empty segments or
/// characters outside `[a-z0-9_]`).
pub fn join(segments: &[&str]) -> String {
    let joined = segments.join("/");
    assert!(is_valid(&joined), "invalid scope path: {joined:?}");
    joined
}

/// The subsystem prefix (first segment) of a scope, e.g. `"decode"` for
/// `"decode/kv_bytes_moved"`.
pub fn subsystem(scope: &str) -> &str {
    scope.split('/').next().unwrap_or(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_scopes() {
        for s in [
            "decode",
            "decode/tokens",
            "quant/obq/layers_solved",
            "a_1/b_2",
        ] {
            assert!(is_valid(s), "{s}");
        }
    }

    #[test]
    fn invalid_scopes() {
        for s in [
            "",
            "/",
            "a//b",
            "a/",
            "/a",
            "Upper/case",
            "sp ace",
            "dash-x",
        ] {
            assert!(!is_valid(s), "{s}");
        }
    }

    #[test]
    fn join_and_subsystem() {
        assert_eq!(join(&["quant", "obq", "flops"]), "quant/obq/flops");
        assert_eq!(subsystem("quant/obq/flops"), "quant");
        assert_eq!(subsystem("solo"), "solo");
    }

    #[test]
    #[should_panic(expected = "invalid scope")]
    fn join_rejects_bad_segments() {
        let _ = join(&["quant", "Bad Seg"]);
    }
}
