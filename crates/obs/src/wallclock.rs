//! Opt-in wall-clock timing (`--features wallclock`).
//!
//! Wall-clock readings are inherently non-deterministic, so they are
//! quarantined behind this feature: a default build of `aptq-obs`
//! contains zero time reads and stays clean under audit rule D004. The
//! counters a [`Stopwatch`] produces are clearly namespaced (`…/wall_us`)
//! so downstream tooling can separate them from deterministic work
//! units when diffing snapshots across runs.

use crate::Recorder;

/// A started wall-clock measurement.
///
/// ```
/// # #[cfg(feature = "wallclock")] {
/// use aptq_obs::{wallclock::Stopwatch, Recorder};
///
/// let mut rec = Recorder::new();
/// let sw = Stopwatch::start();
/// // … timed work …
/// sw.record(&mut rec, "quant/obq");
/// assert_eq!(rec.len(), 1); // quant/obq/wall_us
/// # }
/// ```
#[derive(Debug)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            // audit:allow(nondet): the whole module is feature-gated; default builds contain no time reads
            start: std::time::Instant::now(),
        }
    }

    /// Elapsed microseconds since [`Stopwatch::start`].
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time under `<scope>/wall_us` and consumes
    /// the stopwatch.
    pub fn record(self, rec: &mut Recorder, scope: &str) {
        let us = self.elapsed_us();
        rec.add(&format!("{scope}/wall_us"), us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_records_under_wall_us() {
        let mut rec = Recorder::new();
        let sw = Stopwatch::start();
        sw.record(&mut rec, "test/timed");
        assert_eq!(rec.len(), 1);
        // Elapsed time is non-negative by construction; the counter
        // exists even when the measured span rounds to zero.
        assert!(rec.to_json().contains("test/timed/wall_us"));
    }
}
