//! Regression tests for the unified generic forward path: quantized
//! KV-cache incremental decode must be **bit-identical** to the full
//! packed forward (with per-token cost independent of position), and
//! evaluation metrics routed through the generic `aptq_eval` entry
//! points must match scoring `QuantizedModel::forward` by hand.
//!
//! The decode parity tests run in the CI determinism loop at
//! `APTQ_THREADS=1` and `4` (see `ci/check.sh`): the packed operator is
//! scalar, but the float norms/attention tails share the threadpool.

use std::collections::BTreeMap;

use aptq_core::grid::GridConfig;
use aptq_core::hessian::{HessianMode, LayerHessian};
use aptq_core::plan::QuantPlan;
use aptq_lm::{LayerRef, Model, ModelConfig};
use aptq_qmodel::QuantizedModel;
use aptq_tensor::activation::log_sum_exp;

/// A 2-layer model whose RoPE table covers 256 decode positions.
fn long_context_setup() -> (Model, BTreeMap<LayerRef, LayerHessian>) {
    let cfg = ModelConfig {
        max_seq_len: 256,
        ..ModelConfig::test_tiny(16)
    };
    let model = Model::new(&cfg, 77);
    let calib: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..24).map(|i| ((i * 5 + k) % 16) as u32).collect())
        .collect();
    let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware).unwrap();
    (model, hs)
}

/// Cycles 2/3/4 bits over the canonical layer order.
fn mixed_plan(model: &Model) -> QuantPlan {
    let mut plan = QuantPlan::uniform(model, 4);
    for (i, layer) in model.layer_refs().into_iter().enumerate() {
        plan.set_bits(layer, [2u8, 3, 4][i % 3]);
    }
    plan
}

#[test]
fn decode_256_tokens_bit_identical_to_full_packed_forward() {
    let (model, hs) = long_context_setup();
    let cfg = GridConfig::default();
    let tokens: Vec<u32> = (0..256).map(|i| ((i * 7 + 3) % 16) as u32).collect();

    let mut plans = vec![mixed_plan(&model)];
    for bits in [2u8, 3, 4] {
        plans.push(QuantPlan::uniform(&model, bits));
    }
    for plan in &plans {
        let q = QuantizedModel::quantize_from(&model, plan, &hs, &cfg).unwrap();
        let full = q.forward(&tokens).unwrap();
        let mut session = q.decode_session();
        for (i, &t) in tokens.iter().enumerate() {
            let logits = session.feed(t).unwrap();
            assert_eq!(
                logits,
                full.row(i),
                "step {i}: incremental decode must match the full packed \
                 forward bit-for-bit"
            );
        }
    }
}

#[test]
fn decode_per_token_cost_is_flat_across_256_positions() {
    // The acceptance criterion for O(T) decode: the packed-operator work
    // counters advance by the same amount at position 255 as at
    // position 0 — no prefix re-execution anywhere in the stack.
    let (model, hs) = long_context_setup();
    let cfg = GridConfig::default();
    let q = QuantizedModel::quantize_from(&model, &mixed_plan(&model), &hs, &cfg).unwrap();

    let mut session = q.decode_session();
    let mut prev = (0u64, 0u64);
    let mut deltas = Vec::with_capacity(256);
    for i in 0..256u32 {
        session.feed((i * 7 + 3) % 16).unwrap();
        let now = (
            session.metrics().get("qmodel/qlinear/codes_unpacked"),
            session.metrics().get("qmodel/qlinear/macs"),
        );
        deltas.push((now.0 - prev.0, now.1 - prev.1));
        prev = now;
    }
    let first = deltas[0];
    assert!(first.0 > 0 && first.1 > 0, "counters must actually advance");
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(
            *d, first,
            "step {i}: per-token codes_unpacked/macs must not grow with \
             sequence position"
        );
    }
    assert_eq!(session.metrics().get("qmodel/qlinear/fallback_entries"), 0);
}

#[test]
fn quantized_perplexity_identical_to_manual_forward_scoring() {
    // Satellite regression: evaluating a quantized model through the
    // generic `aptq_eval::perplexity` must equal the pre-refactor
    // recipe — score each segment with `QuantizedModel::forward` and
    // reduce by hand. Bit-equal, not approximately.
    let (model, hs) = long_context_setup();
    let cfg = GridConfig::default();
    let q = QuantizedModel::quantize_from(&model, &mixed_plan(&model), &hs, &cfg).unwrap();
    let segs: Vec<Vec<u32>> = (0..5)
        .map(|k| (0..20).map(|i| ((i * 3 + k) % 16) as u32).collect())
        .collect();

    let unified = aptq_eval::perplexity(q.model(), &segs).unwrap();

    let mut total_nll = 0.0f64;
    let mut total_tokens = 0usize;
    for seg in &segs {
        let logits = q.forward(seg).unwrap();
        for i in 0..seg.len() - 1 {
            let row = logits.row(i);
            total_nll += (log_sum_exp(row) - row[seg[i + 1] as usize]) as f64;
        }
        total_tokens += seg.len() - 1;
    }
    let manual = (total_nll / total_tokens as f64).exp() as f32;
    assert_eq!(unified, manual);
    assert!(unified.is_finite() && unified > 1.0);
}

#[test]
fn quantized_zeroshot_identical_to_manual_forward_scoring() {
    use aptq_textgen::{Grammar, TaskSuite, Tokenizer, ZeroShotTask};

    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let cfg = ModelConfig {
        max_seq_len: 256,
        ..ModelConfig::test_tiny(tok.vocab_size())
    };
    let model = Model::new(&cfg, 13);
    let calib: Vec<Vec<u32>> = (0..4)
        .map(|k| {
            (0..24)
                .map(|i| ((i * 5 + k) % tok.vocab_size()) as u32)
                .collect()
        })
        .collect();
    let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware).unwrap();
    let q = QuantizedModel::quantize_from(&model, &mixed_plan(&model), &hs, &GridConfig::default())
        .unwrap();

    let suite = TaskSuite::generate(ZeroShotTask::Affordance, &grammar, &tok, 20, 9);
    let unified = aptq_eval::evaluate_suite(q.model(), &suite).unwrap();

    // Manual scoring via QuantizedModel::forward, replicating the
    // harness recipe (length-normalized continuation log-likelihood).
    let mut correct = 0usize;
    for item in &suite.items {
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (ci, choice) in item.choices.iter().enumerate() {
            let mut seq = item.prompt.clone();
            seq.extend_from_slice(choice);
            let logits = q.forward(&seq).unwrap();
            let mut ll = 0.0f64;
            for (k, &t) in choice.iter().enumerate() {
                let row = logits.row(item.prompt.len() + k - 1);
                ll += (row[t as usize] - log_sum_exp(row)) as f64;
            }
            let score = (ll / choice.len() as f64) as f32;
            if score > best_score {
                best_score = score;
                best = ci;
            }
        }
        if best == item.correct {
            correct += 1;
        }
    }
    let manual_acc = correct as f32 / suite.len() as f32;
    assert_eq!(unified.accuracy, manual_acc);
    assert_eq!(unified.n_items, suite.len());
}
