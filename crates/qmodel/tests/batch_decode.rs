//! Batched decode over packed storage: the serving-side claim of the
//! APTQ deployment story. Two properties are pinned here, bit-exactly:
//!
//! 1. **Correctness** — every sequence in a batched session produces
//!    logits `assert_eq!`-identical to decoding it alone in its own
//!    solo session, for uniform 2/3/4-bit and mixed plans, batch sizes
//!    1/3/8, and ragged join/leave schedules.
//! 2. **Amortization** — the packed operator unpacks each sub-byte
//!    weight group once per layer per *step*, so
//!    `qmodel/qlinear/codes_unpacked` per step is independent of the
//!    batch size (only `macs` scales with B).
//!
//! These tests run in the CI determinism loop at `APTQ_THREADS=1` and
//! `4` (see `ci/check.sh`).

use std::collections::BTreeMap;

use aptq_core::grid::GridConfig;
use aptq_core::hessian::{HessianMode, LayerHessian};
use aptq_core::plan::QuantPlan;
use aptq_lm::{LayerRef, Model, ModelConfig};
use aptq_qmodel::QuantizedModel;

/// A 2-layer model whose RoPE table covers 64 decode positions.
fn setup() -> (Model, BTreeMap<LayerRef, LayerHessian>) {
    let cfg = ModelConfig {
        max_seq_len: 64,
        ..ModelConfig::test_tiny(16)
    };
    let model = Model::new(&cfg, 77);
    let calib: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..24).map(|i| ((i * 5 + k) % 16) as u32).collect())
        .collect();
    let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware).unwrap();
    (model, hs)
}

/// Cycles 2/3/4 bits over the canonical layer order.
fn mixed_plan(model: &Model) -> QuantPlan {
    let mut plan = QuantPlan::uniform(model, 4);
    for (i, layer) in model.layer_refs().into_iter().enumerate() {
        plan.set_bits(layer, [2u8, 3, 4][i % 3]);
    }
    plan
}

fn quantize(
    model: &Model,
    hs: &BTreeMap<LayerRef, LayerHessian>,
    plan: &QuantPlan,
) -> QuantizedModel {
    QuantizedModel::quantize_from(model, plan, hs, &GridConfig::default()).unwrap()
}

/// Deterministic per-sequence token stream `s`.
fn stream(s: usize, i: usize) -> u32 {
    ((i * 7 + s * 5 + 3) % 16) as u32
}

#[test]
fn batched_packed_logits_bit_identical_to_solo_sessions() {
    let (model, hs) = setup();
    let mut plans = vec![mixed_plan(&model)];
    for bits in [2u8, 3, 4] {
        plans.push(QuantPlan::uniform(&model, bits));
    }
    for plan in &plans {
        let q = quantize(&model, &hs, plan);
        for &bsize in &[1usize, 3, 8] {
            let mut batch = q.batch_decode_session();
            let slots: Vec<usize> = (0..bsize).map(|_| batch.join()).collect();
            let mut solos: Vec<_> = (0..bsize).map(|_| q.decode_session()).collect();
            for i in 0..12 {
                let tokens: Vec<(usize, u32)> = slots
                    .iter()
                    .enumerate()
                    .map(|(s, &id)| (id, stream(s, i)))
                    .collect();
                let logits = batch.step(&tokens).unwrap();
                for (s, solo) in solos.iter_mut().enumerate() {
                    let alone = solo.feed(stream(s, i)).unwrap();
                    assert_eq!(
                        logits.row(s),
                        &alone[..],
                        "batch size {bsize}, step {i}, sequence {s}: batched packed \
                         decode must match the solo session bit-for-bit"
                    );
                }
            }
        }
    }
}

#[test]
fn ragged_join_leave_schedule_matches_solo_packed_sessions() {
    let (model, hs) = setup();
    let q = quantize(&model, &hs, &mixed_plan(&model));
    let mut batch = q.batch_decode_session();

    let a = batch.join();
    let b = batch.join();
    let mut solo_a = q.decode_session();
    let mut solo_b = q.decode_session();
    for i in 0..5 {
        let logits = batch.step(&[(a, stream(0, i)), (b, stream(1, i))]).unwrap();
        assert_eq!(logits.row(0), &solo_a.feed(stream(0, i)).unwrap()[..]);
        assert_eq!(logits.row(1), &solo_b.feed(stream(1, i)).unwrap()[..]);
    }
    // a leaves mid-flight; b continues; c joins into a's old slot.
    batch.leave(a).unwrap();
    let c = batch.join();
    assert_eq!(c, a, "retired slot is reused");
    let mut solo_c = q.decode_session();
    for i in 0..8 {
        let logits = batch
            .step(&[(b, stream(1, 5 + i)), (c, stream(2, i))])
            .unwrap();
        assert_eq!(
            logits.row(0),
            &solo_b.feed(stream(1, 5 + i)).unwrap()[..],
            "survivor must be undisturbed by leave/join around it"
        );
        assert_eq!(
            logits.row(1),
            &solo_c.feed(stream(2, i)).unwrap()[..],
            "a reused slot must decode from a clean cache"
        );
    }
    assert_eq!(batch.seq_len(b), Some(13));
    assert_eq!(batch.seq_len(c), Some(8));
}

#[test]
fn codes_unpacked_per_step_is_independent_of_batch_size() {
    // The point of batching packed inference: one step of a B-sequence
    // batch unpacks exactly as many codes as one step of a single
    // sequence — the projections run once per layer per step — while
    // MAC work scales with B.
    let (model, hs) = setup();
    let q = quantize(&model, &hs, &mixed_plan(&model));

    let mut per_step_codes = Vec::new();
    let mut per_step_macs = Vec::new();
    for &bsize in &[1usize, 3, 8] {
        let mut batch = q.batch_decode_session();
        let slots: Vec<usize> = (0..bsize).map(|_| batch.join()).collect();
        let mut prev = (0u64, 0u64);
        let mut first = None;
        for i in 0..10 {
            let tokens: Vec<(usize, u32)> = slots
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, stream(s, i)))
                .collect();
            batch.step(&tokens).unwrap();
            let now = (
                batch.metrics().get("qmodel/qlinear/codes_unpacked"),
                batch.metrics().get("qmodel/qlinear/macs"),
            );
            let delta = (now.0 - prev.0, now.1 - prev.1);
            prev = now;
            match first {
                None => first = Some(delta),
                Some(f) => assert_eq!(
                    delta, f,
                    "batch size {bsize}, step {i}: per-step unpacking must be flat"
                ),
            }
        }
        let (codes, macs) = first.unwrap();
        assert!(codes > 0 && macs > 0, "counters must actually advance");
        per_step_codes.push(codes);
        per_step_macs.push(macs);
        assert_eq!(batch.metrics().get("qmodel/qlinear/fallback_entries"), 0);
    }
    assert_eq!(
        per_step_codes[0], per_step_codes[1],
        "codes unpacked per step must not scale with batch size (B=1 vs B=3)"
    );
    assert_eq!(
        per_step_codes[0], per_step_codes[2],
        "codes unpacked per step must not scale with batch size (B=1 vs B=8)"
    );
    // MACs do scale: B rows of real work per projection.
    assert_eq!(per_step_macs[1], 3 * per_step_macs[0]);
    assert_eq!(per_step_macs[2], 8 * per_step_macs[0]);
}

#[test]
fn batched_greedy_generation_matches_solo_generation() {
    let (model, hs) = setup();
    let q = quantize(&model, &hs, &mixed_plan(&model));
    let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![5], vec![9, 8, 7, 6, 5]];
    let batched = q.generate_greedy_batched(&prompts, 10).unwrap();
    for (i, prompt) in prompts.iter().enumerate() {
        assert_eq!(
            batched[i],
            q.generate_greedy(prompt, 10).unwrap(),
            "prompt {i}"
        );
    }
}

#[test]
fn batched_generation_validates_inputs() {
    use aptq_qmodel::QModelError;

    let (model, hs) = setup();
    let q = quantize(&model, &hs, &QuantPlan::uniform(&model, 4));
    assert!(matches!(
        q.generate_greedy_batched(&[vec![1], vec![99]], 4),
        Err(QModelError::TokenOutOfRange { .. })
    ));
    let long: Vec<u32> = (0..65).map(|i| (i % 16) as u32).collect();
    assert!(matches!(
        q.generate_greedy_batched(&[vec![1], long], 4),
        Err(QModelError::SequenceTooLong { .. })
    ));
}

#[test]
fn sampled_generation_per_token_cost_is_flat_on_packed_storage() {
    // Satellite regression: `generate_sampled` used to re-run the full
    // forward per emitted token — O(T²) unpacking on packed storage.
    // Routed through a DecodeSession, the per-fed-token unpacking work
    // must be flat (each feed is one 1-row projection per layer).
    use aptq_lm::generate::{generate_sampled_session, SampleConfig};
    use aptq_tensor::init;

    let (model, hs) = setup();
    let q = quantize(&model, &hs, &mixed_plan(&model));
    let cfg = SampleConfig {
        temperature: 0.9,
        top_k: 5,
    };
    let mut session = q.decode_session();
    let out = generate_sampled_session(&mut session, &[1, 2, 3], 20, cfg, &mut init::rng(9))
        .map_err(|e| e.to_string())
        .unwrap();
    assert_eq!(out.len(), 23);
    let fed = session.metrics().get("decode/tokens");
    assert_eq!(fed, 23, "each token is fed exactly once — no re-forwards");
    let codes = session.metrics().get("qmodel/qlinear/codes_unpacked");
    // Flat per-token cost: total unpacking divides evenly by tokens
    // fed, and equals what a single fed token costs.
    assert_eq!(codes % fed, 0);
    let mut probe = q.decode_session();
    probe.feed(1).unwrap();
    assert_eq!(
        codes / fed,
        probe.metrics().get("qmodel/qlinear/codes_unpacked")
    );
}

#[test]
fn quarantine_isolates_peers_on_packed_path() {
    let (model, hs) = setup();
    let q = quantize(&model, &hs, &mixed_plan(&model));
    let mut chaos = q.batch_decode_session();
    let ids: Vec<usize> = (0..3).map(|_| chaos.join()).collect();
    let mut clean = q.batch_decode_session();
    let clean_ids: Vec<usize> = (0..2).map(|_| clean.join()).collect();

    let mut evicted = false;
    for i in 0..8 {
        let mut toks: Vec<(usize, u32)> = Vec::new();
        for (s, &id) in ids.iter().enumerate() {
            if s == 1 && evicted {
                continue;
            }
            toks.push((id, stream(s, i)));
        }
        let chaos_logits = chaos.step(&toks).unwrap();
        let clean_toks = [(clean_ids[0], stream(0, i)), (clean_ids[1], stream(2, i))];
        let clean_logits = clean.step(&clean_toks).unwrap();
        let peer_rows: [usize; 2] = if evicted { [0, 1] } else { [0, 2] };
        for (clean_row, &chaos_row) in peer_rows.iter().enumerate() {
            assert_eq!(
                chaos_logits.row(chaos_row),
                clean_logits.row(clean_row),
                "step {i}: packed-path peers must be bit-identical to a \
                 batch that never contained the poisoned sequence"
            );
        }
        if chaos.evicted_last_step().contains(&ids[1]) {
            evicted = true;
        }
        if i == 2 && !evicted {
            chaos.poison_kv_cache(ids[1]).unwrap();
        }
    }
    assert!(evicted, "poisoned sequence must be evicted");
    assert_eq!(chaos.metrics().get("decode/quarantine/evictions"), 1);
}
