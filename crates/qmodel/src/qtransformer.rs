//! The packed-weight transformer: full inference from 2/4-bit storage.
//!
//! There is no quantized forward implementation here. [`QuantizedModel`]
//! wraps [`ModelOf<QuantizedLinear>`] — the *same* generic transformer
//! stack the fp32 [`Model`] instantiates — so the packed path reuses
//! attention, FFN, block, model and KV-cache decode code verbatim and
//! can never drift from the reference. This module only (a) quantizes
//! and installs the weights, (b) validates inputs into
//! [`QModelError`]s, and (c) reports the deployable memory footprint.

use std::collections::BTreeMap;

use aptq_artifact::{ArtifactError, ArtifactKind};
use aptq_core::engine::quantize_layer_obq;
use aptq_core::grid::{GridConfig, QuantGrid};
use aptq_core::hessian::LayerHessian;
use aptq_core::plan::QuantPlan;
use aptq_lm::attention::MultiHeadAttention;
use aptq_lm::block::TransformerBlock;
use aptq_lm::decode::{generate_greedy_cached, BatchDecodeSession, DecodeSession};
use aptq_lm::ffn::SwiGlu;
use aptq_lm::{LayerKind, LayerRef, LmError, Model, ModelConfig, ModelOf};
use aptq_obs::Recorder;
use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::memory::MemoryBreakdown;
use crate::qlinear::QuantizedLinear;
use crate::QModelError;

/// A deployable quantized transformer: every projection lives in packed
/// sub-byte storage; embeddings, norms and the LM head stay float (as in
/// the paper's GPTQ-family setting).
///
/// Forward-pass outputs are **bit-identical** to installing the
/// dequantized weights into the reference [`Model`] (tested), so every
/// accuracy number measured through simulated quantization transfers to
/// this execution path exactly. Because the forward *is* the generic
/// [`ModelOf`] path, the packed stack also inherits KV-cache incremental
/// decoding ([`QuantizedModel::decode_session`]) with per-token cost
/// independent of sequence position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    inner: ModelOf<QuantizedLinear>,
    /// Per-layer FNV-1a fingerprints captured at quantization time
    /// (keys are [`LayerRef`] display strings); [`QuantizedModel::verify`]
    /// re-derives them from the packed storage.
    checksums: BTreeMap<String, u64>,
}

/// Fingerprints every packed projection, keyed by [`LayerRef`] display
/// string in canonical layer order.
fn layer_fingerprints(inner: &ModelOf<QuantizedLinear>) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for (b, block) in inner.blocks().iter().enumerate() {
        let layers: [(LayerKind, &QuantizedLinear); 7] = [
            (LayerKind::Q, block.attn.wq()),
            (LayerKind::K, block.attn.wk()),
            (LayerKind::V, block.attn.wv()),
            (LayerKind::O, block.attn.wo()),
            (LayerKind::Gate, block.ffn.gate()),
            (LayerKind::Up, block.ffn.up()),
            (LayerKind::Down, block.ffn.down()),
        ];
        for (kind, lin) in layers {
            out.insert(LayerRef { block: b, kind }.to_string(), lin.fingerprint());
        }
    }
    out
}

impl QuantizedModel {
    /// Quantizes `model` per `plan` under `hessians` (the OBQ engine)
    /// and packs the result.
    ///
    /// # Determinism
    ///
    /// Layer solves run sequentially here; the engine's inner matmuls
    /// use the shared threadpool ([`aptq_tensor::parallel`]) and are
    /// bit-identical at any `APTQ_THREADS` value.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::MissingLayer`] if a layer lacks a plan or
    /// Hessian entry; propagates engine failures.
    pub fn quantize_from(
        model: &Model,
        plan: &QuantPlan,
        hessians: &BTreeMap<LayerRef, LayerHessian>,
        cfg: &GridConfig,
    ) -> Result<Self, QModelError> {
        let mcfg = model.config().clone();
        let mut blocks = Vec::with_capacity(mcfg.n_layers);
        for b in 0..mcfg.n_layers {
            let quantize_one = |kind: LayerKind| -> Result<QuantizedLinear, QModelError> {
                let layer = LayerRef { block: b, kind };
                let bits = plan
                    .bits_for(layer)
                    .ok_or_else(|| QModelError::MissingLayer(layer.to_string()))?;
                let lh = hessians
                    .get(&layer)
                    .ok_or_else(|| QModelError::MissingLayer(layer.to_string()))?;
                let grid = QuantGrid::try_int(bits, cfg.asymmetric)?;
                let res = quantize_layer_obq(
                    &layer.to_string(),
                    model.layer_weight(layer),
                    lh,
                    grid,
                    cfg,
                )?;
                Ok(QuantizedLinear::new(res.packed))
            };
            let src = &model.blocks()[b];
            let attn = MultiHeadAttention::from_parts(
                quantize_one(LayerKind::Q)?,
                quantize_one(LayerKind::K)?,
                quantize_one(LayerKind::V)?,
                quantize_one(LayerKind::O)?,
                mcfg.n_heads,
            );
            let ffn = SwiGlu::from_parts(
                quantize_one(LayerKind::Gate)?,
                quantize_one(LayerKind::Up)?,
                quantize_one(LayerKind::Down)?,
            );
            blocks.push(TransformerBlock::from_parts(
                attn,
                ffn,
                src.norm1.clone(),
                src.norm2.clone(),
            ));
        }
        let inner = ModelOf::from_parts(
            mcfg,
            model.embed().clone(),
            blocks,
            model.final_norm().clone(),
            model.lm_head().clone(),
        );
        let checksums = layer_fingerprints(&inner);
        Ok(QuantizedModel { inner, checksums })
    }

    /// Re-derives every packed layer's fingerprint and compares it to
    /// the checksum captured at quantization time. Detects any bit-level
    /// corruption of packed codes, group parameters or shapes since the
    /// model was built (or since [`QuantizedModel::from_envelope_json`]
    /// validated it).
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::Integrity`] naming the first corrupted
    /// layer (canonical order), or a malformed-checksum-table error if
    /// the layer sets diverge.
    pub fn verify(&self) -> Result<(), QModelError> {
        let derived = layer_fingerprints(&self.inner);
        aptq_artifact::verify_sections(&self.checksums, &derived)?;
        Ok(())
    }

    /// Fault-injection hook: XORs `mask` into one packed code byte of
    /// the given layer (see [`QuantizedLinear::corrupt_packed_byte`]).
    /// The stored checksum is deliberately left untouched, so
    /// [`QuantizedModel::verify`] reports the layer. Returns `true` if a
    /// byte actually changed; `false` (never a panic) for an
    /// out-of-range block, a zero mask, or an empty code stream.
    pub fn corrupt_layer(&mut self, layer: LayerRef, byte_index: usize, mask: u8) -> bool {
        let Some(block) = self.inner.blocks_mut().get_mut(layer.block) else {
            return false;
        };
        let lin = match layer.kind {
            LayerKind::Q => block.attn.wq_mut(),
            LayerKind::K => block.attn.wk_mut(),
            LayerKind::V => block.attn.wv_mut(),
            LayerKind::O => block.attn.wo_mut(),
            LayerKind::Gate => block.ffn.gate_mut(),
            LayerKind::Up => block.ffn.up_mut(),
            LayerKind::Down => block.ffn.down_mut(),
        };
        lin.corrupt_packed_byte(byte_index, mask)
    }

    /// Serializes the packed model into a checksummed
    /// [`aptq_artifact`] envelope (kind `packed-model`); the header
    /// carries the per-layer fingerprints as sections.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::Integrity`] on serialization failure.
    pub fn to_envelope_json(&self) -> Result<String, QModelError> {
        let payload = serde_json::to_string(self)
            .map_err(|e| QModelError::Integrity(ArtifactError::Malformed(e.to_string())))?;
        let text = aptq_artifact::seal(ArtifactKind::PackedModel, &self.checksums, &payload)?;
        Ok(text)
    }

    /// Restores a packed model from a
    /// [`QuantizedModel::to_envelope_json`] artifact, validating the
    /// header, the payload checksum, the header sections against the
    /// stored checksum table, and finally [`QuantizedModel::verify`]
    /// against the re-derived layer fingerprints.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::Integrity`] wrapping the structured
    /// [`ArtifactError`] — never panics, even on truncated or
    /// bit-flipped input.
    pub fn from_envelope_json(text: &str) -> Result<QuantizedModel, QModelError> {
        let opened = aptq_artifact::open(ArtifactKind::PackedModel, text)?;
        let model: QuantizedModel = serde_json::from_str(opened.payload)
            .map_err(|e| QModelError::Integrity(ArtifactError::Malformed(e.to_string())))?;
        aptq_artifact::verify_sections(&opened.sections, &model.checksums)?;
        model.verify()?;
        Ok(model)
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.inner.config()
    }

    /// The underlying generic transformer over packed operators.
    ///
    /// Everything generic over [`aptq_lm::LinearOp`] — evaluation
    /// harnesses, [`DecodeSession`], generation — accepts this directly.
    pub fn model(&self) -> &ModelOf<QuantizedLinear> {
        &self.inner
    }

    /// Starts a KV-cache incremental decode session over the packed
    /// weights.
    ///
    /// Per-token cost is independent of position (no re-running the
    /// prefix), and fed tokens produce logits bit-identical to the full
    /// [`QuantizedModel::forward`] — the row-independence contract of
    /// [`aptq_lm::LinearOp`] holds for the group-streamed packed
    /// operator.
    pub fn decode_session(&self) -> DecodeSession<'_, QuantizedLinear> {
        DecodeSession::new(&self.inner)
    }

    /// Starts a multi-sequence batched decode session over the packed
    /// weights.
    ///
    /// Each step stacks the active sequences' hidden rows into one
    /// matrix per projection, so every packed weight group is unpacked
    /// **once per layer per step** — not once per sequence — while
    /// every sequence's logits stay bit-identical to a solo
    /// [`QuantizedModel::decode_session`] (tested in
    /// `tests/batch_decode.rs`).
    pub fn batch_decode_session(&self) -> BatchDecodeSession<'_, QuantizedLinear> {
        BatchDecodeSession::new(&self.inner)
    }

    /// Memory footprint of the deployable artifact.
    pub fn memory(&self) -> MemoryBreakdown {
        let mut packed = 0usize;
        let mut fp16_proj = 0usize;
        for b in self.inner.blocks() {
            let attn = &b.attn;
            let ffn = &b.ffn;
            for l in [
                attn.wq(),
                attn.wk(),
                attn.wv(),
                attn.wo(),
                ffn.gate(),
                ffn.up(),
                ffn.down(),
            ] {
                packed += l.storage_bytes();
                fp16_proj += l.d_in() * l.d_out() * 2;
            }
        }
        let cfg = self.inner.config();
        let float = (self.inner.embed().len() + self.inner.lm_head().len()) * 2
            + self.inner.blocks().len() * 2 * cfg.d_model * 2
            + cfg.d_model * 2;
        MemoryBreakdown {
            packed_bytes: packed,
            float_bytes: float,
            fp16_projection_bytes: fp16_proj,
        }
    }

    /// Validates tokens against the vocabulary and sequence capacity.
    fn check_tokens(&self, tokens: &[u32]) -> Result<(), QModelError> {
        let cfg = self.inner.config();
        if tokens.len() > cfg.max_seq_len {
            return Err(QModelError::SequenceTooLong {
                len: tokens.len(),
                max: cfg.max_seq_len,
            });
        }
        for &tok in tokens {
            if tok as usize >= cfg.vocab_size {
                return Err(QModelError::TokenOutOfRange {
                    token: tok,
                    vocab: cfg.vocab_size,
                });
            }
        }
        Ok(())
    }

    /// Maps decode-session errors surfaced through the generic stack
    /// onto this crate's error type. Inputs are pre-validated, so only
    /// the variants a running session can produce are expected.
    fn lift(&self, e: LmError) -> QModelError {
        match e {
            LmError::TokenOutOfRange { token, vocab } => {
                QModelError::TokenOutOfRange { token, vocab }
            }
            LmError::SequenceFull { pos, max_seq_len } => QModelError::SequenceTooLong {
                len: pos + 1,
                max: max_seq_len,
            },
            LmError::NonFiniteLogits { pos } => QModelError::NonFinite { pos },
            // audit:allow(panic): inputs pre-validated by check_tokens; other variants cannot occur
            other => unreachable!("validated quantized path returned {other}"),
        }
    }

    /// Full forward pass from packed storage; returns `T × vocab`
    /// logits via the generic [`ModelOf`] path.
    ///
    /// # Determinism
    ///
    /// The LM-head matmul runs on the shared threadpool
    /// ([`aptq_tensor::parallel`]); logits are bit-identical at any
    /// `APTQ_THREADS` value.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::TokenOutOfRange`] /
    /// [`QModelError::SequenceTooLong`] on invalid input.
    pub fn forward(&self, tokens: &[u32]) -> Result<Matrix, QModelError> {
        self.check_tokens(tokens)?;
        Ok(self.inner.forward(tokens))
    }

    /// [`QuantizedModel::forward`] recording packed-projection work into
    /// `rec` (see [`QuantizedLinear::forward_recorded`] for the
    /// `qmodel/qlinear/…` counter set).
    ///
    /// # Determinism
    ///
    /// Logits *and counters* are bit-identical at any `APTQ_THREADS`
    /// value; see [`QuantizedModel::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::forward`]; validation runs before any
    /// work, so on error `rec` is untouched.
    pub fn forward_recorded(
        &self,
        tokens: &[u32],
        rec: &mut Recorder,
    ) -> Result<Matrix, QModelError> {
        self.check_tokens(tokens)?;
        Ok(self.inner.forward_recorded(tokens, rec))
    }

    /// Greedy generation from packed storage via the KV-cache decode
    /// session — per-token cost independent of position, unlike the old
    /// re-run-the-window path.
    ///
    /// Token selection goes through [`aptq_tensor::select::argmax`]:
    /// NaN logits never win and ties break toward the lowest token id.
    /// Generation stops early once the session reaches `max_seq_len`.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value; see
    /// [`QuantizedModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::TokenOutOfRange`] /
    /// [`QModelError::SequenceTooLong`] on an invalid prompt.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt (as before: there is no last-logits
    /// row to extend).
    pub fn generate_greedy(&self, prompt: &[u32], n_new: usize) -> Result<Vec<u32>, QModelError> {
        assert!(!prompt.is_empty(), "generate_greedy: empty prompt");
        self.check_tokens(prompt)?;
        generate_greedy_cached(&self.inner, prompt, n_new).map_err(|e| self.lift(e))
    }

    /// Greedy generation over many prompts at once through a batched
    /// decode session (continuous batching: sequences leave as they
    /// finish). Output `i` is bit-identical to
    /// `generate_greedy(&prompts[i], n_new)`, but packed weight groups
    /// are unpacked once per step for the whole batch instead of once
    /// per sequence.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value; see
    /// [`QuantizedModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::TokenOutOfRange`] /
    /// [`QModelError::SequenceTooLong`] on an invalid prompt.
    ///
    /// # Panics
    ///
    /// Panics if `prompts` is empty or any prompt is empty (as in
    /// [`QuantizedModel::generate_greedy`]: there is no last-logits
    /// row to extend).
    pub fn generate_greedy_batched(
        &self,
        prompts: &[Vec<u32>],
        n_new: usize,
    ) -> Result<Vec<Vec<u32>>, QModelError> {
        assert!(
            !prompts.is_empty() && prompts.iter().all(|p| !p.is_empty()),
            "generate_greedy_batched: empty prompt"
        );
        for p in prompts {
            self.check_tokens(p)?;
        }
        aptq_lm::decode::generate_greedy_batched(&self.inner, prompts, n_new)
            .map_err(|e| self.lift(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_core::hessian::HessianMode;

    fn setup() -> (Model, Vec<Vec<u32>>, BTreeMap<LayerRef, LayerHessian>) {
        let model = Model::new(&ModelConfig::test_tiny(16), 51);
        let calib: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect();
        let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware).unwrap();
        (model, calib, hs)
    }

    #[test]
    fn packed_forward_matches_simulated_quantization() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let plan = QuantPlan::uniform(&model, 4);
        let qmodel = QuantizedModel::quantize_from(&model, &plan, &hs, &cfg).unwrap();

        // Simulated path: install dequantized weights into a clone.
        let mut simulated = model.clone();
        aptq_core::methods::apply_plan_obq("ref", &mut simulated, &plan, &hs, &cfg).unwrap();

        let tokens = [1u32, 5, 9, 2, 7];
        let a = qmodel.forward(&tokens).unwrap();
        let b = simulated.forward(&tokens);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn mixed_precision_plan_works_end_to_end() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let mut plan = QuantPlan::uniform(&model, 2);
        // Half the layers at 4 bits.
        for (i, layer) in model.layer_refs().into_iter().enumerate() {
            if i % 2 == 0 {
                plan.set_bits(layer, 4);
            }
        }
        let qmodel = QuantizedModel::quantize_from(&model, &plan, &hs, &cfg).unwrap();
        let logits = qmodel.forward(&[1, 2, 3]).unwrap();
        assert!(logits.all_finite());
        let mem = qmodel.memory();
        let bits = mem.projection_bits();
        assert!(bits > 2.0 && bits < 5.0, "mixed 2/4 + metadata: {bits}");
    }

    #[test]
    fn memory_shrinks_with_bits() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q4 = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        let q2 = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 2), &hs, &cfg)
            .unwrap();
        assert!(q2.memory().packed_bytes < q4.memory().packed_bytes);
        // At d=16 group metadata is proportionally heavy; at real widths
        // (see tests/storage_and_checkpoints.rs) this exceeds 3x.
        assert!(q4.memory().projection_compression() > 2.5);
    }

    #[test]
    fn input_validation() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        assert!(matches!(
            q.forward(&[99]),
            Err(QModelError::TokenOutOfRange { .. })
        ));
        let long: Vec<u32> = (0..40).map(|i| (i % 16) as u32).collect();
        assert!(matches!(
            q.forward(&long),
            Err(QModelError::SequenceTooLong { .. })
        ));
        // Recorded path validates before doing any work.
        let mut rec = Recorder::new();
        assert!(q.forward_recorded(&[99], &mut rec).is_err());
        assert_eq!(rec.get("qmodel/qlinear/forward_calls"), 0);
    }

    #[test]
    fn generation_from_packed_storage_is_deterministic() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        let a = q.generate_greedy(&[1, 2], 6).unwrap();
        let b = q.generate_greedy(&[1, 2], 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn incremental_decode_matches_full_forward_bit_exactly() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 3), &hs, &cfg)
            .unwrap();
        let tokens = [1u32, 5, 9, 2, 7, 3];
        let full = q.forward(&tokens).unwrap();
        let mut session = q.decode_session();
        for (i, &t) in tokens.iter().enumerate() {
            let logits = session.feed(t).unwrap();
            assert_eq!(
                logits,
                full.row(i),
                "decode step {i} must match the full packed forward bit-for-bit"
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 3), &hs, &cfg)
            .unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedModel = serde_json::from_str(&json).unwrap();
        assert_eq!(
            q.forward(&[1, 2, 3]).unwrap(),
            back.forward(&[1, 2, 3]).unwrap()
        );
    }

    #[test]
    fn verify_passes_clean_and_detects_bit_flips() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let mut q =
            QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
                .unwrap();
        q.verify().unwrap();
        let target = LayerRef {
            block: 1,
            kind: LayerKind::Gate,
        };
        assert!(q.corrupt_layer(target, 7, 0x10));
        let err = q.verify().unwrap_err();
        match err {
            QModelError::Integrity(aptq_artifact::ArtifactError::ChecksumMismatch {
                section,
                ..
            }) => assert_eq!(section, target.to_string()),
            other => panic!("wrong error: {other}"),
        }
        // Reverting the flip restores integrity.
        assert!(q.corrupt_layer(target, 7, 0x10));
        q.verify().unwrap();
        // Out-of-range block and zero mask are harmless no-ops.
        assert!(!q.corrupt_layer(
            LayerRef {
                block: 99,
                kind: LayerKind::Q
            },
            0,
            0xFF
        ));
        assert!(!q.corrupt_layer(target, 0, 0));
        q.verify().unwrap();
    }

    #[test]
    fn envelope_roundtrip_preserves_outputs() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 3), &hs, &cfg)
            .unwrap();
        let text = q.to_envelope_json().unwrap();
        assert!(aptq_artifact::is_envelope(&text));
        let back = QuantizedModel::from_envelope_json(&text).unwrap();
        assert_eq!(
            q.forward(&[1, 2, 3]).unwrap(),
            back.forward(&[1, 2, 3]).unwrap()
        );
    }

    #[test]
    fn envelope_rejects_corruption_and_garbage() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        let text = q.to_envelope_json().unwrap();
        // Mutate one payload byte (digit swap keeps it UTF-8).
        let body = text.find('\n').unwrap() + 1;
        let mid = body + (text.len() - body) / 2;
        let mutated: String = text
            .char_indices()
            .map(|(i, c)| {
                if i >= mid && c.is_ascii_digit() && i < mid + 40 {
                    if c == '1' {
                        '2'
                    } else {
                        '1'
                    }
                } else {
                    c
                }
            })
            .collect();
        assert_ne!(mutated, text);
        assert!(matches!(
            QuantizedModel::from_envelope_json(&mutated),
            Err(QModelError::Integrity(_))
        ));
        assert!(QuantizedModel::from_envelope_json("junk").is_err());
        // Truncation never panics.
        assert!(QuantizedModel::from_envelope_json(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn missing_plan_entry_is_reported() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let empty_plan = QuantPlan::from_assignments(BTreeMap::new());
        assert!(matches!(
            QuantizedModel::quantize_from(&model, &empty_plan, &hs, &cfg),
            Err(QModelError::MissingLayer(_))
        ));
    }
}
