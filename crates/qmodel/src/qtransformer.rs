//! The packed-weight transformer: full inference from 2/4-bit storage.

use std::collections::BTreeMap;

use aptq_core::engine::quantize_layer_obq;
use aptq_core::grid::{GridConfig, QuantGrid};
use aptq_core::hessian::LayerHessian;
use aptq_core::plan::QuantPlan;
use aptq_lm::rmsnorm::RmsNorm;
use aptq_lm::rope::RopeTable;
use aptq_lm::{LayerKind, LayerRef, Model, ModelConfig};
use aptq_obs::Recorder;
use aptq_tensor::activation::softmax_rows;
use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::memory::MemoryBreakdown;
use crate::qlinear::QuantizedLinear;
use crate::QModelError;

/// One transformer block with packed projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantizedBlock {
    wq: QuantizedLinear,
    wk: QuantizedLinear,
    wv: QuantizedLinear,
    wo: QuantizedLinear,
    gate: QuantizedLinear,
    up: QuantizedLinear,
    down: QuantizedLinear,
    norm1: RmsNorm,
    norm2: RmsNorm,
}

/// A deployable quantized transformer: every projection lives in packed
/// sub-byte storage; embeddings, norms and the LM head stay float (as in
/// the paper's GPTQ-family setting).
///
/// Forward-pass outputs are **bit-identical** to installing the
/// dequantized weights into the reference [`Model`] (tested), so every
/// accuracy number measured through simulated quantization transfers to
/// this execution path exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    cfg: ModelConfig,
    embed: Matrix,
    blocks: Vec<QuantizedBlock>,
    final_norm: RmsNorm,
    lm_head: Matrix,
    rope: RopeTable,
}

impl QuantizedModel {
    /// Quantizes `model` per `plan` under `hessians` (the OBQ engine)
    /// and packs the result.
    ///
    /// # Determinism
    ///
    /// Layer solves run sequentially here; the engine's inner matmuls
    /// use the shared threadpool ([`aptq_tensor::parallel`]) and are
    /// bit-identical at any `APTQ_THREADS` value.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::MissingLayer`] if a layer lacks a plan or
    /// Hessian entry; propagates engine failures.
    pub fn quantize_from(
        model: &Model,
        plan: &QuantPlan,
        hessians: &BTreeMap<LayerRef, LayerHessian>,
        cfg: &GridConfig,
    ) -> Result<Self, QModelError> {
        let mcfg = model.config().clone();
        let mut blocks = Vec::with_capacity(mcfg.n_layers);
        for b in 0..mcfg.n_layers {
            let quantize_one = |kind: LayerKind| -> Result<QuantizedLinear, QModelError> {
                let layer = LayerRef { block: b, kind };
                let bits = plan
                    .bits_for(layer)
                    .ok_or_else(|| QModelError::MissingLayer(layer.to_string()))?;
                let lh = hessians
                    .get(&layer)
                    .ok_or_else(|| QModelError::MissingLayer(layer.to_string()))?;
                let grid = QuantGrid::try_int(bits, cfg.asymmetric)?;
                let res = quantize_layer_obq(
                    &layer.to_string(),
                    model.layer_weight(layer),
                    lh,
                    grid,
                    cfg,
                )?;
                Ok(QuantizedLinear::new(res.packed))
            };
            let src = &model.blocks()[b];
            blocks.push(QuantizedBlock {
                wq: quantize_one(LayerKind::Q)?,
                wk: quantize_one(LayerKind::K)?,
                wv: quantize_one(LayerKind::V)?,
                wo: quantize_one(LayerKind::O)?,
                gate: quantize_one(LayerKind::Gate)?,
                up: quantize_one(LayerKind::Up)?,
                down: quantize_one(LayerKind::Down)?,
                norm1: src.norm1.clone(),
                norm2: src.norm2.clone(),
            });
        }
        Ok(QuantizedModel {
            cfg: mcfg.clone(),
            embed: model.embed().clone(),
            blocks,
            final_norm: model.final_norm().clone(),
            lm_head: model.lm_head().clone(),
            rope: RopeTable::new(mcfg.d_head(), mcfg.max_seq_len, mcfg.rope_theta),
        })
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Memory footprint of the deployable artifact.
    pub fn memory(&self) -> MemoryBreakdown {
        let mut packed = 0usize;
        let mut fp16_proj = 0usize;
        for b in &self.blocks {
            for l in [&b.wq, &b.wk, &b.wv, &b.wo, &b.gate, &b.up, &b.down] {
                packed += l.storage_bytes();
                fp16_proj += l.d_in() * l.d_out() * 2;
            }
        }
        let float = (self.embed.len() + self.lm_head.len()) * 2
            + self.blocks.len() * 2 * self.cfg.d_model * 2
            + self.cfg.d_model * 2;
        MemoryBreakdown {
            packed_bytes: packed,
            float_bytes: float,
            fp16_projection_bytes: fp16_proj,
        }
    }

    /// Full forward pass from packed storage; returns `T × vocab`
    /// logits.
    ///
    /// # Determinism
    ///
    /// The LM-head matmul runs on the shared threadpool
    /// ([`aptq_tensor::parallel`]); logits are bit-identical at any
    /// `APTQ_THREADS` value.
    ///
    /// # Errors
    ///
    /// Returns [`QModelError::TokenOutOfRange`] /
    /// [`QModelError::SequenceTooLong`] on invalid input.
    pub fn forward(&self, tokens: &[u32]) -> Result<Matrix, QModelError> {
        self.forward_opt(tokens, None)
    }

    /// [`QuantizedModel::forward`] recording packed-projection work into
    /// `rec` (see [`QuantizedLinear::forward_recorded`] for the
    /// `qmodel/qlinear/…` counter set).
    ///
    /// # Determinism
    ///
    /// Logits *and counters* are bit-identical at any `APTQ_THREADS`
    /// value; see [`QuantizedModel::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::forward`]; on error `rec` may hold
    /// counters for the work done before the failure was detected.
    pub fn forward_recorded(
        &self,
        tokens: &[u32],
        rec: &mut Recorder,
    ) -> Result<Matrix, QModelError> {
        self.forward_opt(tokens, Some(rec))
    }

    fn forward_opt(
        &self,
        tokens: &[u32],
        mut rec: Option<&mut Recorder>,
    ) -> Result<Matrix, QModelError> {
        if tokens.len() > self.cfg.max_seq_len {
            return Err(QModelError::SequenceTooLong {
                len: tokens.len(),
                max: self.cfg.max_seq_len,
            });
        }
        let t = tokens.len();
        let d = self.cfg.d_model;
        let mut x = Matrix::zeros(t, d);
        for (i, &tok) in tokens.iter().enumerate() {
            if tok as usize >= self.cfg.vocab_size {
                return Err(QModelError::TokenOutOfRange {
                    token: tok,
                    vocab: self.cfg.vocab_size,
                });
            }
            x.row_mut(i).copy_from_slice(self.embed.row(tok as usize));
        }

        let n_heads = self.cfg.n_heads;
        let d_head = self.cfg.d_head();
        let scale = 1.0 / (d_head as f32).sqrt();

        for block in &self.blocks {
            // Attention.
            let (normed, _) = block.norm1.forward(&x);
            let mut q = block.wq.forward_opt(&normed, rec.as_deref_mut());
            let mut k = block.wk.forward_opt(&normed, rec.as_deref_mut());
            let v = block.wv.forward_opt(&normed, rec.as_deref_mut());
            for pos in 0..t {
                for h in 0..n_heads {
                    let lo = h * d_head;
                    let hi = lo + d_head;
                    self.rope.apply_row(&mut q.row_mut(pos)[lo..hi], pos);
                    self.rope.apply_row(&mut k.row_mut(pos)[lo..hi], pos);
                }
            }
            let mut concat = Matrix::zeros(t, d);
            for h in 0..n_heads {
                let lo = h * d_head;
                let hi = lo + d_head;
                let qh = q.slice_cols(lo, hi);
                let kh = k.slice_cols(lo, hi);
                let vh = v.slice_cols(lo, hi);
                let mut scores = qh.matmul_nt(&kh);
                scores.scale_assign(scale);
                for i in 0..t {
                    for val in scores.row_mut(i).iter_mut().skip(i + 1) {
                        *val = f32::NEG_INFINITY;
                    }
                }
                softmax_rows(&mut scores);
                concat.set_block(0, lo, &scores.matmul(&vh));
            }
            let attn_out = block.wo.forward_opt(&concat, rec.as_deref_mut());
            x.add_assign(&attn_out);

            // FFN (SwiGLU).
            let (normed2, _) = block.norm2.forward(&x);
            let g = block.gate.forward_opt(&normed2, rec.as_deref_mut());
            let u = block.up.forward_opt(&normed2, rec.as_deref_mut());
            let mut hidden = Matrix::zeros(t, g.cols());
            for (o, (&gv, &uv)) in hidden
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice().iter().zip(u.as_slice()))
            {
                *o = aptq_tensor::activation::silu(gv) * uv;
            }
            let ffn_out = block.down.forward_opt(&hidden, rec.as_deref_mut());
            x.add_assign(&ffn_out);
        }

        let (normed, _) = self.final_norm.forward(&x);
        Ok(normed.matmul(&self.lm_head))
    }

    /// Greedy generation from packed storage.
    ///
    /// Token selection goes through [`aptq_tensor::select::argmax`]:
    /// NaN logits never win and ties break toward the lowest token id.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value; see
    /// [`QuantizedModel::forward`].
    ///
    /// # Errors
    ///
    /// Propagates [`QuantizedModel::forward`] errors.
    pub fn generate_greedy(&self, prompt: &[u32], n_new: usize) -> Result<Vec<u32>, QModelError> {
        let mut tokens = prompt.to_vec();
        for _ in 0..n_new {
            let window_start = tokens.len().saturating_sub(self.cfg.max_seq_len);
            let logits = self.forward(&tokens[window_start..])?;
            let last = logits.row(logits.rows() - 1);
            tokens.push(aptq_tensor::select::argmax(last) as u32);
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_core::hessian::HessianMode;

    fn setup() -> (Model, Vec<Vec<u32>>, BTreeMap<LayerRef, LayerHessian>) {
        let model = Model::new(&ModelConfig::test_tiny(16), 51);
        let calib: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect();
        let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware).unwrap();
        (model, calib, hs)
    }

    #[test]
    fn packed_forward_matches_simulated_quantization() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let plan = QuantPlan::uniform(&model, 4);
        let qmodel = QuantizedModel::quantize_from(&model, &plan, &hs, &cfg).unwrap();

        // Simulated path: install dequantized weights into a clone.
        let mut simulated = model.clone();
        aptq_core::methods::apply_plan_obq("ref", &mut simulated, &plan, &hs, &cfg).unwrap();

        let tokens = [1u32, 5, 9, 2, 7];
        let a = qmodel.forward(&tokens).unwrap();
        let b = simulated.forward(&tokens);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn mixed_precision_plan_works_end_to_end() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let mut plan = QuantPlan::uniform(&model, 2);
        // Half the layers at 4 bits.
        for (i, layer) in model.layer_refs().into_iter().enumerate() {
            if i % 2 == 0 {
                plan.set_bits(layer, 4);
            }
        }
        let qmodel = QuantizedModel::quantize_from(&model, &plan, &hs, &cfg).unwrap();
        let logits = qmodel.forward(&[1, 2, 3]).unwrap();
        assert!(logits.all_finite());
        let mem = qmodel.memory();
        let bits = mem.projection_bits();
        assert!(bits > 2.0 && bits < 5.0, "mixed 2/4 + metadata: {bits}");
    }

    #[test]
    fn memory_shrinks_with_bits() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q4 = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        let q2 = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 2), &hs, &cfg)
            .unwrap();
        assert!(q2.memory().packed_bytes < q4.memory().packed_bytes);
        // At d=16 group metadata is proportionally heavy; at real widths
        // (see tests/storage_and_checkpoints.rs) this exceeds 3x.
        assert!(q4.memory().projection_compression() > 2.5);
    }

    #[test]
    fn input_validation() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        assert!(matches!(
            q.forward(&[99]),
            Err(QModelError::TokenOutOfRange { .. })
        ));
        let long: Vec<u32> = (0..40).map(|i| (i % 16) as u32).collect();
        assert!(matches!(
            q.forward(&long),
            Err(QModelError::SequenceTooLong { .. })
        ));
    }

    #[test]
    fn generation_from_packed_storage_is_deterministic() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 4), &hs, &cfg)
            .unwrap();
        let a = q.generate_greedy(&[1, 2], 6).unwrap();
        let b = q.generate_greedy(&[1, 2], 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let q = QuantizedModel::quantize_from(&model, &QuantPlan::uniform(&model, 3), &hs, &cfg)
            .unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedModel = serde_json::from_str(&json).unwrap();
        assert_eq!(
            q.forward(&[1, 2, 3]).unwrap(),
            back.forward(&[1, 2, 3]).unwrap()
        );
    }

    #[test]
    fn missing_plan_entry_is_reported() {
        let (model, _, hs) = setup();
        let cfg = GridConfig::default();
        let empty_plan = QuantPlan::from_assignments(BTreeMap::new());
        assert!(matches!(
            QuantizedModel::quantize_from(&model, &empty_plan, &hs, &cfg),
            Err(QModelError::MissingLayer(_))
        ));
    }
}
