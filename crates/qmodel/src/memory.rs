//! Edge-device memory accounting for packed models.

use serde::{Deserialize, Serialize};

/// Breakdown of a packed model's storage footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Packed projection codes + group metadata, bytes.
    pub packed_bytes: usize,
    /// Float parts kept at full precision (embedding, norms, LM head),
    /// counted at fp16 (2 bytes/weight) as they would ship, bytes.
    pub float_bytes: usize,
    /// What the packed projections would cost at fp16, bytes.
    pub fp16_projection_bytes: usize,
}

impl MemoryBreakdown {
    /// Total deployable size.
    pub fn total_bytes(&self) -> usize {
        self.packed_bytes + self.float_bytes
    }

    /// Compression of the projection weights vs fp16.
    pub fn projection_compression(&self) -> f32 {
        if self.packed_bytes == 0 {
            0.0
        } else {
            self.fp16_projection_bytes as f32 / self.packed_bytes as f32
        }
    }

    /// Whole-model compression vs an all-fp16 deployment.
    pub fn total_compression(&self) -> f32 {
        let fp16_total = self.fp16_projection_bytes + self.float_bytes;
        if self.total_bytes() == 0 {
            0.0
        } else {
            fp16_total as f32 / self.total_bytes() as f32
        }
    }

    /// Effective bits per projection weight including metadata.
    pub fn projection_bits(&self) -> f32 {
        if self.fp16_projection_bytes == 0 {
            0.0
        } else {
            // fp16_projection_bytes / 2 = number of weights.
            self.packed_bytes as f32 * 8.0 / (self.fp16_projection_bytes as f32 / 2.0)
        }
    }
}

impl std::fmt::Display for MemoryBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packed {} B + float {} B = {} B total ({:.2}x smaller than fp16, {:.2} bits/projection weight)",
            self.packed_bytes,
            self.float_bytes,
            self.total_bytes(),
            self.total_compression(),
            self.projection_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_checks() {
        let m = MemoryBreakdown {
            packed_bytes: 250,
            float_bytes: 100,
            fp16_projection_bytes: 1000,
        };
        assert_eq!(m.total_bytes(), 350);
        assert!((m.projection_compression() - 4.0).abs() < 1e-6);
        assert!((m.total_compression() - 1100.0 / 350.0).abs() < 1e-4);
        // 1000 fp16 bytes = 500 weights; 250 B packed = 2000 bits → 4 bits/w.
        assert!((m.projection_bits() - 4.0).abs() < 1e-6);
        assert!(m.to_string().contains("packed 250"));
    }

    #[test]
    fn degenerate_is_benign() {
        let m = MemoryBreakdown {
            packed_bytes: 0,
            float_bytes: 0,
            fp16_projection_bytes: 0,
        };
        assert_eq!(m.total_compression(), 0.0);
        assert_eq!(m.projection_bits(), 0.0);
    }
}
