//! A linear layer executing directly from packed sub-byte storage.

use aptq_core::grid::GridKind;
use aptq_core::pack::{unpack_codes, PackedTensor};
use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A bias-free linear layer whose weights live in a [`PackedTensor`].
///
/// `forward` never materializes the full fp32 weight matrix: it streams
/// one input-dimension group at a time — unpack the group's codes,
/// dequantize into a `group_size × d_out` scratch, accumulate the
/// partial product — so peak extra memory is one group's worth of f32,
/// matching how an edge runtime would execute.
///
/// # Example
///
/// ```
/// use aptq_core::engine::quantize_layer_rtn;
/// use aptq_core::grid::{GridConfig, QuantGrid};
/// use aptq_qmodel::QuantizedLinear;
/// use aptq_tensor::Matrix;
///
/// let w = Matrix::from_fn(8, 4, |i, j| (i as f32 - j as f32) * 0.1);
/// let res = quantize_layer_rtn(&w, QuantGrid::int(4, true), &GridConfig::default());
/// let qlin = QuantizedLinear::new(res.packed);
/// let x = Matrix::from_fn(3, 8, |i, j| (i + j) as f32 * 0.05);
/// let y = qlin.forward(&x);
/// // Identical to multiplying by the dequantized weights.
/// let want = x.matmul(&res.dequantized);
/// assert_eq!(y, want);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    packed: PackedTensor,
}

impl QuantizedLinear {
    /// Wraps a packed tensor.
    pub fn new(packed: PackedTensor) -> Self {
        QuantizedLinear { packed }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.packed.d_in
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.packed.d_out
    }

    /// Storage bytes (codes + group metadata).
    pub fn storage_bytes(&self) -> usize {
        self.packed.storage_bytes()
    }

    /// Nominal code bits per weight.
    pub fn bits(&self) -> u8 {
        self.packed.grid.bits()
    }

    /// The underlying packed tensor.
    pub fn packed(&self) -> &PackedTensor {
        &self.packed
    }

    /// Computes `y = x · Ŵ` with on-the-fly group dequantization.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let d_in = self.packed.d_in;
        let d_out = self.packed.d_out;
        assert_eq!(x.cols(), d_in, "QuantizedLinear: input width mismatch");
        let t = x.rows();
        let group = self.packed.group_size;
        let grid = self.packed.grid;
        let bits = grid.bits() as usize;
        let mut y = Matrix::zeros(t, d_out);
        let mut scratch = vec![0.0f32; group * d_out];

        let n_groups = self.packed.n_groups();
        for g in 0..n_groups {
            let r0 = g * group;
            let r1 = (r0 + group).min(d_in);
            let rows = r1 - r0;
            // Unpack this group's code rows. Codes are packed row-major
            // over the whole matrix; rows are bit-aligned only when
            // (d_out × bits) % 8 == 0, so unpack from the global stream.
            let start_bit = r0 * d_out * bits;
            let codes = if start_bit.is_multiple_of(8) {
                unpack_codes(
                    &self.packed.data[start_bit / 8..],
                    grid.bits(),
                    rows * d_out,
                )
            } else {
                // Fallback: unpack from the stream start (correct but
                // slower); only reachable for exotic shapes.
                let all = unpack_codes(&self.packed.data, grid.bits(), d_in * d_out);
                all[r0 * d_out..r1 * d_out].to_vec()
            };
            // Dequantize into scratch.
            for (ri, chunk) in codes.chunks(d_out).enumerate() {
                let _ = ri;
                for (c, &code) in chunk.iter().enumerate() {
                    let p = self.packed.params[g * d_out + c];
                    scratch[ri * d_out + c] = grid.dequantize(code, p);
                }
            }
            // Accumulate x[:, r0..r1] × scratch.
            for row in 0..t {
                let x_row = &x.row(row)[r0..r1];
                let y_row = y.row_mut(row);
                for (ri, &xv) in x_row.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let w_row = &scratch[ri * d_out..(ri + 1) * d_out];
                    for (yv, &wv) in y_row.iter_mut().zip(w_row.iter()) {
                        *yv += xv * wv;
                    }
                }
            }
        }
        y
    }

    /// Whether the grid is one of the integer families (sanity queries
    /// for reports).
    pub fn is_integer_grid(&self) -> bool {
        matches!(self.packed.grid.kind(), GridKind::Int { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_core::engine::{quantize_layer_obq, quantize_layer_rtn};
    use aptq_core::grid::{GridConfig, QuantGrid};
    use aptq_core::hessian::HessianAccumulator;
    use aptq_tensor::init;

    #[test]
    fn forward_matches_dequantized_matmul_exactly() {
        for bits in [2u8, 3, 4] {
            let mut rng = init::rng(bits as u64);
            let w = init::normal(24, 10, 0.5, &mut rng);
            let cfg = GridConfig {
                group_size: 8,
                ..GridConfig::default()
            };
            let res = quantize_layer_rtn(&w, QuantGrid::int(bits, true), &cfg);
            let qlin = QuantizedLinear::new(res.packed);
            let x = init::normal(5, 24, 1.0, &mut rng);
            let y = qlin.forward(&x);
            let want = x.matmul(&res.dequantized);
            for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-4, "bits={bits}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_matches_for_obq_quantized_layers() {
        let mut rng = init::rng(9);
        let x_cal = init::normal(40, 16, 1.0, &mut rng);
        let mut acc = HessianAccumulator::new(16);
        acc.update(&x_cal);
        let w = init::normal(16, 12, 0.4, &mut rng);
        let cfg = GridConfig {
            group_size: 8,
            ..GridConfig::default()
        };
        let res =
            quantize_layer_obq("t", &w, &acc.finish(), QuantGrid::int(4, true), &cfg).unwrap();
        let qlin = QuantizedLinear::new(res.packed);
        let x = init::normal(3, 16, 1.0, &mut rng);
        let y = qlin.forward(&x);
        let want = x.matmul(&res.dequantized);
        for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn odd_group_boundaries_still_correct() {
        // d_out=5, bits=2 → group rows are not byte-aligned; exercises
        // the fallback path.
        let mut rng = init::rng(11);
        let w = init::normal(12, 5, 0.5, &mut rng);
        let cfg = GridConfig {
            group_size: 4,
            ..GridConfig::default()
        };
        let res = quantize_layer_rtn(&w, QuantGrid::int(2, true), &cfg);
        let qlin = QuantizedLinear::new(res.packed);
        let x = init::normal(2, 12, 1.0, &mut rng);
        let y = qlin.forward(&x);
        let want = x.matmul(&res.dequantized);
        for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn metadata_accessors() {
        let w = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f32 * 0.01);
        let res = quantize_layer_rtn(&w, QuantGrid::int(4, true), &GridConfig::default());
        let qlin = QuantizedLinear::new(res.packed);
        assert_eq!(qlin.d_in(), 8);
        assert_eq!(qlin.d_out(), 4);
        assert_eq!(qlin.bits(), 4);
        assert!(qlin.is_integer_grid());
        assert!(qlin.storage_bytes() > 0);
    }
}
