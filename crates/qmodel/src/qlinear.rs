//! A linear layer executing directly from packed sub-byte storage.

use aptq_artifact::Fnv64;
use aptq_core::grid::GridKind;
use aptq_core::pack::{unpack_codes_at_into, PackedTensor};
use aptq_lm::LinearOp;
use aptq_obs::Recorder;
use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A bias-free linear layer whose weights live in a [`PackedTensor`].
///
/// `forward` never materializes the full fp32 weight matrix: it streams
/// one input-dimension group at a time — unpack the group's codes,
/// dequantize into a `group_size × d_out` scratch, accumulate the
/// partial product — so peak extra memory is one group's worth of f32,
/// matching how an edge runtime would execute.
///
/// # Example
///
/// ```
/// use aptq_core::engine::quantize_layer_rtn;
/// use aptq_core::grid::{GridConfig, QuantGrid};
/// use aptq_qmodel::QuantizedLinear;
/// use aptq_tensor::Matrix;
///
/// let w = Matrix::from_fn(8, 4, |i, j| (i as f32 - j as f32) * 0.1);
/// let res = quantize_layer_rtn(&w, QuantGrid::int(4, true), &GridConfig::default());
/// let qlin = QuantizedLinear::new(res.packed);
/// let x = Matrix::from_fn(3, 8, |i, j| (i + j) as f32 * 0.05);
/// let y = qlin.forward(&x);
/// // Identical to multiplying by the dequantized weights.
/// let want = x.matmul(&res.dequantized);
/// assert_eq!(y, want);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    packed: PackedTensor,
}

impl QuantizedLinear {
    /// Wraps a packed tensor.
    pub fn new(packed: PackedTensor) -> Self {
        QuantizedLinear { packed }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.packed.d_in
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.packed.d_out
    }

    /// Storage bytes (codes + group metadata).
    pub fn storage_bytes(&self) -> usize {
        self.packed.storage_bytes()
    }

    /// Nominal code bits per weight.
    pub fn bits(&self) -> u8 {
        self.packed.grid.bits()
    }

    /// The underlying packed tensor.
    pub fn packed(&self) -> &PackedTensor {
        &self.packed
    }

    /// FNV-1a fingerprint over everything that determines this layer's
    /// forward: shape, group size, grid bit-width, packed code bytes and
    /// per-group dequantization parameters. Any single-bit corruption of
    /// the packed storage changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat_u64(self.packed.d_in as u64);
        h.eat_u64(self.packed.d_out as u64);
        h.eat_u64(self.packed.group_size as u64);
        h.eat_u64(u64::from(self.packed.grid.bits()));
        h.eat_bytes(&self.packed.data);
        for p in &self.packed.params {
            h.eat_word(u64::from(p.scale.to_bits()));
            h.eat_u64(p.zero as u64);
        }
        h.finish()
    }

    /// Fault-injection hook: XORs `mask` into one packed code byte
    /// (index taken modulo the code-stream length, so any index is
    /// safe). Returns `true` if a byte actually changed — `false` for an
    /// empty code stream or a zero mask. Never panics.
    pub fn corrupt_packed_byte(&mut self, byte_index: usize, mask: u8) -> bool {
        if self.packed.data.is_empty() || mask == 0 {
            return false;
        }
        let idx = byte_index % self.packed.data.len();
        self.packed.data[idx] ^= mask;
        true
    }

    /// Computes `y = x · Ŵ` with on-the-fly group dequantization.
    ///
    /// # Determinism
    ///
    /// Single-threaded scalar loops: bit-identical at any
    /// `APTQ_THREADS` value.
    ///
    /// # HotPath
    ///
    /// Allocation budget: one `t × d_out` output and one group-sized
    /// scratch per call; the streaming group loop is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_opt(x, None)
    }

    /// [`QuantizedLinear::forward`] recording work counters into `rec`
    /// under `qmodel/qlinear/…`: forward calls, groups and codes
    /// unpacked, multiply-accumulates, and `fallback_entries` — the
    /// count of groups that had to re-unpack the whole code stream.
    /// Since the bit-offset unpacker ([`unpack_codes_at_into`]) removed
    /// that path, the counter is materialized at 0 so telemetry
    /// consumers can assert its absence rather than infer it.
    ///
    /// # Determinism
    ///
    /// Single-threaded scalar loops: output *and counters* are
    /// bit-identical at any `APTQ_THREADS` value.
    ///
    /// # HotPath
    ///
    /// Allocation budget: same as [`QuantizedLinear::forward`] plus the
    /// recorder's counter-key interning.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward_recorded(&self, x: &Matrix, rec: &mut Recorder) -> Matrix {
        self.forward_opt(x, Some(rec))
    }

    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub(crate) fn forward_opt(&self, x: &Matrix, rec: Option<&mut Recorder>) -> Matrix {
        // Allocating convenience wrapper (sized one-shot scratch); hot
        // paths use `LinearOp::forward_into` with a reused buffer.
        let mut y = Matrix::zeros(x.rows(), self.packed.d_out);
        self.forward_group_streamed(x, &mut y, rec);
        y
    }

    /// Streams the packed groups, accumulating `x · Ŵ` into `out`
    /// (which must arrive zeroed — callers are [`forward_opt`] and
    /// [`LinearOp::forward_into`], both of which zero it).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in` or `out` is not `(x.rows(), d_out)`.
    fn forward_group_streamed(&self, x: &Matrix, out: &mut Matrix, mut rec: Option<&mut Recorder>) {
        let d_in = self.packed.d_in;
        let d_out = self.packed.d_out;
        assert_eq!(x.cols(), d_in, "QuantizedLinear: input width mismatch");
        assert_eq!(
            out.shape(),
            (x.rows(), d_out),
            "QuantizedLinear: output buffer shape mismatch"
        );
        let t = x.rows();
        let group = self.packed.group_size;
        let grid = self.packed.grid;
        let y = out;
        // Group-sized one-shot scratch — the documented budget.
        let mut scratch = vec![0.0f32; group * d_out];
        let mut code_buf = vec![0u8; group * d_out];

        let n_groups = self.packed.n_groups();
        for g in 0..n_groups {
            let r0 = g * group;
            let r1 = (r0 + group).min(d_in);
            let rows = r1 - r0;
            // Unpack this group's code rows directly from their bit
            // offset into the reused buffer. Codes are packed row-major
            // over the whole matrix and rows are byte-aligned only when
            // (d_out × bits) % 8 == 0; `unpack_codes_at_into` handles
            // the misaligned case without re-unpacking the stream from
            // the start, and without a per-group allocation.
            let codes = &mut code_buf[..rows * d_out];
            unpack_codes_at_into(&self.packed.data, grid.bits(), r0 * d_out, codes);
            if let Some(r) = rec.as_deref_mut() {
                r.incr("qmodel/qlinear/groups_unpacked");
                r.add("qmodel/qlinear/codes_unpacked", (rows * d_out) as u64);
            }
            // Dequantize into scratch.
            for (ri, chunk) in codes.chunks(d_out).enumerate() {
                for (c, &code) in chunk.iter().enumerate() {
                    let p = self.packed.params[g * d_out + c];
                    scratch[ri * d_out + c] = grid.dequantize(code, p);
                }
            }
            // Accumulate x[:, r0..r1] × scratch.
            for row in 0..t {
                let x_row = &x.row(row)[r0..r1];
                let y_row = y.row_mut(row);
                for (ri, &xv) in x_row.iter().enumerate() {
                    // audit:allow(fpeq): exact-zero sparsity skip; no tolerance intended
                    if xv == 0.0 {
                        continue;
                    }
                    let w_row = &scratch[ri * d_out..(ri + 1) * d_out];
                    for (yv, &wv) in y_row.iter_mut().zip(w_row.iter()) {
                        *yv += xv * wv;
                    }
                }
            }
        }
        if let Some(r) = rec {
            r.incr("qmodel/qlinear/forward_calls");
            r.add("qmodel/qlinear/macs", (t * d_in * d_out) as u64);
            r.add("qmodel/qlinear/fallback_entries", 0);
        }
    }

    /// Whether the grid is one of the integer families (sanity queries
    /// for reports).
    pub fn is_integer_grid(&self) -> bool {
        matches!(self.packed.grid.kind(), GridKind::Int { .. })
    }
}

impl LinearOp for QuantizedLinear {
    fn d_in(&self) -> usize {
        QuantizedLinear::d_in(self)
    }

    fn d_out(&self) -> usize {
        QuantizedLinear::d_out(self)
    }

    /// Group-streamed packed forward into the caller buffer.
    ///
    /// Row-independent by construction: each output row accumulates its
    /// own group partials in the same (g ascending, ri ascending) order
    /// regardless of batch size, so 1-row incremental decode is
    /// bit-identical to the full-sequence forward.
    ///
    /// # Determinism
    ///
    /// Single-threaded scalar loops: output and counters are
    /// bit-identical at any `APTQ_THREADS` value.
    fn forward_into(&self, x: &Matrix, out: &mut Matrix, rec: Option<&mut Recorder>) {
        out.as_mut_slice().fill(0.0);
        self.forward_group_streamed(x, out, rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_core::engine::{quantize_layer_obq, quantize_layer_rtn};
    use aptq_core::grid::{GridConfig, QuantGrid};
    use aptq_core::hessian::HessianAccumulator;
    use aptq_tensor::init;

    #[test]
    fn forward_matches_dequantized_matmul_exactly() {
        for bits in [2u8, 3, 4] {
            let mut rng = init::rng(bits as u64);
            let w = init::normal(24, 10, 0.5, &mut rng);
            let cfg = GridConfig {
                group_size: 8,
                ..GridConfig::default()
            };
            let res = quantize_layer_rtn(&w, QuantGrid::int(bits, true), &cfg);
            let qlin = QuantizedLinear::new(res.packed);
            let x = init::normal(5, 24, 1.0, &mut rng);
            let y = qlin.forward(&x);
            let want = x.matmul(&res.dequantized);
            for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-4, "bits={bits}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_matches_for_obq_quantized_layers() {
        let mut rng = init::rng(9);
        let x_cal = init::normal(40, 16, 1.0, &mut rng);
        let mut acc = HessianAccumulator::new(16);
        acc.update(&x_cal);
        let w = init::normal(16, 12, 0.4, &mut rng);
        let cfg = GridConfig {
            group_size: 8,
            ..GridConfig::default()
        };
        let res =
            quantize_layer_obq("t", &w, &acc.finish(), QuantGrid::int(4, true), &cfg).unwrap();
        let qlin = QuantizedLinear::new(res.packed);
        let x = init::normal(3, 16, 1.0, &mut rng);
        let y = qlin.forward(&x);
        let want = x.matmul(&res.dequantized);
        for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn odd_group_boundaries_still_correct() {
        // d_out=5, bits=2 → group rows are not byte-aligned; exercises
        // the bit-offset unpacker.
        let mut rng = init::rng(11);
        let w = init::normal(12, 5, 0.5, &mut rng);
        let cfg = GridConfig {
            group_size: 4,
            ..GridConfig::default()
        };
        let res = quantize_layer_rtn(&w, QuantGrid::int(2, true), &cfg);
        let qlin = QuantizedLinear::new(res.packed);
        let x = init::normal(2, 12, 1.0, &mut rng);
        let y = qlin.forward(&x);
        let want = x.matmul(&res.dequantized);
        for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn misaligned_groups_match_dequantized_matmul_and_never_fall_back() {
        // Odd d_out at every sub-byte width: group rows land at bit
        // offsets that straddle bytes ((r0·d_out·bits) % 8 ≠ 0 for most
        // groups). The forward must agree with the dequantized matmul,
        // touch each code exactly once, and never take a re-unpack
        // fallback (the counter exists so this stays asserted, not
        // assumed).
        for bits in [2u8, 3, 4] {
            let (d_in, d_out) = (20, 7);
            let mut rng = init::rng(100 + bits as u64);
            let w = init::normal(d_in, d_out, 0.5, &mut rng);
            let cfg = GridConfig {
                group_size: 4,
                ..GridConfig::default()
            };
            let res = quantize_layer_rtn(&w, QuantGrid::int(bits, true), &cfg);
            let qlin = QuantizedLinear::new(res.packed);
            let x = init::normal(3, d_in, 1.0, &mut rng);
            let mut rec = Recorder::new();
            let y = qlin.forward_recorded(&x, &mut rec);
            let want = x.matmul(&res.dequantized);
            for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-4, "bits={bits}: {a} vs {b}");
            }
            assert_eq!(rec.get("qmodel/qlinear/fallback_entries"), 0);
            assert_eq!(
                rec.get("qmodel/qlinear/codes_unpacked"),
                (d_in * d_out) as u64,
                "bits={bits}: each code must be unpacked exactly once"
            );
            assert_eq!(rec.get("qmodel/qlinear/groups_unpacked"), 5);
            assert_eq!(rec.get("qmodel/qlinear/forward_calls"), 1);
        }
    }

    #[test]
    fn metadata_accessors() {
        let w = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f32 * 0.01);
        let res = quantize_layer_rtn(&w, QuantGrid::int(4, true), &GridConfig::default());
        let qlin = QuantizedLinear::new(res.packed);
        assert_eq!(qlin.d_in(), 8);
        assert_eq!(qlin.d_out(), 4);
        assert_eq!(qlin.bits(), 4);
        assert!(qlin.is_integer_grid());
        assert!(qlin.storage_bytes() > 0);
    }
}
