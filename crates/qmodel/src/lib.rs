//! # aptq-qmodel
//!
//! Packed-weight quantized inference — the deployment half of the APTQ
//! story.
//!
//! The quantization methods in `aptq-core` evaluate quality by
//! *simulated* quantization: they install dequantized fp32 weights back
//! into the full-precision [`aptq_lm::Model`]. A real edge deployment
//! instead ships **packed 2/4-bit codes plus group parameters** and
//! dequantizes on the fly during the matmul, never materializing the
//! fp32 weight matrix. This crate implements that execution path:
//!
//! - [`QuantizedLinear`]: a linear layer whose weight lives in a
//!   [`aptq_core::pack::PackedTensor`]; `forward` streams one input-dim
//!   group at a time through a small scratch buffer.
//! - [`QuantizedModel`]: the full transformer with every projection
//!   packed (embeddings, norms and LM head stay fp32, as in the paper's
//!   GPTQ-family setting), constructible straight from a model + a
//!   [`aptq_core::QuantPlan`] + calibration Hessians.
//! - Bit-exact agreement with the simulated path (tested): the packed
//!   execution produces the same logits as installing the dequantized
//!   weights into the reference model.
//! - [`MemoryBreakdown`]: the edge-device size accounting (packed codes
//!   + metadata vs fp16).

pub mod memory;
pub mod qlinear;
pub mod qtransformer;

pub use memory::MemoryBreakdown;
pub use qlinear::QuantizedLinear;
pub use qtransformer::QuantizedModel;

/// Errors surfaced by packed-model construction and inference.
#[derive(Debug)]
pub enum QModelError {
    /// Quantization of a layer failed.
    Quant(aptq_core::QuantError),
    /// A plan/Hessian entry was missing for a layer.
    MissingLayer(String),
    /// Token id outside the vocabulary.
    TokenOutOfRange {
        /// Offending token.
        token: u32,
        /// Vocabulary size.
        vocab: usize,
    },
    /// Sequence longer than the RoPE table.
    SequenceTooLong {
        /// Requested length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// Decode produced non-finite logits; the session is quarantined.
    NonFinite {
        /// Decode position at which the logits went non-finite.
        pos: usize,
    },
    /// Artifact integrity failure: envelope malformed or a packed
    /// layer's checksum no longer matches its stored fingerprint.
    Integrity(aptq_artifact::ArtifactError),
}

impl std::fmt::Display for QModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QModelError::Quant(e) => write!(f, "layer quantization failed: {e}"),
            QModelError::MissingLayer(l) => write!(f, "no plan/hessian entry for layer {l}"),
            QModelError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} out of range for vocab {vocab}")
            }
            QModelError::SequenceTooLong { len, max } => {
                write!(f, "sequence of {len} tokens exceeds max length {max}")
            }
            QModelError::NonFinite { pos } => {
                write!(
                    f,
                    "non-finite logits at decode position {pos}: sequence quarantined"
                )
            }
            QModelError::Integrity(e) => write!(f, "packed-model integrity failure: {e}"),
        }
    }
}

impl std::error::Error for QModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QModelError::Quant(e) => Some(e),
            QModelError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aptq_core::QuantError> for QModelError {
    fn from(e: aptq_core::QuantError) -> Self {
        QModelError::Quant(e)
    }
}

impl From<aptq_artifact::ArtifactError> for QModelError {
    fn from(e: aptq_artifact::ArtifactError) -> Self {
        QModelError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format() {
        assert!(QModelError::MissingLayer("x".into())
            .to_string()
            .contains('x'));
        assert!(QModelError::TokenOutOfRange { token: 5, vocab: 2 }
            .to_string()
            .contains('5'));
        assert!(QModelError::SequenceTooLong { len: 9, max: 4 }
            .to_string()
            .contains('9'));
        let e = QModelError::Quant(aptq_core::QuantError::EmptyCalibration);
        assert!(std::error::Error::source(&e).is_some());
        assert!(QModelError::NonFinite { pos: 3 }.to_string().contains('3'));
        let i = QModelError::Integrity(aptq_artifact::ArtifactError::ChecksumMismatch {
            section: "layers.0.self_attn.q_proj".into(),
            expected: 1,
            got: 2,
        });
        assert!(i.to_string().contains("integrity"));
        assert!(std::error::Error::source(&i).is_some());
    }
}
