//! NaN-safe selection primitives shared by every sampler.
//!
//! Greedy decoding and top-k sampling both reduce a logit vector to
//! indices. Doing that with `partial_cmp(..).unwrap_or(Equal)` silently
//! lets NaN win ties (or lose them) depending on scan order, and a
//! top-k cutoff comparison keeps *more* than k entries when logits tie
//! at the boundary. The helpers here pin both behaviours down:
//!
//! - NaN never wins: a NaN logit is treated as absent, not as a value.
//! - Ties break toward the **lowest index**, so results are independent
//!   of iteration strategy and stable across refactors.
//! - [`top_k_indices`] returns *exactly* `min(k, #non-NaN)` indices.

/// Index of the largest non-NaN value, ties broken toward the lowest
/// index. Returns 0 when `xs` is empty or all-NaN (the deterministic
/// fallback a sampler needs; callers that must distinguish should check
/// emptiness first).
///
/// # HotPath
///
/// Allocation budget: zero — one scan, no heap traffic.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in xs.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map_or(0, |(i, _)| i)
}

/// Indices of the `k` largest non-NaN values, ordered by value
/// descending and then by index ascending.
///
/// Always returns exactly `min(k, #non-NaN)` indices — boundary ties
/// are resolved by index rather than keeping every tied entry.
///
/// # HotPath
///
/// Allocation budget: one index vector sized by the candidate count.
pub fn top_k_indices(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).filter(|&i| !xs[i].is_nan()).collect();
    idx.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        // Ties go to the lowest index.
        assert_eq!(argmax(&[5.0, 5.0, 5.0]), 0);
        assert_eq!(argmax(&[1.0, 7.0, 7.0]), 1);
    }

    #[test]
    fn argmax_ignores_nan() {
        assert_eq!(argmax(&[f32::NAN, 1.0, 2.0]), 2);
        assert_eq!(argmax(&[1.0, f32::NAN, 0.5]), 0);
        // NaN in front must not shadow a later maximum.
        assert_eq!(argmax(&[f32::NAN, f32::NAN, -1.0]), 2);
    }

    #[test]
    fn argmax_degenerate_inputs() {
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]), 0);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let xs = [0.5, 2.0, -1.0, 2.0, 1.0];
        assert_eq!(top_k_indices(&xs, 3), vec![1, 3, 4]);
        assert_eq!(top_k_indices(&xs, 99), vec![1, 3, 4, 0, 2]);
        assert_eq!(top_k_indices(&xs, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_boundary_ties_keep_exactly_k() {
        // Four-way tie at the cutoff: exactly k survive, lowest indices.
        let xs = [1.0, 1.0, 1.0, 1.0, 0.0];
        assert_eq!(top_k_indices(&xs, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_skips_nan() {
        let xs = [f32::NAN, 3.0, f32::NAN, 1.0];
        assert_eq!(top_k_indices(&xs, 3), vec![1, 3]);
    }
}
