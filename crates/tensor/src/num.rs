//! Audited numeric conversions.
//!
//! The workspace audit (rule A002) bans bare `as` casts between float
//! and integer domains in hot-path code, because `as` silently accepts
//! lossy conversions. The conversions that hot paths genuinely need are
//! gathered here behind named functions, each annotated once with its
//! range argument; call sites stay cast-free and grep-able.
//!
//! Widening `f32 → f64` never needs this module — use `f64::from`.

/// Narrows an `f64` accumulator to the `f32` storage domain,
/// rounding to nearest.
///
/// This is the one place the workspace deliberately gives up precision:
/// kernels accumulate in `f64` and publish results in `f32` (the model's
/// storage dtype), so the rounding here is the contract, not a bug.
#[inline]
#[must_use]
pub fn narrow_f32(x: f64) -> f32 {
    // audit:allow(cast): deliberate f64→f32 rounding at accumulator boundaries
    x as f32
}

/// Converts a count or dimension to `f64`. Exact for `n < 2^53`, far
/// above any tensor dimension this workspace can allocate.
#[inline]
#[must_use]
pub fn usize_f64(n: usize) -> f64 {
    // audit:allow(cast): counts are < 2^53, conversion is exact
    n as f64
}

/// Converts a count or dimension to `f32`. Exact for `n ≤ 2^24`; model
/// dimensions and group sizes here are at most a few thousand.
#[inline]
#[must_use]
pub fn usize_f32(n: usize) -> f32 {
    // audit:allow(cast): dims/counts ≤ 2^24, conversion is exact
    n as f32
}

/// Rounds to the nearest integer as `i64`, saturating at the `i64`
/// range like `as` does since Rust 1.45.
#[inline]
#[must_use]
pub fn round_i64(x: f32) -> i64 {
    // audit:allow(cast): `as` saturates; value is clamped by callers anyway
    x.round() as i64
}

/// Rounds to the nearest integer as `i32`, saturating at the `i32`
/// range.
#[inline]
#[must_use]
pub fn round_i32(x: f32) -> i32 {
    // audit:allow(cast): `as` saturates; value is clamped by callers anyway
    x.round() as i32
}

/// Converts a small integer (quantization codes, level counts, zero
/// points — all `|v| < 2^24`) to `f32` exactly.
#[inline]
#[must_use]
pub fn small_i32_f32(v: i32) -> f32 {
    // audit:allow(cast): quantization codes/levels are < 2^24, exact in f32
    v as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_rounds_to_nearest() {
        assert_eq!(narrow_f32(1.0), 1.0);
        let x = 1.0f64 + 1e-12;
        assert_eq!(narrow_f32(x), 1.0);
    }

    #[test]
    fn usize_conversions_are_exact_in_range() {
        assert_eq!(usize_f64(1 << 30), (1u64 << 30) as f64);
        assert_eq!(usize_f32(4096), 4096.0);
        assert_eq!(usize_f32(1 << 24), 16_777_216.0);
    }

    #[test]
    fn rounding_is_to_nearest_and_saturating() {
        assert_eq!(round_i64(2.5), 3);
        assert_eq!(round_i64(-2.5), -3);
        assert_eq!(round_i32(f32::INFINITY), i32::MAX);
        assert_eq!(round_i32(f32::NEG_INFINITY), i32::MIN);
        assert_eq!(round_i64(f32::NAN), 0);
    }

    #[test]
    fn small_int_to_f32_exact() {
        assert_eq!(small_i32_f32(255), 255.0);
        assert_eq!(small_i32_f32(-15), -15.0);
    }
}
