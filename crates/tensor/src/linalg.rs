//! Dense linear algebra: Cholesky factorization, triangular solves,
//! SPD inversion and damping.
//!
//! These routines are the numerical heart of the GPTQ/APTQ update
//! machinery: the inverse Hessian used by the column-wise weight update
//! (Eqs. 16–17 of the paper) is obtained from a Cholesky factorization,
//! exactly as GPTQ's "Cholesky reformulation" prescribes.

use crate::num::{narrow_f32, usize_f32};
use crate::{Matrix, TensorError};

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// Accumulates in `f64` for stability; the input must be symmetric
/// positive definite (symmetry is assumed, not checked).
///
/// # Errors
///
/// Returns [`TensorError::NotSquare`] for non-square input and
/// [`TensorError::NotPositiveDefinite`] when a pivot is not strictly
/// positive (callers typically respond by increasing damping).
///
/// # Example
///
/// ```
/// use aptq_tensor::{Matrix, linalg};
///
/// # fn main() -> Result<(), aptq_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = linalg::cholesky(&a)?;
/// let back = l.matmul(&l.transpose());
/// assert!((back[(0, 0)] - 4.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, TensorError> {
    let n = require_square(a)?;
    let mut l = vec![0.0f64; n * n];
    let ad = a.as_slice();
    for i in 0..n {
        for j in 0..=i {
            let mut sum = f64::from(ad[i * n + j]);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::NotPositiveDefinite {
                        pivot: i,
                        value: narrow_f32(sum),
                    });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(Matrix::from_vec(
        n,
        n,
        l.into_iter().map(narrow_f32).collect(),
    ))
}

/// Solves `L·y = b` for lower-triangular `L` (forward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent or a diagonal entry is zero.
pub fn solve_lower(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower: L must be square");
    assert_eq!(b.len(), n, "solve_lower: length mismatch");
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = f64::from(b[i]);
        for k in 0..i {
            sum -= f64::from(l[(i, k)]) * y[k];
        }
        let d = f64::from(l[(i, i)]);
        assert!(d != 0.0, "solve_lower: zero diagonal at {i}");
        y[i] = sum / d;
    }
    y.into_iter().map(narrow_f32).collect()
}

/// Solves `Lᵀ·x = y` for lower-triangular `L` (backward substitution).
///
/// # Panics
///
/// Panics if shapes are inconsistent or a diagonal entry is zero.
pub fn solve_lower_transpose(l: &Matrix, y: &[f32]) -> Vec<f32> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower_transpose: L must be square");
    assert_eq!(y.len(), n, "solve_lower_transpose: length mismatch");
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = f64::from(y[i]);
        for k in i + 1..n {
            sum -= f64::from(l[(k, i)]) * x[k];
        }
        let d = f64::from(l[(i, i)]);
        assert!(d != 0.0, "solve_lower_transpose: zero diagonal at {i}");
        x[i] = sum / d;
    }
    x.into_iter().map(narrow_f32).collect()
}

/// Inverts a symmetric positive-definite matrix via Cholesky.
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, TensorError> {
    let n = require_square(a)?;
    let l = cholesky(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f32; n];
    for j in 0..n {
        e[j] = 1.0;
        let y = solve_lower(&l, &e);
        let x = solve_lower_transpose(&l, &y);
        inv.set_col(j, &x);
        e[j] = 0.0;
    }
    // Symmetrize to wash out round-off.
    for i in 0..n {
        for j in 0..i {
            let m = 0.5 * (inv[(i, j)] + inv[(j, i)]);
            inv[(i, j)] = m;
            inv[(j, i)] = m;
        }
    }
    Ok(inv)
}

/// Upper-triangular Cholesky factor `U` of `A⁻¹` with `A⁻¹ = Uᵀ·U`.
///
/// This is exactly the matrix GPTQ's "Cholesky reformulation" consumes
/// (`torch.linalg.cholesky(H⁻¹, upper=True)`): the fixed-order update
/// for input index `j` uses `U[j,j]` as the effective inverse-Hessian
/// diagonal of the not-yet-quantized subproblem and row `U[j, j..]` to
/// propagate the quantization error (Eqs. 16–17 of the APTQ paper).
///
/// # Errors
///
/// Propagates factorization failures from [`cholesky`].
pub fn inverse_cholesky_upper(a: &Matrix) -> Result<Matrix, TensorError> {
    let _ = require_square(a)?;
    let inv = spd_inverse(a)?;
    // Standard lower factor C with A⁻¹ = C·Cᵀ, then U = Cᵀ gives
    // A⁻¹ = Uᵀ·U with U upper triangular.
    let c = cholesky(&inv)?;
    Ok(c.transpose())
}

/// Adds `lambda` to every diagonal entry in place (Levenberg–Marquardt
/// style damping, used before factorizing quantization Hessians).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn damp_diagonal(a: &mut Matrix, lambda: f32) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "damp_diagonal: matrix must be square");
    for i in 0..n {
        a[(i, i)] += lambda;
    }
}

/// Mean of the diagonal of a square matrix (the "average Hessian trace"
/// sensitivity statistic of APTQ §3.3).
///
/// # Panics
///
/// Panics if the matrix is not square or empty.
pub fn mean_diagonal(a: &Matrix) -> f32 {
    let n = a.rows();
    assert_eq!(a.cols(), n, "mean_diagonal: matrix must be square");
    assert!(n > 0, "mean_diagonal: empty matrix");
    a.trace() / usize_f32(n)
}

/// Symmetrizes a matrix in place: `A ← (A + Aᵀ)/2`.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn symmetrize(a: &mut Matrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "symmetrize: matrix must be square");
    for i in 0..n {
        for j in 0..i {
            let m = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = m;
            a[(j, i)] = m;
        }
    }
}

fn require_square(a: &Matrix) -> Result<usize, TensorError> {
    if a.rows() != a.cols() {
        Err(TensorError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        })
    } else {
        Ok(a.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // Random Gram matrix + damping is SPD.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 - 0.5
        };
        let g = Matrix::from_fn(n, n + 2, |_, _| next());
        let mut a = g.matmul(&g.transpose());
        damp_diagonal(&mut a, 0.1);
        a
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd(8, 1);
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose());
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        // L is lower triangular.
        for i in 0..8 {
            for j in i + 1..8 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match cholesky(&a) {
            Err(TensorError::NotPositiveDefinite { pivot, .. }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(TensorError::NotSquare { .. })));
    }

    #[test]
    fn triangular_solves_invert_l() {
        let a = spd(6, 2);
        let l = cholesky(&a).unwrap();
        let b: Vec<f32> = (0..6).map(|i| i as f32 - 2.5).collect();
        let y = solve_lower(&l, &b);
        // L y should equal b.
        let ly = l.matvec(&y);
        for (x, want) in ly.iter().zip(b.iter()) {
            assert!((x - want).abs() < 1e-4);
        }
        let x = solve_lower_transpose(&l, &y);
        // A x should equal b.
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn spd_inverse_times_a_is_identity() {
        let a = spd(7, 3);
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..7 {
            for j in 0..7 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod[(i, j)] - want).abs() < 1e-3,
                    "({i},{j}) {}",
                    prod[(i, j)]
                );
            }
        }
    }

    #[test]
    fn inverse_cholesky_upper_factorizes_inverse() {
        let a = spd(5, 4);
        let r = inverse_cholesky_upper(&a).unwrap();
        // R is upper triangular.
        for i in 0..5 {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-6);
            }
        }
        let rr = r.matmul_tn(&r); // RᵀR must equal A⁻¹
        let inv = spd_inverse(&a).unwrap();
        for (x, y) in rr.as_slice().iter().zip(inv.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn damping_rescues_semidefinite_matrix() {
        // Rank-deficient Gram matrix.
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(cholesky(&g).is_err());
        let mut d = g.clone();
        damp_diagonal(&mut d, 0.01);
        assert!(cholesky(&d).is_ok());
    }

    #[test]
    fn mean_diagonal_matches_trace() {
        let a = Matrix::from_diag(&[2.0, 4.0, 6.0]);
        assert!((mean_diagonal(&a) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        symmetrize(&mut a);
        assert_eq!(a[(0, 1)], a[(1, 0)]);
        assert_eq!(a[(0, 1)], 3.0);
    }
}
