//! Row-major dense `f32` matrix with shape-checked operations.

use serde::{Deserialize, Serialize};

use crate::num::{narrow_f32, usize_f32};
use crate::parallel;
use crate::stats::kahan_sum;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type used throughout the APTQ
/// reproduction; sequences of token activations are stored as
/// `(tokens × features)` matrices, weights as `(out × in)` or
/// `(in × out)` matrices depending on the call site (documented per use).
///
/// # Example
///
/// ```
/// use aptq_tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f32]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(
            j < self.cols,
            "col index {j} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `values`.
    ///
    /// # Panics
    ///
    /// Panics on index or length mismatch.
    pub fn set_col(&mut self, j: usize, values: &[f32]) {
        assert!(
            j < self.cols,
            "col index {j} out of bounds for {} cols",
            self.cols
        );
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for i0 in (0..self.rows).step_by(B) {
            for j0 in (0..self.cols).step_by(B) {
                for i in i0..(i0 + B).min(self.rows) {
                    for j in j0..(j0 + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Matrix product `self × rhs` using a blocked, parallel kernel.
    ///
    /// Parallelizes over row bands with scoped threads when the output is large
    /// enough to amortize thread spawn cost.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`: each output row is computed
    /// by exactly one thread with a fixed-order inner reduction, so the
    /// band split never regroups floating-point sums.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} × {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        parallel::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Matrix product `self × rhs` written into a caller-provided
    /// buffer — the allocation-free core of [`Matrix::matmul`], exposed
    /// for hot paths that reuse one output buffer across calls.
    ///
    /// `out` is fully overwritten; its prior contents are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out`'s shape is not
    /// `(self.rows(), rhs.cols())`.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`: same kernel as
    /// [`Matrix::matmul`], each output row reduced in a fixed order.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_into: inner dimensions differ ({}x{} × {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into: output shape mismatch"
        );
        out.data.fill(0.0);
        parallel::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Matrix product `selfᵀ × rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: row counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // Aᵀ B: accumulate outer products row by row — sequential memory
        // access on both inputs.
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for t in 0..self.rows {
            let a_row = self.row(t);
            let b_row = rhs.row(t);
            for (i, &a) in a_row.iter().enumerate() {
                // audit:allow(fpeq): exact-zero sparsity skip; no tolerance intended
                if a == 0.0 {
                    continue;
                }
                let o = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    o[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: column counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Matrix–vector product `self × v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec: length mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self − rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Matrix {
        let data = self.data.iter().map(|&a| a * scalar).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, scalar: f32) {
        for a in &mut self.data {
            *a *= scalar;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copies a contiguous block of rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: bad range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copies a contiguous block of columns `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > cols`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols: bad range {start}..{end}"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Writes `block` into `self` starting at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, row: usize, col: usize, block: &Matrix) {
        assert!(
            row + block.rows <= self.rows && col + block.cols <= self.cols,
            "set_block: block {}x{} at ({row},{col}) exceeds {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for i in 0..block.rows {
            let dst = (row + i) * self.cols + col;
            self.data[dst..dst + block.cols].copy_from_slice(block.row(i));
        }
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat: need at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut off = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "hcat: row count mismatch");
            out.set_block(0, off, p);
            off += p.cols;
        }
        out
    }

    /// Concatenates matrices vertically (same column count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat: need at least one part");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut off = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vcat: column count mismatch");
            out.set_block(off, 0, p);
            off += p.rows;
        }
        out
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f32 {
        narrow_f32(self.frobenius_norm_sq_f64().sqrt())
    }

    /// Squared Frobenius norm, compensated in f64.
    pub fn frobenius_norm_sq(&self) -> f32 {
        narrow_f32(self.frobenius_norm_sq_f64())
    }

    fn frobenius_norm_sq_f64(&self) -> f64 {
        kahan_sum(self.data.iter().map(|&a| f64::from(a) * f64::from(a)))
    }

    /// Sum of all elements (compensated f64 accumulator).
    pub fn sum(&self) -> f32 {
        narrow_f32(kahan_sum(self.data.iter().map(|&a| f64::from(a))))
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / usize_f32(self.data.len())
        }
    }

    /// Maximum absolute element value (0 for an empty matrix).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f32 {
        assert_eq!(self.rows, self.cols, "trace: matrix must be square");
        narrow_f32(kahan_sum((0..self.rows).map(|i| f64::from(self[(i, i)]))))
    }

    /// Returns the diagonal as a vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn diag(&self) -> Vec<f32> {
        assert_eq!(self.rows, self.cols, "diag: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).collect()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            let row = self.row(i);
            let show_cols = row.len().min(8);
            write!(f, "  [")?;
            for (j, v) in row[..show_cols].iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:+.4}")?;
            }
            if show_cols < row.len() {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if show_rows < self.rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_into_matches_matmul_and_overwrites() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f32 - j as f32) * 0.7);
        let want = a.matmul(&b);
        let mut out = Matrix::filled(3, 5, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::identity(4).trace(), 4.0);
        assert_eq!(Matrix::filled(2, 2, 7.0).sum(), 28.0);
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f32 * 0.1);
        assert_eq!(a.matmul(&Matrix::identity(7)), a);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 2)) as f32 * 0.03);
        let b = Matrix::from_fn(6, 5, |i, j| ((i * 5 + j) as f32).sin());
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.5);
        let b = Matrix::from_fn(6, 4, |i, j| (i + j) as f32 * 0.25);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(9, 13, |i, j| (i * 13 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.0, -1.0];
        assert_eq!(a.matvec(&v), vec![-2.0, -2.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 8.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 10.0]);
        assert_eq!(a.scale(10.0).as_slice(), &[10.0, 20.0]);
    }

    #[test]
    fn slicing_and_blocks() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let r = a.slice_rows(1, 3);
        assert_eq!(r.shape(), (2, 4));
        assert_eq!(r[(0, 0)], 4.0);
        let c = a.slice_cols(2, 4);
        assert_eq!(c.shape(), (4, 2));
        assert_eq!(c[(0, 0)], 2.0);
        let mut z = Matrix::zeros(4, 4);
        z.set_block(1, 1, &Matrix::filled(2, 2, 9.0));
        assert_eq!(z[(1, 1)], 9.0);
        assert_eq!(z[(2, 2)], 9.0);
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(3, 3)], 0.0);
    }

    #[test]
    fn hcat_vcat_roundtrip() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let h = Matrix::hcat(&[&a, &b]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(0, 4)], 2.0);
        let c = Matrix::filled(1, 3, 3.0);
        let v = Matrix::vcat(&[&a, &c]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v[(2, 0)], 3.0);
    }

    #[test]
    fn norms_and_reductions() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.frobenius_norm_sq() - 25.0).abs() < 1e-6);
        assert_eq!(a.abs_max(), 4.0);
        assert_eq!(a.mean(), 3.5);
        assert!(a.all_finite());
        let mut b = a.clone();
        b[(0, 0)] = f32::NAN;
        assert!(!b.all_finite());
    }

    #[test]
    fn column_access() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(a.col(1), vec![1.0, 3.0, 5.0]);
        let mut b = a.clone();
        b.set_col(0, &[9.0, 9.0, 9.0]);
        assert_eq!(b.col(0), vec![9.0, 9.0, 9.0]);
        assert_eq!(b.col(1), a.col(1));
    }

    #[test]
    fn display_is_nonempty_and_truncates() {
        let a = Matrix::zeros(20, 20);
        let s = format!("{a}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    fn large_parallel_matmul_matches_naive() {
        // Large enough to cross the parallel threshold.
        let a = Matrix::from_fn(130, 70, |i, j| ((i * 7 + j * 3) % 13) as f32 * 0.1 - 0.6);
        let b = Matrix::from_fn(70, 90, |i, j| ((i * 5 + j * 11) % 17) as f32 * 0.05 - 0.4);
        let c = a.matmul(&b);
        // Naive reference.
        for i in (0..130).step_by(17) {
            for j in (0..90).step_by(13) {
                let mut acc = 0.0f32;
                for k in 0..70 {
                    acc += a[(i, k)] * b[(k, j)];
                }
                assert!(
                    (c[(i, j)] - acc).abs() < 1e-3,
                    "({i},{j}): {} vs {acc}",
                    c[(i, j)]
                );
            }
        }
    }
}
