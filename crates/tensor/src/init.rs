//! Seeded random matrix initializers.
//!
//! All randomness in the reproduction flows through explicitly seeded
//! [`rand::rngs::StdRng`] instances so every experiment is replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::num::usize_f32;
use crate::Matrix;

/// Returns a deterministic RNG for the given seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Matrix with entries drawn uniformly from `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Matrix with entries from a normal distribution `N(0, std²)`
/// (Box–Muller from uniform samples; adequate for initialization).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / usize_f32(fan_in + fan_out)).sqrt();
    uniform(fan_in, fan_out, limit, rng)
}

/// Kaiming/He-style initialization scaled by `1/sqrt(fan_in)`, the usual
/// choice for transformer projections.
pub fn kaiming(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    normal(fan_in, fan_out, 1.0 / usize_f32(fan_in).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = uniform(4, 4, 1.0, &mut rng(7));
        let b = uniform(4, 4, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(4, 4, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_limit() {
        let m = uniform(16, 16, 0.25, &mut rng(1));
        assert!(m.as_slice().iter().all(|&v| v.abs() <= 0.25));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = normal(64, 64, 0.5, &mut rng(2));
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / (m.len() as f32);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let small = xavier(4, 4, &mut rng(3));
        let large = xavier(400, 400, &mut rng(3));
        assert!(small.abs_max() > large.abs_max());
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let a = kaiming(16, 8, &mut rng(4));
        let b = kaiming(1024, 8, &mut rng(4));
        // Std of b should be ~8x smaller.
        let std = |m: &Matrix| {
            let mu = m.mean();
            (m.as_slice()
                .iter()
                .map(|&v| (v - mu) * (v - mu))
                .sum::<f32>()
                / m.len() as f32)
                .sqrt()
        };
        assert!(std(&a) > 4.0 * std(&b));
    }
}
