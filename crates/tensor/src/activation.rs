//! Numerically stable nonlinearities and their derivatives.
//!
//! The softmax here is the nonlinearity the APTQ paper singles out: the
//! attention-aware Hessians of §3.2 route gradients through the per-row
//! softmax Jacobian `diag(p) − p·pᵀ`, which [`softmax_jvp_row`]
//! implements.

use crate::Matrix;

/// In-place row-wise softmax with max-subtraction for stability.
///
/// Each row of `m` is replaced by `exp(x − max)/Σexp(x − max)`.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        // audit:allow(div): max-shifted exp sum ≥ 1 (the max element contributes exp(0))
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Returns the row-wise softmax of `m` without modifying it.
pub fn softmax(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_rows(&mut out);
    out
}

/// Jacobian-vector product of softmax for one row.
///
/// Given probabilities `p = softmax(z)` and a perturbation `dz`, returns
/// `J·dz` where `J = diag(p) − p·pᵀ`:
/// `(J·dz)ᵢ = pᵢ·(dzᵢ − Σⱼ pⱼ·dzⱼ)`.
///
/// # Panics
///
/// Panics if `p.len() != dz.len()`.
pub fn softmax_jvp_row(p: &[f32], dz: &[f32]) -> Vec<f32> {
    assert_eq!(p.len(), dz.len(), "softmax_jvp_row: length mismatch");
    let dot: f32 = p.iter().zip(dz.iter()).map(|(&a, &b)| a * b).sum();
    p.iter()
        .zip(dz.iter())
        .map(|(&pi, &di)| pi * (di - dot))
        .collect()
}

/// Vector-Jacobian product of softmax for one row.
///
/// Softmax's Jacobian is symmetric, so this equals [`softmax_jvp_row`];
/// provided under both names so call sites read naturally.
pub fn softmax_vjp_row(p: &[f32], dy: &[f32]) -> Vec<f32> {
    softmax_jvp_row(p, dy)
}

/// SiLU (swish) activation `x·σ(x)` applied element-wise.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of SiLU: `σ(x)·(1 + x·(1 − σ(x)))`.
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// Logistic sigmoid `1/(1+e⁻ˣ)`, stable for large |x|.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// GELU activation (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Log-sum-exp of a slice with max subtraction.
///
/// Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Row-wise log-softmax, numerically stable.
pub fn log_softmax(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let lse = log_sum_exp(row);
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// Cross-entropy loss for one row of logits against a target index.
///
/// Returns `−log softmax(logits)[target]`.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn cross_entropy_row(logits: &[f32], target: usize) -> f32 {
    assert!(
        target < logits.len(),
        "cross_entropy_row: target out of range"
    );
    log_sum_exp(logits) - logits[target]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(i).iter().all(|&p| p > 0.0 && p < 1.0));
        }
        // Monotone in the logits.
        assert!(m[(0, 2)] > m[(0, 1)] && m[(0, 1)] > m[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = softmax(&Matrix::from_rows(&[&[1001.0, 1002.0]]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(b.all_finite());
    }

    #[test]
    fn softmax_jvp_matches_finite_difference() {
        let z = [0.3f32, -1.2, 0.8, 2.0];
        let dz = [0.11f32, -0.07, 0.23, -0.05];
        let p = softmax(&Matrix::from_rows(&[&z]));
        let jvp = softmax_jvp_row(p.row(0), &dz);
        let eps = 1e-3f32;
        let zp: Vec<f32> = z.iter().zip(dz.iter()).map(|(a, d)| a + eps * d).collect();
        let zm: Vec<f32> = z.iter().zip(dz.iter()).map(|(a, d)| a - eps * d).collect();
        let pp = softmax(&Matrix::from_rows(&[&zp]));
        let pm = softmax(&Matrix::from_rows(&[&zm]));
        for k in 0..4 {
            let fd = (pp[(0, k)] - pm[(0, k)]) / (2.0 * eps);
            assert!((jvp[k] - fd).abs() < 1e-3, "k={k}: {} vs {fd}", jvp[k]);
        }
    }

    #[test]
    fn softmax_jvp_output_sums_to_zero() {
        // J·dz lives in the tangent space of the simplex.
        let p = [0.1f32, 0.2, 0.3, 0.4];
        let dz = [1.0f32, -2.0, 0.5, 3.0];
        let out = softmax_jvp_row(&p, &dz);
        let s: f32 = out.iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn sigmoid_silu_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
        assert!((silu(0.0)).abs() < 1e-6);
        assert!(silu(5.0) > 4.9);
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 2.5] {
            let eps = 1e-3;
            let fd = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert!((silu_grad(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn gelu_limits() {
        assert!(gelu(10.0) > 9.99);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!(gelu(0.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f32::consts::LN_2).abs() < 1e-6);
        let big = log_sum_exp(&[1000.0, 1000.0]);
        assert!((big - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let ls = log_softmax(&m);
        let s = softmax(&m);
        for j in 0..3 {
            assert!((ls[(0, j)].exp() - s[(0, j)]).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let logits = [2.0f32, 0.0, -1.0];
        let l0 = cross_entropy_row(&logits, 0);
        let l2 = cross_entropy_row(&logits, 2);
        assert!(l0 < l2);
        assert!(l0 > 0.0);
    }
}
