//! Summary statistics used by quantizer grids, sensitivity reports and
//! the experiment harness.
//!
//! Every reduction in this module runs through [`kahan_sum`] (Neumaier
//! compensated summation) so results are independent of input magnitude
//! ordering to within one f64 ulp — the audit N002 rule pins the rest of
//! the workspace to the same accumulator.

use crate::num::{narrow_f32, usize_f64};

/// Streaming Neumaier-compensated accumulator.
///
/// Tracks a running sum plus a compensation term so that adding values
/// of wildly different magnitudes (the `[1.0, 1e100, 1.0, -1e100]`
/// failure case of naive summation) still recovers the exact result.
/// Use [`kahan_sum`] for one-shot reductions; use this struct when the
/// loop also does other work per element (e.g. the perplexity NLL sum).
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sum: 0.0,
            comp: 0.0,
        }
    }

    /// Add one term, folding the rounding error of the addition into the
    /// compensation term (Neumaier's branch keeps the larger-magnitude
    /// operand as the base so the error term stays representable).
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Compensated total accumulated so far.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Neumaier-compensated sum of an f64 sequence.
///
/// Matches exact (infinitely precise) summation to within 1 ulp on
/// adversarial cancellation inputs where naive left-to-right `.sum()`
/// loses all significant digits; see the property tests.
pub fn kahan_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = KahanSum::new();
    for x in xs {
        acc.add(x);
    }
    acc.total()
}

/// Mean of a slice (compensated f64 accumulator); `0.0` for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    narrow_f32(kahan_sum(xs.iter().map(|&x| f64::from(x))) / usize_f64(xs.len()))
}

/// Population variance; `0.0` for inputs shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(xs));
    narrow_f32(kahan_sum(xs.iter().map(|&x| (f64::from(x) - m).powi(2))) / usize_f64(xs.len()))
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum and maximum of a slice.
///
/// Returns `(0.0, 0.0)` for empty input so degenerate layers quantize to
/// a zero grid instead of panicking.
pub fn min_max(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// `q`-quantile (0 ≤ q ≤ 1) by sorting a copy; linear interpolation
/// between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = f64::from(q) * usize_f64(v.len() - 1);
    // audit:allow(cast): pos ∈ [0, len−1] by the q-range assert above
    let lo = pos.floor() as usize;
    // audit:allow(cast): pos ∈ [0, len−1] by the q-range assert above
    let hi = pos.ceil() as usize;
    let frac = narrow_f32(pos - usize_f64(lo));
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Mean absolute value.
pub fn mean_abs(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    narrow_f32(kahan_sum(xs.iter().map(|&x| f64::from(x).abs())) / usize_f64(xs.len()))
}

/// Root-mean-square error between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rmse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s = kahan_sum(
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| f64::from(x - y).powi(2)),
    );
    narrow_f32((s / usize_f64(a.len())).sqrt())
}

/// Pearson correlation between two slices; `0.0` when either side has no
/// variance *resolvable at f32 precision*.
///
/// The degeneracy guard is epsilon-scaled rather than a bare `== 0.0`:
/// a side is degenerate when its centered sum of squares falls at or
/// below `ε² · Σx²` (ε = f32 machine epsilon). Inputs whose spread is
/// smaller than the rounding noise of their own magnitude (e.g. values
/// alternating by 1 around 2²³) would otherwise yield a correlation
/// made entirely of quantization error.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = f64::from(mean(a));
    let mb = f64::from(mean(b));
    let mut cov = KahanSum::new();
    let mut va = KahanSum::new();
    let mut vb = KahanSum::new();
    // Raw second moments scale the degeneracy threshold to the data.
    let mut sa = KahanSum::new();
    let mut sb = KahanSum::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        let (xf, yf) = (f64::from(x), f64::from(y));
        let dx = xf - ma;
        let dy = yf - mb;
        cov.add(dx * dy);
        va.add(dx * dx);
        vb.add(dy * dy);
        sa.add(xf * xf);
        sb.add(yf * yf);
    }
    let (va, vb) = (va.total(), vb.total());
    let eps = f64::from(f32::EPSILON);
    if va <= eps * eps * sa.total() || vb <= eps * eps * sb.total() {
        return 0.0;
    }
    narrow_f32(cov.total() / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_hand_checked() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-6);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.118034).abs() < 1e-4);
    }

    #[test]
    fn empty_inputs_are_benign() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min_max(&[]), (0.0, 0.0));
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn rmse_zero_iff_equal() {
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert!(rmse(&a, &[1.0, 2.0, 4.0]) > 0.0);
    }

    #[test]
    fn pearson_detects_sign_of_relationship() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [8.0f32, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_rejects_sub_epsilon_variance() {
        // Values alternate by exactly 1 around 2²³ + 0.5: the true mean
        // is not representable in f32, so every centered deviation is
        // dominated by rounding noise. The old `va == 0.0` guard let
        // this through and reported a spurious correlation of ±1.
        let a = [8_388_608.0f32, 8_388_609.0, 8_388_608.0, 8_388_609.0];
        let b = [0.0f32, 1.0, 0.0, 1.0];
        assert_eq!(pearson(&a, &b), 0.0);
        // The same pattern at a small magnitude is well-resolved and
        // must still correlate perfectly.
        let c = [8.0f32, 9.0, 8.0, 9.0];
        assert!((pearson(&c, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kahan_recovers_catastrophic_cancellation() {
        // Naive left-to-right f64 summation returns 0.0 here.
        assert_eq!(kahan_sum([1.0, 1e100, 1.0, -1e100]), 2.0);
        assert_eq!(kahan_sum([1e100, 1.0, -1e100, 1.0]), 2.0);
        assert_eq!(kahan_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn kahan_streaming_matches_one_shot() {
        let xs = [0.1, -2.75, 1e9, 3.5e-8, -1e9, 42.0];
        let mut acc = KahanSum::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.total(), kahan_sum(xs));
    }
}
