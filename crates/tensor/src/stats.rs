//! Summary statistics used by quantizer grids, sensitivity reports and
//! the experiment harness.

use crate::num::{narrow_f32, usize_f64};

/// Mean of a slice (f64 accumulator); `0.0` for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    narrow_f32(xs.iter().map(|&x| f64::from(x)).sum::<f64>() / usize_f64(xs.len()))
}

/// Population variance; `0.0` for inputs shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(xs));
    narrow_f32(xs.iter().map(|&x| (f64::from(x) - m).powi(2)).sum::<f64>() / usize_f64(xs.len()))
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum and maximum of a slice.
///
/// Returns `(0.0, 0.0)` for empty input so degenerate layers quantize to
/// a zero grid instead of panicking.
pub fn min_max(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// `q`-quantile (0 ≤ q ≤ 1) by sorting a copy; linear interpolation
/// between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = f64::from(q) * usize_f64(v.len() - 1);
    // audit:allow(cast): pos ∈ [0, len−1] by the q-range assert above
    let lo = pos.floor() as usize;
    // audit:allow(cast): pos ∈ [0, len−1] by the q-range assert above
    let hi = pos.ceil() as usize;
    let frac = narrow_f32(pos - usize_f64(lo));
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Mean absolute value.
pub fn mean_abs(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    narrow_f32(xs.iter().map(|&x| f64::from(x).abs()).sum::<f64>() / usize_f64(xs.len()))
}

/// Root-mean-square error between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rmse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| f64::from(x - y).powi(2))
        .sum();
    narrow_f32((s / usize_f64(a.len())).sqrt())
}

/// Pearson correlation between two slices; `0.0` when either side has no
/// variance.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = f64::from(mean(a));
    let mb = f64::from(mean(b));
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = f64::from(x) - ma;
        let dy = f64::from(y) - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    narrow_f32(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_hand_checked() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-6);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.118034).abs() < 1e-4);
    }

    #[test]
    fn empty_inputs_are_benign() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min_max(&[]), (0.0, 0.0));
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn rmse_zero_iff_equal() {
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert!(rmse(&a, &[1.0, 2.0, 4.0]) > 0.0);
    }

    #[test]
    fn pearson_detects_sign_of_relationship() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [8.0f32, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
