//! The workspace's single concurrency choke point.
//!
//! Every thread spawned anywhere in the workspace is spawned *here*
//! (audit rule D001), and the worker-thread count is resolved *here*
//! ([`thread_count`], the one sanctioned `APTQ_THREADS` read — audit
//! rule D002). Library code parallelizes exclusively through the
//! helpers in this module:
//!
//! - [`matmul_into`] — the blocked, row-band-parallel matmul kernel;
//! - [`run_indexed`] / [`run_indexed_with`] — a scoped worker pool over
//!   `0..n` job indices whose results come back in index order, so the
//!   output is bit-identical at every thread count.
//!
//! The matmul kernel is deliberately simple: row-band parallelism with
//! a cache-blocked inner loop (i-k-j order so the innermost loop
//! streams both the `b` panel and the output row). It is not BLAS, but
//! it is fast enough to pretrain the tiny LLaMA-family models and run
//! the quantization pipelines in seconds on a laptop-class CPU.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum number of multiply-accumulate operations (m·k·n) before
/// threads are spawned. Thread spawn costs tens of microseconds; small
/// transformer matmuls (and anything already running inside a
/// batch-parallel training worker) must stay sequential.
const PARALLEL_FLOP_THRESHOLD: usize = 2_000_000;

/// Cache block size along the shared (`k`) dimension.
const KBLOCK: usize = 64;

/// Computes `out = a × b` where `a` is `m×k` and `b` is `k×n`, all
/// row-major. `out` must be zero-initialized with length `m*n`.
///
/// # Determinism
///
/// Bit-identical at every thread count: parallelism splits the output
/// into row bands, each output element is accumulated by exactly one
/// worker in the same k-blocked order as the sequential kernel, so the
/// band boundaries never change any floating-point operation order.
///
/// # Panics
///
/// Panics (debug) if slice lengths do not match the given shapes.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);

    if m * k * n < PARALLEL_FLOP_THRESHOLD || m < 2 {
        matmul_band(a, k, b, n, out);
        return;
    }

    let threads = thread_count().min(m);
    let rows_per = m.div_ceil(threads);

    std::thread::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0usize;
        while row0 < m {
            let band_rows = rows_per.min(m - row0);
            let (band, tail) = rest.split_at_mut(band_rows * n);
            let a_band = &a[row0 * k..(row0 + band_rows) * k];
            scope.spawn(move || {
                matmul_band(a_band, k, b, n, band);
            });
            rest = tail;
            row0 += band_rows;
        }
    });
}

/// Sequential blocked kernel for a band of rows.
fn matmul_band(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let rows = out.len() / n.max(1);
    for k0 in (0..k).step_by(KBLOCK) {
        let kend = (k0 + KBLOCK).min(k);
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for kk in k0..kend {
                let av = a_row[kk];
                // audit:allow(fpeq): exact-zero sparsity skip; no tolerance intended
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                // Innermost loop: contiguous over both b_row and o_row,
                // auto-vectorizes well.
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Number of worker threads the hardware supports for parallel kernels
/// (capped at 8; spawning past that buys nothing for these workloads).
///
/// # Determinism
///
/// The value is machine-dependent, but it only ever feeds worker-pool
/// *sizes* — every helper in this module produces results independent
/// of the pool size, so hardware variation never reaches outputs.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Resolved worker-thread count for every parallel code path in the
/// workspace: the `APTQ_THREADS` environment variable when set to a
/// positive integer, otherwise [`available_threads`].
///
/// This is the single sanctioned runtime-configuration read (audit rule
/// D002): schedulers and kernels must take their thread count from here
/// instead of consulting the environment themselves, so one knob
/// controls the whole process.
///
/// # Determinism
///
/// The returned count varies with the environment and hardware, but all
/// consumers in this module and in the OBQ/sensitivity schedulers are
/// bit-identical across thread counts, so the knob affects wall-clock
/// only, never results.
pub fn thread_count() -> usize {
    std::env::var("APTQ_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(available_threads)
}

/// Runs `job(i)` for every `i` in `0..n` on a scoped worker pool of at
/// most `threads` threads, returning results in index order.
///
/// Workers pull indices from a shared atomic counter, so load-balancing
/// is dynamic; results land in their index slot regardless of which
/// worker computed them.
///
/// # Determinism
///
/// Bit-identical at every `threads` value (including 1): each job
/// depends only on its index and the captured immutable state, and the
/// returned `Vec` is ordered by index, not completion time.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(n, threads, || (), |_, i| job(i))
}

/// [`run_indexed`] with per-worker scratch state: `init()` runs once on
/// each worker thread (and once total on the sequential path), and each
/// job receives `&mut` access to its worker's state.
///
/// This is the shape schedulers with expensive per-worker setup need —
/// e.g. the sensitivity probe clones the model once per worker instead
/// of once per layer.
///
/// # Determinism
///
/// Bit-identical at every `threads` value provided each `job(state, i)`
/// leaves `state` equivalent to how it found it (the scratch contract):
/// under that contract a job's result depends only on `i`, never on
/// which worker ran it or what that worker ran before.
pub fn run_indexed_with<S, T, I, F>(n: usize, threads: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..n).map(|i| job(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let next = &next;
        let init = &init;
        let job = &job;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, job(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("indexed worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every scheduled index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn check(m: usize, k: usize, n: usize) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31 % 97) as f32) * 0.02 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 17 % 89) as f32) * 0.03 - 1.3)
            .collect();
        let mut out = vec![0.0f32; m * n];
        matmul_into(&a, m, k, &b, n, &mut out);
        let want = naive(&a, m, k, &b, n);
        for (x, y) in out.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn small_sequential_path() {
        check(3, 5, 4);
    }

    #[test]
    fn single_row() {
        check(1, 100, 100);
    }

    #[test]
    fn single_col() {
        check(100, 100, 1);
    }

    #[test]
    fn crosses_parallel_threshold() {
        check(160, 120, 160);
    }

    #[test]
    fn odd_sizes_past_kblock() {
        check(70, 129, 65);
    }

    #[test]
    fn empty_inner_dim_gives_zeros() {
        let mut out = vec![1.0f32; 4];
        // k == 0: nothing accumulates, but out must stay untouched-as-zeroed
        // by the caller; we simulate the caller contract here.
        out.iter_mut().for_each(|v| *v = 0.0);
        matmul_into(&[], 2, 0, &[], 2, &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn run_indexed_preserves_order_at_any_thread_count() {
        let sequential = run_indexed(37, 1, |i| i * i);
        for threads in [2usize, 4, 16] {
            assert_eq!(run_indexed(37, threads, |i| i * i), sequential);
        }
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn run_indexed_with_gives_each_worker_its_own_state() {
        // Each worker's scratch counts the jobs it ran; the *results*
        // must not depend on that split.
        let out = run_indexed_with(
            100,
            4,
            || 0usize,
            |seen, i| {
                *seen += 1;
                i * 3
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_prefers_env_override() {
        // Serialized against other env-sensitive tests by using a value
        // no other test sets.
        std::env::set_var("APTQ_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("APTQ_THREADS", "0");
        assert_eq!(thread_count(), available_threads(), "0 is not positive");
        std::env::set_var("APTQ_THREADS", "lots");
        assert_eq!(thread_count(), available_threads());
        std::env::remove_var("APTQ_THREADS");
        assert_eq!(thread_count(), available_threads());
    }
}
