//! Blocked, scoped-thread-parallel matrix-multiply kernel.
//!
//! The kernel is deliberately simple: row-band parallelism with a
//! cache-blocked inner loop (i-k-j order so the innermost loop streams
//! both the `b` panel and the output row). It is not BLAS, but it is
//! fast enough to pretrain the tiny LLaMA-family models and run the
//! quantization pipelines in seconds on a laptop-class CPU.

/// Minimum number of multiply-accumulate operations (m·k·n) before
/// threads are spawned. Thread spawn costs tens of microseconds; small
/// transformer matmuls (and anything already running inside a
/// batch-parallel training worker) must stay sequential.
const PARALLEL_FLOP_THRESHOLD: usize = 2_000_000;

/// Cache block size along the shared (`k`) dimension.
const KBLOCK: usize = 64;

/// Computes `out = a × b` where `a` is `m×k` and `b` is `k×n`, all
/// row-major. `out` must be zero-initialized with length `m*n`.
///
/// # Panics
///
/// Panics (debug) if slice lengths do not match the given shapes.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);

    if m * k * n < PARALLEL_FLOP_THRESHOLD || m < 2 {
        matmul_band(a, k, b, n, out);
        return;
    }

    let threads = available_threads().min(m);
    let rows_per = m.div_ceil(threads);

    std::thread::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0usize;
        while row0 < m {
            let band_rows = rows_per.min(m - row0);
            let (band, tail) = rest.split_at_mut(band_rows * n);
            let a_band = &a[row0 * k..(row0 + band_rows) * k];
            scope.spawn(move || {
                matmul_band(a_band, k, b, n, band);
            });
            rest = tail;
            row0 += band_rows;
        }
    });
}

/// Sequential blocked kernel for a band of rows.
fn matmul_band(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let rows = out.len() / n.max(1);
    for k0 in (0..k).step_by(KBLOCK) {
        let kend = (k0 + KBLOCK).min(k);
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for kk in k0..kend {
                let av = a_row[kk];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                // Innermost loop: contiguous over both b_row and o_row,
                // auto-vectorizes well.
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Number of worker threads to use for parallel kernels.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn check(m: usize, k: usize, n: usize) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31 % 97) as f32) * 0.02 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 17 % 89) as f32) * 0.03 - 1.3)
            .collect();
        let mut out = vec![0.0f32; m * n];
        matmul_into(&a, m, k, &b, n, &mut out);
        let want = naive(&a, m, k, &b, n);
        for (x, y) in out.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn small_sequential_path() {
        check(3, 5, 4);
    }

    #[test]
    fn single_row() {
        check(1, 100, 100);
    }

    #[test]
    fn single_col() {
        check(100, 100, 1);
    }

    #[test]
    fn crosses_parallel_threshold() {
        check(160, 120, 160);
    }

    #[test]
    fn odd_sizes_past_kblock() {
        check(70, 129, 65);
    }

    #[test]
    fn empty_inner_dim_gives_zeros() {
        let mut out = vec![1.0f32; 4];
        // k == 0: nothing accumulates, but out must stay untouched-as-zeroed
        // by the caller; we simulate the caller contract here.
        out.iter_mut().for_each(|v| *v = 0.0);
        matmul_into(&[], 2, 0, &[], 2, &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
