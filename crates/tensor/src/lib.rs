//! # aptq-tensor
//!
//! Dense `f32` linear-algebra substrate for the APTQ reproduction.
//!
//! The APTQ pipeline (attention-aware Hessians, GPTQ-style Cholesky
//! updates, transformer forward/backward) needs a small but trustworthy
//! set of numerical primitives:
//!
//! - [`Matrix`]: a row-major dense `f32` matrix with shape-checked ops.
//! - Blocked, thread-parallel [`Matrix::matmul`].
//! - [`linalg`]: Cholesky factorization/inversion (the heart of the GPTQ
//!   update machinery), triangular solves, damping, traces.
//! - [`activation`]: numerically stable softmax and friends.
//! - [`init`]: seeded random initializers.
//! - [`stats`]: summary statistics used by quantizer grids and reports.
//!
//! Everything is pure Rust, deterministic under a fixed seed, and
//! shape-checked with informative panics (dimension mismatches are
//! programming errors, not recoverable conditions).
//!
//! # Example
//!
//! ```
//! use aptq_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod activation;
pub mod init;
pub mod linalg;
pub mod matrix;
pub mod num;
pub mod parallel;
pub mod select;
pub mod stats;

pub use matrix::Matrix;

/// Error type for fallible numerical routines.
///
/// Most shape errors panic (they are bugs); `TensorError` covers genuine
/// runtime conditions such as a Hessian that is not positive definite.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Cholesky factorization hit a non-positive pivot at the given index.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f32,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Observed number of rows.
        rows: usize,
        /// Observed number of columns.
        cols: usize,
    },
    /// An operation received an empty matrix where data was required.
    Empty,
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value}"
            ),
            TensorError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::NotPositiveDefinite {
            pivot: 3,
            value: -0.5,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = TensorError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        assert!(!TensorError::Empty.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
