//! Property-based tests for the tensor substrate.

use aptq_tensor::{activation, linalg, stats, Matrix};
use proptest::prelude::*;

/// Sign-aware monotonic key for f64 bit patterns, so ulp distance is a
/// plain integer difference even across the ±0 boundary.
fn ulp_key(x: f64) -> i64 {
    // Bit-pattern reinterpretation, not a value cast.
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN.wrapping_sub(b)
    } else {
        b
    }
}

fn ulp_diff(a: f64, b: f64) -> u64 {
    ulp_key(a).abs_diff(ulp_key(b))
}

/// Strategy producing a random matrix with entries in [-2, 2].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative((a, b, c) in (matrix(4, 5), matrix(5, 6), matrix(6, 3))) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add((a, b, c) in (matrix(3, 4), matrix(4, 5), matrix(4, 5))) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_reverses_product((a, b) in (matrix(4, 6), matrix(6, 5))) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn gram_matrix_cholesky_roundtrips(g in matrix(8, 6)) {
        // G·Gᵀ + λI is SPD; Cholesky must succeed and reconstruct.
        let mut a = g.matmul(&g.transpose());
        linalg::damp_diagonal(&mut a, 0.5);
        let l = linalg::cholesky(&a).expect("damped Gram matrix must be SPD");
        let back = l.matmul(&l.transpose());
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn spd_inverse_is_inverse(g in matrix(6, 5)) {
        let mut a = g.matmul(&g.transpose());
        linalg::damp_diagonal(&mut a, 1.0);
        let inv = linalg::spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - want).abs() < 5e-2);
            }
        }
    }

    #[test]
    fn inverse_cholesky_upper_consistent(g in matrix(5, 5)) {
        let mut a = g.matmul(&g.transpose());
        linalg::damp_diagonal(&mut a, 1.0);
        let r = linalg::inverse_cholesky_upper(&a).unwrap();
        let inv = linalg::spd_inverse(&a).unwrap();
        let rr = r.matmul_tn(&r); // RᵀR = A⁻¹
        for (x, y) in rr.as_slice().iter().zip(inv.as_slice()) {
            prop_assert!((x - y).abs() < 5e-2);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(5, 9)) {
        let s = activation::softmax(&m);
        for i in 0..5 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(m in matrix(1, 7)) {
        let argmax = |xs: &[f32]| {
            xs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        let s = activation::softmax(&m);
        prop_assert_eq!(argmax(m.row(0)), argmax(s.row(0)));
    }

    #[test]
    fn log_softmax_is_log_of_softmax(m in matrix(3, 6)) {
        let ls = activation::log_softmax(&m);
        let s = activation::softmax(&m);
        for (x, y) in ls.as_slice().iter().zip(s.as_slice()) {
            prop_assert!((x.exp() - y).abs() < 1e-4);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality((a, b) in (matrix(4, 4), matrix(4, 4))) {
        let sum = a.add(&b);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }

    #[test]
    fn kahan_sum_within_one_ulp_of_exact(
        terms in proptest::collection::vec((i32::MIN..=i32::MAX, 0u8..=30), 1..64)
    ) {
        // Each term is (i as f64) · 2^(s−24): exactly representable, and
        // scaled by 2^24 the sum is an exact i128 integer — so the f64
        // nearest to that integer is the correctly rounded true sum.
        let values: Vec<f64> = terms
            .iter()
            .map(|&(i, s)| f64::from(i) * f64::from(i32::from(s) - 24).exp2())
            .collect();
        let exact_scaled: i128 = terms
            .iter()
            .map(|&(i, s)| i128::from(i) << s)
            .sum();
        // i128 → f64 rounds to nearest — the reference we want.
        let reference = (exact_scaled as f64) / 16_777_216.0;
        let got = stats::kahan_sum(values.iter().copied());
        prop_assert!(
            ulp_diff(got, reference) <= 1,
            "kahan_sum={got:e} reference={reference:e}"
        );
    }
}
