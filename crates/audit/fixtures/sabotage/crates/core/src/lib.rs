//! Seeded audit violations, one per comment. Never compiled — scanned
//! only by the audit self-check, which requires every listed rule to
//! fire here (an audit that stops seeing these is broken, not clean).

// A001 + E003: a bare unwrap in a panic-free crate, on a public
// function whose doc comment is missing the panic section. (Plain
// comments here — naming the section in a doc comment would satisfy
// the very check being sabotaged.)
pub fn undocumented_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// A hot-path root that allocates; the doc deliberately omits the
/// allocation-contract line H004 wants (naming it here would satisfy
/// the check).
///
/// # HotPath
pub fn allocating_hot_root() -> Vec<u32> {
    // H001 + E001 (allocation inside a hot closure) and H004 (missing
    // contract line in the root doc).
    let mut v = Vec::new();
    v.push(1);
    v
}

/// H002: a transitive panic site inside the hot closure.
fn hot_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// A second root so the helper is owned by a hot closure.
///
/// # HotPath
/// budget: zero allocations on the steady-state path.
pub fn panicking_hot_root() -> u32 {
    hot_helper(Some(1))
}

/// U001: the allow excuses nothing — `quiet` has no panic site.
pub fn stale_allow() -> u32 {
    // audit:allow(panic): bounded by construction
    quiet()
}

fn quiet() -> u32 {
    7
}
