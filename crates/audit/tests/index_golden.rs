//! Golden snapshots of the symbol index over lexer edge cases.
//!
//! The lexer-grade index is the foundation every cross-file rule stands
//! on; a mis-tokenized declaration silently drops a function from the
//! call graph and with it every D/E/H finding downstream. Each test
//! here feeds the indexer a source exercising one tricky construct —
//! raw strings, raw identifiers, nested generics, multi-line `where`
//! clauses — and pins the *entire* extracted symbol table as a golden
//! string, so any drift in what the lexer sees is a visible diff, not a
//! silently changed call graph.

use aptq_audit::index::{ItemKind, SymbolIndex};

/// Renders the full symbol table of a single-file index as one line per
/// item: `kind name @decl-line pub|priv [callee, ...]`.
fn snapshot(source: &str) -> String {
    let idx = SymbolIndex::build(&[("crates/core/src/x.rs".to_string(), source.to_string())]);
    let file = &idx.files()[0];
    let mut out = String::new();
    for item in &file.items {
        let kind = match item.kind {
            ItemKind::Fn => "fn",
            _ => "struct",
        };
        let vis = if item.is_pub { "pub" } else { "priv" };
        let calls: Vec<&str> = item.calls.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&format!(
            "{kind} {} @{} {vis} {:?}\n",
            item.name,
            item.line + 1,
            calls
        ));
    }
    out
}

#[test]
fn raw_strings_do_not_derail_the_scanner() {
    // The `"//"` and unbalanced braces inside the raw string must not
    // open comments or change brace depth: `after` must still be
    // indexed as a sibling of `logline`, with its call edge intact.
    let src = r####"pub fn logline() -> &'static str {
    let tpl = r#"{"msg": "// not a comment", "brace": "}{"}"#;
    tpl
}

pub fn after() {
    logline();
}
"####;
    assert_eq!(
        snapshot(src),
        "fn logline @1 pub []\n\
         fn after @6 pub [\"logline\"]\n"
    );
}

#[test]
fn raw_identifiers_index_under_their_unprefixed_name() {
    // `r#match` and `match` are the same symbol name to the call-graph;
    // the sigil is spelling, not identity.
    let src = "pub fn r#match(x: u32) -> u32 {\n    x\n}\n\npub fn caller() -> u32 {\n    r#match(1)\n}\n";
    assert_eq!(
        snapshot(src),
        "fn match @1 pub []\n\
         fn caller @5 pub [\"match\"]\n"
    );
}

#[test]
fn nested_generics_in_signatures_keep_the_name_and_body_span() {
    // Nested angle brackets (`Vec<Vec<Option<T>>>`) and a closure
    // argument must not confuse the declaration parser: both functions
    // index at their `fn` lines and the call edge survives. The `Fn(`
    // trait bound is recorded as a benign extra edge — it resolves to
    // no workspace definition, so it is noise the reachability passes
    // never follow; this snapshot pins that it stays benign.
    let src = "pub fn transpose<T: Clone>(m: Vec<Vec<Option<T>>>) -> Vec<Vec<Option<T>>> {\n    m\n}\n\nfn apply<F: Fn(Vec<Vec<Option<u32>>>) -> usize>(f: F) -> usize {\n    f(transpose(Vec::new()))\n}\n";
    assert_eq!(
        snapshot(src),
        "fn transpose @1 pub []\n\
         fn apply @5 priv [\"Fn\", \"f\", \"transpose\", \"new\"]\n"
    );
}

#[test]
fn multi_line_where_clauses_attach_the_body_to_the_decl() {
    // The body brace opens lines after the `fn` keyword; the item must
    // still anchor at the decl line and own the body's call edges.
    let src = "pub fn fold<I, T>(iter: I) -> Option<T>\nwhere\n    I: Iterator<Item = T>,\n    T: PartialOrd,\n{\n    helper(iter)\n}\n\nfn helper<I, T>(_: I) -> Option<T> {\n    None\n}\n";
    assert_eq!(
        snapshot(src),
        "fn fold @1 pub [\"helper\"]\n\
         fn helper @9 priv []\n"
    );
}

#[test]
fn doc_sections_survive_attributes_between_doc_and_decl() {
    let src = "/// Does things.\n///\n/// # Determinism\n///\n/// Bit-identical.\n#[inline]\npub fn f() {}\n";
    let idx = SymbolIndex::build(&[("crates/core/src/x.rs".to_string(), src.to_string())]);
    let item = &idx.files()[0].items[0];
    assert!(item.has_determinism_doc);
    assert_eq!(item.line + 1, 7);
}
