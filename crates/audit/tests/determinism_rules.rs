//! Sabotage suite for the determinism rule set (D001–D006).
//!
//! For each rule: a synthetic source where the violation fires *exactly
//! once*, and an annotated (or documented) variant that is clean — so a
//! rule can neither go blind nor start double-reporting without a test
//! catching it. The golden test at the bottom pins the `--json`
//! diagnostic schema (`rule`/`path`/`line`/`col`/`suggestion` fields)
//! that `ci/check.sh` archives as `results/audit.json`.

use aptq_audit::index::SymbolIndex;
use aptq_audit::{determinism, render_json_report, Finding};

/// Runs D001–D006 on one synthetic file.
fn check_one(rel: &str, src: &str) -> Vec<Finding> {
    let idx = SymbolIndex::build(&[(rel.to_string(), src.to_string())]);
    determinism::check_index(&idx)
}

fn only_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn d001_thread_spawn_fires_exactly_once_and_annotation_clears_it() {
    let bad = "fn fan_out() {\n    std::thread::spawn(|| {});\n}\n";
    let f = check_one("crates/core/src/x.rs", bad);
    assert_eq!(only_rule(&f, "D001").len(), 1, "{f:?}");
    assert_eq!(only_rule(&f, "D001")[0].line, 2);

    let annotated = "fn fan_out() {\n    // audit:allow(thread): prototype behind a feature gate\n    std::thread::spawn(|| {});\n}\n";
    let g = check_one("crates/core/src/x.rs", annotated);
    assert!(only_rule(&g, "D001").is_empty(), "{g:?}");
}

#[test]
fn d002_env_read_fires_exactly_once_and_annotation_clears_it() {
    let bad = "pub fn knob() -> Option<String> {\n    std::env::var(\"APTQ_X\").ok()\n}\n";
    let f = check_one("crates/eval/src/x.rs", bad);
    assert_eq!(only_rule(&f, "D002").len(), 1, "{f:?}");

    let annotated = "pub fn knob() -> Option<String> {\n    // audit:allow(env): CI-only escape hatch, never feeds results\n    std::env::var(\"APTQ_X\").ok()\n}\n";
    let g = check_one("crates/eval/src/x.rs", annotated);
    assert!(only_rule(&g, "D002").is_empty(), "{g:?}");
}

#[test]
fn d003_hash_collection_fires_exactly_once_and_annotation_clears_it() {
    let bad = "fn build() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
    let f = check_one("crates/lm/src/x.rs", bad);
    assert_eq!(only_rule(&f, "D003").len(), 1, "{f:?}");
    assert!(f.iter().any(|x| x.suggestion.contains("BTreeMap")));

    let annotated = "fn build() {\n    // audit:allow(order): counts only, never iterated\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
    let g = check_one("crates/lm/src/x.rs", annotated);
    assert!(only_rule(&g, "D003").is_empty(), "{g:?}");
}

#[test]
fn d004_wall_clock_fires_exactly_once_and_annotation_clears_it() {
    let bad = "fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
    let f = check_one("crates/core/src/x.rs", bad);
    assert_eq!(only_rule(&f, "D004").len(), 1, "{f:?}");

    let annotated = "fn f() {\n    // audit:allow(nondet): logged timing only, not part of any result\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
    let g = check_one("crates/core/src/x.rs", annotated);
    assert!(only_rule(&g, "D004").is_empty(), "{g:?}");
}

#[test]
fn d005_global_state_fires_exactly_once_and_annotation_clears_it() {
    let bad = "static mut HITS: u64 = 0;\n";
    let f = check_one("crates/qmodel/src/x.rs", bad);
    assert_eq!(only_rule(&f, "D005").len(), 1, "{f:?}");

    let annotated =
        "// audit:allow(global): write-once process flag, reviewed\nstatic mut HITS: u64 = 0;\n";
    let g = check_one("crates/qmodel/src/x.rs", annotated);
    assert!(only_rule(&g, "D005").is_empty(), "{g:?}");
}

#[test]
fn d006_undocumented_parallel_reach_fires_exactly_once_and_doc_clears_it() {
    let parallel = (
        "crates/tensor/src/parallel.rs".to_string(),
        "/// # Determinism\n/// Index-ordered.\npub fn run_indexed(n: usize) -> usize { n }\n"
            .to_string(),
    );
    let bad = (
        "crates/core/src/x.rs".to_string(),
        "pub fn api(n: usize) -> usize {\n    aptq_tensor::parallel::run_indexed(n)\n}\n"
            .to_string(),
    );
    let idx = SymbolIndex::build(&[parallel.clone(), bad]);
    let f = determinism::check_index(&idx);
    assert_eq!(only_rule(&f, "D006").len(), 1, "{f:?}");
    assert_eq!(only_rule(&f, "D006")[0].path, "crates/core/src/x.rs");

    let documented = (
        "crates/core/src/x.rs".to_string(),
        "/// Runs it.\n///\n/// # Determinism\n/// Bit-identical at any thread count.\npub fn api(n: usize) -> usize {\n    aptq_tensor::parallel::run_indexed(n)\n}\n"
            .to_string(),
    );
    let idx2 = SymbolIndex::build(&[parallel, documented]);
    let g = determinism::check_index(&idx2);
    assert!(only_rule(&g, "D006").is_empty(), "{g:?}");
}

#[test]
fn json_diagnostics_match_the_pinned_schema() {
    // Golden: one synthetic D003 finding, rendered end-to-end. The
    // exact byte shape is what downstream tooling parses out of
    // `results/audit.json` — field renames or reordering are breaking
    // changes and must show up here.
    let findings = check_one(
        "crates/lm/src/x.rs",
        "fn f() {\n    let s = std::collections::HashSet::<u32>::new();\n    drop(s);\n}\n",
    );
    let d003 = only_rule(&findings, "D003");
    assert_eq!(d003.len(), 1);
    let json = render_json_report(&findings);
    let expected = "{\"findings\":[\
        {\"rule\":\"D003\",\
        \"severity\":\"error\",\
        \"path\":\"crates/lm/src/x.rs\",\
        \"line\":2,\
        \"col\":31,\
        \"message\":\"`HashSet` in result-producing library code — iteration order is randomized per process\",\
        \"help\":\"if any iteration over this collection can reach an output (serialization, reports, accumulation), two runs will differ; use `BTreeSet`, or annotate with `// audit:allow(order): <why iteration order cannot reach outputs>`\",\
        \"suggestion\":\"replace `HashSet` with `BTreeSet`\"}\
        ],\"count\":1}";
    assert_eq!(json, expected);
}

#[test]
fn text_diagnostics_carry_the_suggestion_line() {
    let findings = check_one(
        "crates/lm/src/x.rs",
        "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n",
    );
    let text = only_rule(&findings, "D003")[0].render_text();
    assert!(text.starts_with("error[D003]: "), "{text}");
    assert!(text.contains(" --> crates/lm/src/x.rs:2:"), "{text}");
    assert!(
        text.contains("= suggestion: replace `HashMap` with `BTreeMap`"),
        "{text}"
    );
}
