//! Sabotage tests for the call-graph contract rules (H001–H004) and the
//! numerical-safety rules (N001–N004).
//!
//! Each test seeds exactly one violation into a synthetic source set,
//! asserts the rule fires exactly once, then clears it with the rule's
//! documented `// audit:allow(<kind>)` escape hatch (or, for H004, by
//! writing the budget the rule demands) and asserts silence. The last
//! two tests pin the workspace-level acceptance contract: the real tree
//! has zero hot-path allocation findings, and the two canonical
//! hot-path files earn that without any allocation allowance.

use std::path::PathBuf;

use aptq_audit::index::SymbolIndex;
use aptq_audit::{audit_workspace, hotpath, numerics};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

fn index_of(path: &str, source: &str) -> SymbolIndex {
    SymbolIndex::build(&[(path.to_string(), source.to_string())])
}

fn hot_findings(path: &str, source: &str) -> Vec<String> {
    hotpath::check_index(&index_of(path, source))
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect()
}

fn num_findings(path: &str, source: &str) -> Vec<String> {
    numerics::check_index(&index_of(path, source))
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect()
}

const HOT_DOC: &str = "/// # HotPath\n/// Allocation budget: zero.\n";

#[test]
fn h001_seeded_allocation_fires_once_and_clears() {
    let bad = format!(
        "{HOT_DOC}pub fn root() {{\n    helper();\n}}\nfn helper() {{\n    let mut v: Vec<u8> = Vec::new();\n    drop(&mut v);\n}}\n"
    );
    assert_eq!(hot_findings("crates/lm/src/x.rs", &bad), vec!["H001"]);
    let fixed = bad.replace(
        "    let mut v: Vec<u8> = Vec::new();",
        "    // audit:allow(alloc): test-seeded scratch\n    let mut v: Vec<u8> = Vec::new();",
    );
    assert!(hot_findings("crates/lm/src/x.rs", &fixed).is_empty());
}

#[test]
fn h002_seeded_transitive_unwrap_fires_once_and_clears() {
    let bad = format!(
        "{HOT_DOC}pub fn root(o: Option<u8>) -> u8 {{\n    helper(o)\n}}\nfn helper(o: Option<u8>) -> u8 {{\n    o.unwrap()\n}}\n"
    );
    assert_eq!(hot_findings("crates/lm/src/x.rs", &bad), vec!["H002"]);
    let fixed = bad.replace(
        "    o.unwrap()",
        "    // audit:allow(panic): test-seeded, caller checks Some\n    o.unwrap()",
    );
    assert!(hot_findings("crates/lm/src/x.rs", &fixed).is_empty());
}

#[test]
fn h003_seeded_io_fires_once_and_clears() {
    let bad = format!(
        "{HOT_DOC}pub fn root() {{\n    helper();\n}}\nfn helper() {{\n    println!(\"x\");\n}}\n"
    );
    assert_eq!(hot_findings("crates/lm/src/x.rs", &bad), vec!["H003"]);
    let fixed = bad.replace(
        "    println!(\"x\");",
        "    // audit:allow(io): test-seeded diagnostic\n    println!(\"x\");",
    );
    assert!(hot_findings("crates/lm/src/x.rs", &fixed).is_empty());
}

#[test]
fn h004_missing_budget_fires_once_and_clears_by_documenting_it() {
    let bad = "/// # HotPath\npub fn root() {}\n";
    assert_eq!(hot_findings("crates/lm/src/x.rs", bad), vec!["H004"]);
    let fixed = "/// # HotPath\n/// Allocation budget: zero.\npub fn root() {}\n";
    assert!(hot_findings("crates/lm/src/x.rs", fixed).is_empty());
}

#[test]
fn n001_seeded_float_equality_fires_once_and_clears() {
    let bad = "pub fn f(x: f32) -> bool {\n    x == 0.5\n}\n";
    assert_eq!(num_findings("crates/core/src/x.rs", bad), vec!["N001"]);
    let fixed = "pub fn f(x: f32) -> bool {\n    // audit:allow(fpeq): test-seeded sentinel\n    x == 0.5\n}\n";
    assert!(num_findings("crates/core/src/x.rs", fixed).is_empty());
}

#[test]
fn n002_seeded_bare_reduction_fires_once_and_clears() {
    let bad = "pub fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>()\n}\n";
    assert_eq!(num_findings("crates/core/src/x.rs", bad), vec!["N002"]);
    let fixed = "pub fn f(xs: &[f64]) -> f64 {\n    // audit:allow(accum): test-seeded short sum\n    xs.iter().sum::<f64>()\n}\n";
    assert!(num_findings("crates/core/src/x.rs", fixed).is_empty());
}

#[test]
fn n003_seeded_unguarded_division_fires_once_and_clears() {
    let bad = "pub fn f(a: f32, b: f32) -> f32 {\n    a / b\n}\n";
    assert_eq!(num_findings("crates/core/src/x.rs", bad), vec!["N003"]);
    let fixed = "pub fn f(a: f32, b: f32) -> f32 {\n    // audit:allow(div): test-seeded, caller guarantees b != 0\n    a / b\n}\n";
    assert!(num_findings("crates/core/src/x.rs", fixed).is_empty());
}

#[test]
fn n004_seeded_unclamped_exp_fires_once_and_clears() {
    let bad = "pub fn f(x: f32) -> f32 {\n    x.exp()\n}\n";
    assert_eq!(num_findings("crates/core/src/x.rs", bad), vec!["N004"]);
    let fixed = "pub fn f(x: f32) -> f32 {\n    // audit:allow(range): test-seeded, x is a bounded score\n    x.exp()\n}\n";
    assert!(num_findings("crates/core/src/x.rs", fixed).is_empty());
}

#[test]
fn workspace_hot_paths_have_zero_allocation_findings() {
    let findings = audit_workspace(&workspace_root()).expect("audit walk must succeed");
    let h001: Vec<_> = findings.iter().filter(|f| f.rule == "H001").collect();
    assert!(
        h001.is_empty(),
        "hot-path closures must stay allocation-clean: {h001:?}"
    );
}

#[test]
fn canonical_hot_path_files_need_no_allocation_allowance() {
    // The steady-state token path — the packed forward and the KV-cache
    // feed — must be *verifiably* allocation-free, not annotated into
    // silence.
    for rel in ["crates/qmodel/src/qlinear.rs", "crates/lm/src/decode.rs"] {
        let text = std::fs::read_to_string(workspace_root().join(rel)).expect("file must exist");
        assert!(
            !text.contains("audit:allow(alloc)"),
            "{rel} must be allocation-free without allowances"
        );
    }
}
