//! The effect engine and its rules, exercised through the public
//! pipeline.
//!
//! Three families of pins:
//!
//! 1. **Sabotage** — each new rule (E001–E004, U001) must fire exactly
//!    once on a seeded violation and clear through its documented
//!    escape hatch. Firing zero times means the rule is dead; more than
//!    once means findings (and baseline keys) are unstable.
//! 2. **Equivalence** — D006's reachability was moved verbatim into the
//!    engine; over the *real workspace* the engine's
//!    `reaches_parallel` must equal a fresh run of the original
//!    backward fixpoint, and the ported D/H rules must report exactly
//!    what the pre-port pass reported (nothing, now the debt is burned,
//!    plus the sabotage checks above).
//! 3. **Manifest** — the committed `results/effects.json` must equal
//!    what the engine infers from the tree today, byte for byte, and
//!    re-rendering must be byte-stable.

use std::path::PathBuf;

use aptq_audit::index::SymbolIndex;
use aptq_audit::{audit_sources, audit_workspace_with_manifest, effects};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

fn audit_one(source: &str) -> Vec<aptq_audit::Finding> {
    audit_sources(&[("crates/core/src/x.rs".to_string(), source.to_string())])
}

fn count(findings: &[aptq_audit::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------- E001

#[test]
fn e001_fires_once_on_allocating_hot_root_and_clears_with_allow() {
    let src = "/// # HotPath\n/// budget: zero allocations.\npub fn forward() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n";
    let f = audit_one(src);
    assert_eq!(count(&f, "E001"), 1, "{f:?}");
    // The allocation sites themselves are H001's findings; E001 is the
    // one contract-level summary on the root.
    assert_eq!(count(&f, "H001"), 2, "{f:?}");
    let annotated = src.replace(
        "pub fn forward()",
        "// audit:allow(effect): startup-only warmup path\npub fn forward()",
    );
    let g = audit_one(&annotated);
    assert_eq!(count(&g, "E001"), 0, "{g:?}");
}

// ---------------------------------------------------------------- E002

#[test]
fn e002_fires_once_on_clock_reading_determinism_fn_and_clears_with_allow() {
    let src = "/// # Determinism\n///\n/// Bit-identical, allegedly.\npub fn seeded() -> u64 {\n    let t = std::time::Instant::now();\n    helper(t)\n}\nfn helper(_t: std::time::Instant) -> u64 {\n    0\n}\n";
    let f = audit_one(src);
    assert_eq!(count(&f, "E002"), 1, "{f:?}");
    let annotated = src.replace(
        "pub fn seeded()",
        "// audit:allow(effect): timing is logged, never branched on\npub fn seeded()",
    );
    let g = audit_one(&annotated);
    assert_eq!(count(&g, "E002"), 0, "{g:?}");
}

// ---------------------------------------------------------------- E003

#[test]
fn e003_fires_once_on_undocumented_panic_and_clears_with_panics_doc() {
    // E003 polices the panic-free crates; aptq-core is one of them.
    let src = "pub fn fetch(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let f = audit_one(src);
    assert_eq!(count(&f, "E003"), 1, "{f:?}");
    let documented = src.replace(
        "pub fn fetch",
        "/// # Panics\n///\n/// When `x` is `None`.\npub fn fetch",
    );
    let g = audit_one(&documented);
    assert_eq!(count(&g, "E003"), 0, "{g:?}");
}

// ---------------------------------------------------------------- E004

#[test]
fn e004_fires_once_per_drifted_entry() {
    let committed = "{\"version\":1,\"fns\":[\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"gone\",\"effects\":[]},\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"same\",\"effects\":[\"Alloc\"]},\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"shifted\",\"effects\":[]}\n\
        ]}\n";
    let current = "{\"version\":1,\"fns\":[\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"added\",\"effects\":[]},\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"same\",\"effects\":[\"Alloc\"]},\n\
        {\"path\":\"crates/core/src/x.rs\",\"fn\":\"shifted\",\"effects\":[\"Io\"]}\n\
        ]}\n";
    let f = effects::diff_manifests(committed, current);
    // One per drift: `gone` vanished, `added` is unrecorded, `shifted`
    // changed. `same` is silent.
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f.iter().all(|f| f.rule == "E004"), "{f:?}");
    let clean = effects::diff_manifests(current, current);
    assert!(clean.is_empty(), "{clean:?}");
}

// ---------------------------------------------------------------- U001

#[test]
fn u001_fires_once_on_stale_allow_and_clears_with_stale_allow() {
    // The allow excuses nothing: `helper` has no panic site.
    let src = "pub fn outer() -> u32 {\n    // audit:allow(panic): bounded by construction\n    helper()\n}\nfn helper() -> u32 {\n    1\n}\n";
    let f = audit_one(src);
    assert_eq!(count(&f, "U001"), 1, "{f:?}");
    let retained = src.replace(
        "    // audit:allow(panic): bounded by construction",
        "    // audit:allow(stale): kept while the fallible path is feature-gated\n    // audit:allow(panic): bounded by construction",
    );
    let g = audit_one(&retained);
    assert_eq!(count(&g, "U001"), 0, "{g:?}");
}

#[test]
fn u001_stays_silent_for_a_load_bearing_allow() {
    // The same annotation, now actually suppressing an A001 finding.
    let src = "pub fn outer(x: Option<u32>) -> u32 {\n    // audit:allow(panic): bounded by construction\n    x.unwrap()\n}\n";
    let f = audit_one(src);
    assert_eq!(count(&f, "U001"), 0, "{f:?}");
    assert_eq!(count(&f, "A001"), 0, "{f:?}");
}

// ------------------------------------------------------- equivalence

#[test]
fn engine_reachability_equals_the_original_d006_fixpoint() {
    // The engine carries D006's backward fixpoint verbatim; on the real
    // workspace the two must agree function-for-function.
    let root = workspace_root();
    let mut rs_files = Vec::new();
    collect_rs(&root, &mut rs_files);
    let mut sources: Vec<(String, String)> = rs_files
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .expect("collected under root")
                .to_string_lossy()
                .replace('\\', "/");
            (rel, std::fs::read_to_string(p).expect("readable source"))
        })
        .collect();
    sources.sort();
    let index = SymbolIndex::build(&sources);
    let analysis = effects::EffectAnalysis::compute(&index);
    assert_eq!(
        analysis.reaches_parallel,
        effects::parallel_reachability(&index)
    );
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("readable entry").path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        if path.is_dir() {
            if !matches!(
                name.as_str(),
                "target" | ".git" | "results" | "assets" | "fixtures"
            ) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------- manifest

#[test]
fn committed_manifest_matches_the_tree_and_is_byte_stable() {
    let root = workspace_root();
    let (findings, manifest) =
        audit_workspace_with_manifest(&root).expect("audit walk must succeed");
    let committed = std::fs::read_to_string(root.join(effects::MANIFEST_PATH))
        .expect("results/effects.json must be committed (regenerate with --effects-out)");
    assert_eq!(
        committed, manifest,
        "committed effects manifest is out of date; regenerate with \
         `cargo run -p aptq-audit -- --effects-out results/effects.json -q`"
    );
    // Render twice from independent walks: byte-stable or the CI diff
    // gate is flaky.
    let (_, manifest2) = audit_workspace_with_manifest(&root).expect("second walk");
    assert_eq!(manifest, manifest2);
    // And with the manifest in sync, E004 contributes nothing.
    assert!(findings.iter().all(|f| f.rule != "E004"), "{findings:?}");
}
