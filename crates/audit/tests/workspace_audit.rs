//! The audit, run against the real workspace.
//!
//! These tests are the enforcement point: the first one keeps the tree
//! clean, the rest prove the audit actually *catches* regressions by
//! re-checking real sources with violations spliced in.

use std::path::PathBuf;

use aptq_audit::{audit_workspace, baseline, rules};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_audit_clean_modulo_baseline() {
    let root = workspace_root();
    let findings = audit_workspace(&root).expect("audit walk must succeed");
    let text = std::fs::read_to_string(root.join("results/audit-baseline.json"))
        .expect("results/audit-baseline.json must exist (regenerate with --write-baseline)");
    let base = baseline::parse(&text).expect("baseline must parse");
    let diff = baseline::diff(&findings, &base);
    assert!(
        diff.new.is_empty(),
        "workspace must stay audit-clean modulo the committed baseline; run \
         `cargo run -p aptq-audit -- --ratchet results/audit-baseline.json` for details:\n{}",
        diff.new.iter().map(|f| f.render_text()).collect::<String>()
    );
    assert!(
        diff.stale.is_empty(),
        "baseline entries whose findings are fixed must be deleted (the ratchet only \
         tightens); stale:\n{:#?}",
        diff.stale
    );
}

#[test]
fn baseline_is_empty() {
    // The D006 doc burn-down the ratchet staged is complete: every
    // public function reaching `aptq_tensor::parallel` now documents
    // its `# Determinism` contract. With the debt at zero, any entry
    // reappearing in the baseline would re-legalize a hard rule — the
    // ratchet now requires the file to stay empty.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("results/audit-baseline.json"))
        .expect("baseline must exist");
    let base = baseline::parse(&text).expect("baseline must parse");
    assert!(
        base.is_empty(),
        "the audit baseline must stay empty — fix findings instead of baselining them: {base:?}"
    );
}

#[test]
fn bare_unwrap_in_hessian_is_caught() {
    let path = workspace_root().join("crates/core/src/hessian.rs");
    let source = std::fs::read_to_string(path).expect("hessian.rs must exist");
    // The real file must be clean...
    let before = rules::check_source("crates/core/src/hessian.rs", &source);
    assert!(before.is_empty(), "{before:?}");
    // ...and introducing a bare unwrap must produce an A001 finding.
    let sabotaged = format!("{source}\npub fn sneaky(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let after = rules::check_source("crates/core/src/hessian.rs", &sabotaged);
    assert!(
        after
            .iter()
            .any(|f| f.rule == "A001" && f.message.contains("unwrap")),
        "audit must flag a bare unwrap in hessian.rs: {after:?}"
    );
}

#[test]
fn bare_float_cast_in_pack_is_caught() {
    let path = workspace_root().join("crates/core/src/pack.rs");
    let source = std::fs::read_to_string(path).expect("pack.rs must exist");
    let sabotaged = format!("{source}\npub fn sneaky(n: usize) -> f32 {{ n as f32 }}\n");
    let after = rules::check_source("crates/core/src/pack.rs", &sabotaged);
    assert!(
        after.iter().any(|f| f.rule == "A002"),
        "audit must flag a bare float cast in pack.rs: {after:?}"
    );
}

#[test]
fn unsafe_block_is_caught_anywhere() {
    let sabotaged = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let after = rules::check_source("crates/eval/src/zoo.rs", sabotaged);
    assert!(after.iter().any(|f| f.rule == "A004"), "{after:?}");
}

#[test]
fn non_workspace_dependency_is_caught() {
    let manifest = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1.0\"\n";
    let after = rules::check_manifest("crates/x/Cargo.toml", manifest);
    assert!(after.iter().any(|f| f.rule == "A005"), "{after:?}");
}
