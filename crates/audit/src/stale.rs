//! U001 — stale `// audit:allow(...)` annotations.
//!
//! Allow annotations are reviewed exemptions; once the site they
//! excused is gone (code deleted, rewritten, or moved), the annotation
//! becomes a standing hole a future regression can hide in. U001 makes
//! staleness itself a finding.
//!
//! Detection runs the whole rule pipeline twice: once on the real
//! sources, once on a *shadow* copy with every `audit:allow(`
//! neutralized to the same-length `audit:al1ow(` (byte offsets — and
//! therefore finding lines/columns — are preserved). A finding that
//! appears only in the shadow run was being suppressed by an
//! annotation; the suppressor is located by the rule's allow kind (from
//! [`crate::rules::CATALOG`]) at the finding line or the comment-only
//! line above — exactly the two places
//! [`ScannedFile::allowed`](crate::scan::ScannedFile::allowed) looks.
//! Every collected annotation that suppresses nothing is flagged.
//!
//! Doc-comment text (`///` / `//!`, which merely *mentions* the syntax)
//! and `#[cfg(test)]` regions (where no rule fires, so every allow
//! would be trivially "stale") are skipped. The lint does not police
//! its own escape hatch: `audit:allow(stale)` annotations are exempt
//! from collection, and one on a stale allow's line (or above) keeps a
//! deliberately retained annotation alive.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::SymbolIndex;
use crate::{Finding, Severity};

/// Rewrites every `audit:allow(` marker to the same-length
/// `audit:al1ow(` so a shadow audit reveals what the annotations
/// suppress without moving a single byte.
pub fn neutralize(source: &str) -> String {
    source.replace("audit:allow(", "audit:al1ow(")
}

/// One collected annotation: where it sits and what kind it allows.
#[derive(Debug)]
struct Allow {
    file: usize,
    /// 0-based line of the annotation.
    line: usize,
    /// 0-based char column of the `audit:allow(` marker.
    col: usize,
    kind: String,
}

/// Diffs the normal findings against the shadow findings and flags
/// every allow annotation that suppresses nothing.
pub fn check(index: &SymbolIndex, normal: &[Finding], shadow: &[Finding]) -> Vec<Finding> {
    let allows = collect_allows(index);

    // Findings present in the shadow run but not the real one were
    // suppressed by an annotation (multiset diff: duplicate findings
    // need duplicate suppressions).
    let mut seen: BTreeMap<(&str, &str, usize, usize, &str), usize> = BTreeMap::new();
    for f in normal {
        *seen
            .entry((f.rule, &f.path, f.line, f.col, &f.message))
            .or_insert(0) += 1;
    }
    let mut kind_of_rule: BTreeMap<&str, &str> = BTreeMap::new();
    for r in crate::rules::CATALOG {
        if !r.allow.is_empty() {
            kind_of_rule.insert(r.code, r.allow);
        }
    }

    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    for f in shadow {
        let key = (f.rule, f.path.as_str(), f.line, f.col, f.message.as_str());
        if let Some(n) = seen.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                continue; // fired in both runs — no annotation involved
            }
        }
        let Some(&kind) = kind_of_rule.get(f.rule) else {
            continue;
        };
        // `allowed()` accepts the annotation on the finding line or the
        // comment-only line above; mark both candidates used.
        let line0 = f.line.saturating_sub(1);
        for a in &allows {
            if a.kind == kind
                && index.files()[a.file].rel_path == f.path
                && (a.line == line0 || a.line + 1 == line0)
            {
                used.insert((a.file, a.line));
            }
        }
    }

    let mut findings = Vec::new();
    for a in &allows {
        if used.contains(&(a.file, a.line)) {
            continue;
        }
        let file = &index.files()[a.file];
        if file.scanned.allowed(a.line, "stale") {
            continue;
        }
        findings.push(Finding {
            rule: "U001",
            severity: Severity::Error,
            path: file.rel_path.clone(),
            line: a.line + 1,
            col: a.col + 1,
            message: format!(
                "stale `audit:allow({})` annotation suppresses no finding",
                a.kind
            ),
            help: "the finding this annotation once excused is gone; a standing allow is a \
                   hole the next regression hides in — delete it, or annotate with \
                   `// audit:allow(stale): <reason>` if it must outlive its site"
                .into(),
            suggestion: format!("remove the `// audit:allow({}): ...` annotation", a.kind),
        });
    }
    findings
}

/// Collects every `audit:allow(<kind>)` annotation in non-test,
/// non-doc-comment positions. `kind == "stale"` is the lint's own
/// escape hatch and is never collected.
fn collect_allows(index: &SymbolIndex) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (fi, file) in index.files().iter().enumerate() {
        for (idx, line) in file.scanned.lines.iter().enumerate() {
            if line.in_test || line.comment.is_empty() {
                continue;
            }
            // `/// text` scans to a comment starting with '/'; `//!` to
            // '!'. Doc prose about the annotation syntax is not an
            // annotation.
            let t = line.comment.trim_start();
            if t.starts_with('/') || t.starts_with('!') {
                continue;
            }
            let marker = "audit:allow(";
            let comment_chars: Vec<char> = line.comment.chars().collect();
            let mut from = 0usize;
            while let Some(rel) = find_chars(&comment_chars, marker, from) {
                from = rel + marker.len();
                let kind: String = comment_chars[from..]
                    .iter()
                    .take_while(|&&c| c != ')')
                    .collect();
                if kind.is_empty() || kind == "stale" || kind.contains(' ') {
                    continue;
                }
                // The comment starts after the code text plus the `//`
                // marker the scanner stripped.
                let col = line.code.chars().count() + 2 + rel;
                allows.push(Allow {
                    file: fi,
                    line: idx,
                    col,
                    kind,
                });
            }
        }
    }
    allows
}

/// Char-indexed `find` so annotation columns line up with the
/// char-based columns every other rule reports.
fn find_chars(haystack: &[char], needle: &str, from: usize) -> Option<usize> {
    let pat: Vec<char> = needle.chars().collect();
    if haystack.len() < pat.len() {
        return None;
    }
    (from..=haystack.len() - pat.len()).find(|&i| haystack[i..i + pat.len()] == pat[..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutralize_preserves_length() {
        let src = "x; // audit:allow(panic): reason\n";
        assert_eq!(neutralize(src).len(), src.len());
        assert!(!neutralize(src).contains("audit:allow("));
    }

    #[test]
    fn collects_annotations_outside_docs_and_tests() {
        let idx = SymbolIndex::build(&[(
            "crates/core/src/x.rs".to_string(),
            "/// doc about audit:allow(panic): syntax\nfn f() {\n    // audit:allow(cast): bounded\n    g();\n}\n#[cfg(test)]\nmod tests {\n    // audit:allow(panic): in test\n    fn t() {}\n}\n"
                .to_string(),
        )]);
        let allows = collect_allows(&idx);
        assert_eq!(allows.len(), 1, "{allows:?}");
        assert_eq!(allows[0].kind, "cast");
        assert_eq!(allows[0].line, 2);
    }
}
