//! Lightweight workspace symbol index.
//!
//! The determinism rules (D001–D006) need more context than a single
//! line: D006 in particular must know whether a `pub fn`'s body
//! *transitively* reaches `aptq_tensor::parallel`. This module builds
//! that context with the same philosophy as [`crate::scan`] — a
//! lexer-grade pass, no external parser:
//!
//! - every `fn`/`struct`/`impl` item per file, with declaration line,
//!   visibility, `#[cfg(test)]` state, body span, and whether the doc
//!   comment above carries a `# Determinism` section;
//! - every `use` import, resolved to an alias → full-path map;
//! - every call-site occurrence inside a function body (free calls,
//!   path-qualified calls, and method calls by terminal name).
//!
//! [`SymbolIndex::build`] consumes in-memory `(path, source)` pairs so
//! tests can index synthetic workspaces without touching the
//! filesystem; [`crate::audit_workspace`] feeds it the real tree.

use std::collections::BTreeMap;

use crate::scan::{scan, word_occurrences, ScannedFile};

/// Kind of an indexed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Impl,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The path text as written (`helper`, `parallel::run_indexed`,
    /// `aptq_tensor::parallel::thread_count`, …). Method calls carry
    /// just the method name.
    pub path: String,
    /// Terminal path segment — the name the call resolves by.
    pub name: String,
    /// 0-based line of the call site.
    pub line: usize,
}

/// One indexed item (function, struct, or impl block).
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
    /// `pub` without a visibility restriction.
    pub is_pub: bool,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// For functions: 0-based inclusive body span (decl line through the
    /// closing brace). Items without a body span cover only their line.
    pub body: (usize, usize),
    /// For functions: the doc block above contains a `# Determinism`
    /// section.
    pub has_determinism_doc: bool,
    /// For functions: the doc block above contains a `# HotPath`
    /// section — the root marker for the H-rules (see
    /// [`crate::hotpath`]).
    pub has_hotpath_doc: bool,
    /// For functions with a `# HotPath` doc: the doc block also states
    /// an allocation budget (mentions "budget"/"Budget"), per H004.
    pub hotpath_budget: bool,
    /// For functions: the doc block above contains a `# Panics`
    /// section (documented preconditions exempt asserts from H002).
    pub has_panics_doc: bool,
    /// For functions: call sites inside the body.
    pub calls: Vec<Call>,
}

/// Everything indexed for one source file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Best-effort Rust module path (`aptq_core::methods`), empty when
    /// the file is not under `crates/<name>/src/`.
    pub module: String,
    /// The lexical scan the items were derived from.
    pub scanned: ScannedFile,
    pub items: Vec<Item>,
    /// `use` imports: visible alias (terminal segment or `as` name) →
    /// full imported path.
    pub imports: BTreeMap<String, String>,
}

/// The workspace-wide index.
#[derive(Debug, Clone)]
pub struct SymbolIndex {
    files: Vec<FileIndex>,
}

/// Identifies a function item inside a [`SymbolIndex`]: `(file index,
/// item index)`.
pub type FnId = (usize, usize);

impl SymbolIndex {
    /// Indexes a set of in-memory sources. `rel_path`s must use forward
    /// slashes; order is preserved.
    pub fn build(sources: &[(String, String)]) -> SymbolIndex {
        let files = sources
            .iter()
            .map(|(rel, source)| index_file(rel, source))
            .collect();
        SymbolIndex { files }
    }

    /// Indexed files, in input order.
    pub fn files(&self) -> &[FileIndex] {
        &self.files
    }

    /// All function items, as `(FnId, &Item)`.
    pub fn fns(&self) -> impl Iterator<Item = (FnId, &Item)> {
        self.files.iter().enumerate().flat_map(|(fi, file)| {
            file.items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.kind == ItemKind::Fn)
                .map(move |(ii, it)| ((fi, ii), it))
        })
    }

    /// Map from function name to every function item defining it.
    pub fn fns_by_name(&self) -> BTreeMap<&str, Vec<FnId>> {
        let mut map: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, item) in self.fns() {
            map.entry(item.name.as_str()).or_default().push(id);
        }
        map
    }

    /// The item for a [`FnId`].
    pub fn item(&self, id: FnId) -> &Item {
        &self.files[id.0].items[id.1]
    }

    /// The file containing a [`FnId`].
    pub fn file(&self, id: FnId) -> &FileIndex {
        &self.files[id.0]
    }
}

/// Visibility modifiers that may precede `fn` / `struct` on a
/// declaration line.
fn is_modifier_token(tok: &str) -> bool {
    matches!(
        tok,
        "pub" | "const" | "async" | "unsafe" | "default" | "extern"
    ) || tok.starts_with("pub(")
        || tok.starts_with('"') // the ABI string of `extern "C"`
}

fn index_file(rel_path: &str, source: &str) -> FileIndex {
    let scanned = scan(source);
    let imports = collect_imports(&scanned);
    let mut items = Vec::new();

    let n = scanned.lines.len();
    let mut idx = 0usize;
    while idx < n {
        let code = scanned.lines[idx].code.trim_start().to_string();
        if let Some(name) = decl_name(&code, "fn ") {
            let (body, calls) = fn_body(&scanned, idx, &name);
            items.push(Item {
                kind: ItemKind::Fn,
                name,
                line: idx,
                is_pub: code.starts_with("pub fn ")
                    || code.starts_with("pub const fn ")
                    || code.starts_with("pub async fn ")
                    || code.starts_with("pub unsafe fn "),
                in_test: scanned.lines[idx].in_test,
                body,
                has_determinism_doc: doc_block_contains(&scanned, idx, "# Determinism"),
                has_hotpath_doc: doc_block_contains(&scanned, idx, "# HotPath"),
                hotpath_budget: doc_block_contains(&scanned, idx, "budget")
                    || doc_block_contains(&scanned, idx, "Budget"),
                has_panics_doc: doc_block_contains(&scanned, idx, "# Panics"),
                calls,
            });
            idx = body.1.max(idx) + 1;
            continue;
        }
        if let Some(name) = decl_name(&code, "struct ") {
            items.push(Item {
                kind: ItemKind::Struct,
                name,
                line: idx,
                is_pub: code.starts_with("pub struct "),
                in_test: scanned.lines[idx].in_test,
                body: (idx, idx),
                has_determinism_doc: false,
                has_hotpath_doc: false,
                hotpath_budget: false,
                has_panics_doc: false,
                calls: Vec::new(),
            });
        } else if code.starts_with("impl ") || code.starts_with("impl<") {
            items.push(Item {
                kind: ItemKind::Impl,
                name: impl_target(&code),
                line: idx,
                is_pub: false,
                in_test: scanned.lines[idx].in_test,
                body: (idx, idx),
                has_determinism_doc: false,
                has_hotpath_doc: false,
                hotpath_budget: false,
                has_panics_doc: false,
                calls: Vec::new(),
            });
        }
        idx += 1;
    }

    FileIndex {
        rel_path: rel_path.to_string(),
        module: module_path(rel_path),
        scanned,
        items,
        imports,
    }
}

/// If `code` (already trimmed) declares an item introduced by `kw`
/// (`"fn "` / `"struct "`), returns the declared name.
fn decl_name(code: &str, kw: &str) -> Option<String> {
    let at = code.find(kw)?;
    // Everything before the keyword must be modifier tokens.
    if !code[..at].split_whitespace().all(is_modifier_token) {
        return None;
    }
    // Keyword must sit at a token boundary (`fn ` inside `safe_fn x` is
    // ruled out by the modifier check; `impl Trait for X` has no kw).
    // A raw identifier (`fn r#match`) names the same symbol as its
    // unprefixed spelling — strip the sigil so call edges resolve.
    let after = code[at + kw.len()..].trim_start();
    let after = after.strip_prefix("r#").unwrap_or(after);
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Best-effort impl target: the text after `impl`, trimmed of the
/// generics list and the opening brace.
fn impl_target(code: &str) -> String {
    let rest = code.trim_start_matches("impl").trim_start();
    let rest = rest.strip_prefix('<').map_or(rest, |r| {
        // Skip the generics list (depth-matched on <>).
        let mut depth = 1i32;
        let mut out = r;
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        out = &r[i + 1..];
                        break;
                    }
                }
                _ => {}
            }
        }
        out.trim_start()
    });
    rest.trim_end_matches('{').trim().to_string()
}

/// True if the doc-comment block immediately above `decl_line`
/// (skipping attribute lines like `#[inline]`) contains `needle`. The
/// scanner routes `/// ...` text into each line's *comment* field, so
/// that is where doc sections live.
fn doc_block_contains(f: &ScannedFile, decl_line: usize, needle: &str) -> bool {
    let mut j = decl_line;
    while j > 0 {
        j -= 1;
        let l = &f.lines[j];
        let code = l.code.trim();
        let is_comment_only = code.is_empty() && !l.comment.is_empty();
        if is_comment_only {
            if l.comment.contains(needle) {
                return true;
            }
            continue;
        }
        if code.starts_with("#[") || code.starts_with("#![") || code.is_empty() {
            continue;
        }
        break;
    }
    false
}

/// Walks a function's body from its declaration line: returns the
/// 0-based inclusive line span and the call sites found inside it.
fn fn_body(f: &ScannedFile, fn_line: usize, fn_name: &str) -> ((usize, usize), Vec<Call>) {
    let n = f.lines.len();
    let mut depth = 0i64;
    let mut body_open = false;
    let mut calls = Vec::new();
    let mut j = fn_line;
    while j < n {
        let code = &f.lines[j].code;
        // A declaration ending in ';' before any '{' has no body
        // (trait method signatures).
        if !body_open && code.contains(';') && !code.contains('{') {
            return ((fn_line, j), calls);
        }
        for call in line_calls(code, j) {
            // The declaration's own `fn name(` is not a call site.
            if j == fn_line && call.name == fn_name {
                continue;
            }
            calls.push(call);
        }
        for ch in code.chars() {
            if ch == '{' {
                depth += 1;
                body_open = true;
            } else if ch == '}' {
                depth -= 1;
                if body_open && depth == 0 {
                    return ((fn_line, j), calls);
                }
            }
        }
        j += 1;
    }
    ((fn_line, n.saturating_sub(1)), calls)
}

/// Extracts call-like occurrences from one line of code text:
/// an identifier (optionally path-qualified) immediately followed by
/// `(`. Macros (`name!(`) and declarations are excluded by the caller.
fn line_calls(code: &str, line: usize) -> Vec<Call> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '(' && i > 0 {
            let prev = chars[i - 1];
            if prev.is_alphanumeric() || prev == '_' {
                // Walk the identifier back.
                let mut start = i;
                while start > 0 {
                    let p = chars[start - 1];
                    if p.is_alphanumeric() || p == '_' {
                        start -= 1;
                    } else {
                        break;
                    }
                }
                let name: String = chars[start..i].iter().collect();
                // Extend backwards over `::`-joined path segments.
                let mut path_start = start;
                while path_start >= 2
                    && chars[path_start - 1] == ':'
                    && chars[path_start - 2] == ':'
                {
                    let mut s = path_start - 2;
                    while s > 0 {
                        let p = chars[s - 1];
                        if p.is_alphanumeric() || p == '_' {
                            s -= 1;
                        } else {
                            break;
                        }
                    }
                    if s == path_start - 2 {
                        break;
                    }
                    path_start = s;
                }
                let path: String = chars[path_start..i].iter().collect();
                // A raw identifier (`r#match(`) is a call to the
                // keyword-spelled symbol, never keyword syntax.
                let raw =
                    path_start >= 2 && chars[path_start - 1] == '#' && chars[path_start - 2] == 'r';
                let keyword = !raw
                    && matches!(
                        name.as_str(),
                        "if" | "while" | "for" | "match" | "return" | "fn" | "loop" | "in" | "as"
                    );
                let is_decl = {
                    let before: String = chars[..path_start].iter().collect();
                    before.trim_end().ends_with("fn")
                };
                if !keyword && !is_decl && !name.chars().next().is_some_and(|c| c.is_numeric()) {
                    out.push(Call { path, name, line });
                }
            }
        }
        i += 1;
    }
    out
}

/// Collects `use` imports into an alias → full-path map. Handles plain
/// paths, `as` renames, and one level of `{...}` groups — the forms this
/// workspace uses.
fn collect_imports(f: &ScannedFile) -> BTreeMap<String, String> {
    let mut imports = BTreeMap::new();
    let mut pending = String::new();
    for line in &f.lines {
        let code = line.code.trim();
        let stmt = if pending.is_empty() {
            if !(code.starts_with("use ") || code.starts_with("pub use ")) {
                continue;
            }
            code.trim_start_matches("pub ")
                .trim_start_matches("use ")
                .to_string()
        } else {
            format!("{pending} {code}")
        };
        if !stmt.contains(';') {
            // Multi-line use statement: accumulate.
            pending = stmt;
            continue;
        }
        pending = String::new();
        let stmt = stmt.trim_end_matches(';').trim();
        if let Some(open) = stmt.find('{') {
            let prefix = stmt[..open].trim_end_matches("::").trim();
            let inner = stmt[open + 1..].trim_end_matches('}');
            for entry in inner.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                record_import(&mut imports, &format!("{prefix}::{entry}"));
            }
        } else {
            record_import(&mut imports, stmt);
        }
    }
    imports
}

fn record_import(imports: &mut BTreeMap<String, String>, entry: &str) {
    let (path, alias) = match entry.split_once(" as ") {
        Some((p, a)) => (p.trim(), a.trim()),
        None => {
            let p = entry.trim();
            let last = p.rsplit("::").next().unwrap_or(p);
            (p, last)
        }
    };
    if alias == "*" || alias == "self" || alias.is_empty() {
        return;
    }
    imports.insert(alias.to_string(), path.to_string());
}

/// Best-effort module path for a workspace-relative file path:
/// `crates/core/src/methods/mod.rs` → `aptq_core::methods`.
fn module_path(rel_path: &str) -> String {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return String::new();
    };
    let Some((crate_dir, in_crate)) = rest.split_once('/') else {
        return String::new();
    };
    let Some(in_src) = in_crate.strip_prefix("src/") else {
        return String::new();
    };
    let krate = format!("aptq_{crate_dir}");
    let mut parts: Vec<&str> = in_src.trim_end_matches(".rs").split('/').collect();
    match parts.last().copied() {
        Some("mod") | Some("lib") | Some("main") => {
            parts.pop();
        }
        _ => {}
    }
    if parts.is_empty() {
        krate
    } else {
        format!("{krate}::{}", parts.join("::"))
    }
}

/// True when `needle` occurs in `code` at a word boundary — re-exported
/// convenience over [`crate::scan::word_occurrences`].
pub fn mentions(code: &str, needle: &str) -> bool {
    !word_occurrences(code, needle).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_one(rel: &str, src: &str) -> SymbolIndex {
        SymbolIndex::build(&[(rel.to_string(), src.to_string())])
    }

    #[test]
    fn indexes_fns_with_visibility_and_span() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "pub fn outer(x: u32) -> u32 {\n    helper(x)\n}\n\nfn helper(x: u32) -> u32 {\n    x + 1\n}\n",
        );
        let fns: Vec<_> = idx.fns().collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].1.name, "outer");
        assert!(fns[0].1.is_pub);
        assert_eq!(fns[0].1.body, (0, 2));
        assert_eq!(fns[0].1.calls.len(), 1);
        assert_eq!(fns[0].1.calls[0].name, "helper");
        assert!(!fns[1].1.is_pub);
    }

    #[test]
    fn decl_is_not_its_own_call_site() {
        let idx = build_one("crates/core/src/x.rs", "fn f(x: u32) -> u32 { x }\n");
        let (_, item) = idx.fns().next().expect("one fn");
        assert!(item.calls.is_empty(), "{:?}", item.calls);
    }

    #[test]
    fn qualified_calls_keep_their_path() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "fn f() {\n    aptq_tensor::parallel::thread_count();\n    parallel::run_indexed(1, 1, |i| i);\n}\n",
        );
        let (_, item) = idx.fns().next().expect("one fn");
        let paths: Vec<&str> = item.calls.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"aptq_tensor::parallel::thread_count"));
        assert!(paths.contains(&"parallel::run_indexed"));
    }

    #[test]
    fn macros_are_not_calls() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "fn f() {\n    println!(\"x\");\n    assert_eq!(1, 1);\n}\n",
        );
        let (_, item) = idx.fns().next().expect("one fn");
        assert!(item.calls.is_empty(), "{:?}", item.calls);
    }

    #[test]
    fn imports_resolve_groups_and_renames() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "use aptq_tensor::parallel::{run_indexed, thread_count as tc};\nuse std::collections::BTreeMap;\n",
        );
        let file = &idx.files()[0];
        assert_eq!(
            file.imports.get("run_indexed").map(String::as_str),
            Some("aptq_tensor::parallel::run_indexed")
        );
        assert_eq!(
            file.imports.get("tc").map(String::as_str),
            Some("aptq_tensor::parallel::thread_count")
        );
        assert_eq!(
            file.imports.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
    }

    #[test]
    fn determinism_doc_is_detected_above_attributes() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "/// Does things.\n///\n/// # Determinism\n/// Bit-identical.\n#[inline]\npub fn f() {}\n\npub fn g() {}\n",
        );
        let fns: Vec<_> = idx.fns().collect();
        assert!(fns[0].1.has_determinism_doc);
        assert!(!fns[1].1.has_determinism_doc);
    }

    #[test]
    fn structs_impls_and_module_paths_are_recorded() {
        let idx = build_one(
            "crates/core/src/methods/mod.rs",
            "pub struct Thing {\n    x: u32,\n}\n\nimpl Thing {\n    pub fn new() -> Thing {\n        Thing { x: 0 }\n    }\n}\n",
        );
        let file = &idx.files()[0];
        assert_eq!(file.module, "aptq_core::methods");
        let kinds: Vec<ItemKind> = file.items.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec![ItemKind::Struct, ItemKind::Impl, ItemKind::Fn]);
        assert_eq!(file.items[1].name, "Thing");
    }

    #[test]
    fn test_region_items_are_marked() {
        let idx = build_one(
            "crates/core/src/x.rs",
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::lib(); }\n}\n",
        );
        let fns: Vec<_> = idx.fns().collect();
        assert!(!fns[0].1.in_test);
        assert!(fns[1].1.in_test);
    }
}
