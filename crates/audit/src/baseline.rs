//! Findings ratchet: a committed baseline that may only shrink.
//!
//! Introducing new rules into an existing codebase always leaves a tail
//! of pre-existing findings that cannot all be fixed in the same
//! change. Instead of weakening the rules, the audit supports a
//! *ratchet*: known findings live in `results/audit-baseline.json`, CI
//! runs `aptq-audit --ratchet results/audit-baseline.json`, and
//!
//! - a finding **not** in the baseline fails the build (exit 1) — the
//!   debt may not grow;
//! - a baseline entry with no matching finding **also** fails the build
//!   (exit 3) — fixed debt must be removed from the baseline, so the
//!   file monotonically shrinks toward empty.
//!
//! Entries are keyed `(rule, path, message)` — deliberately *without*
//! line/column, so unrelated edits that shift a finding a few lines do
//! not churn the baseline. The key is a multiset: two identical
//! findings in one file need two baseline entries.
//!
//! `aptq-audit --write-baseline <path>` regenerates the file from the
//! current findings; the format is versioned, line-oriented JSON so
//! diffs review cleanly.

use std::collections::BTreeMap;

use crate::{json_str, Finding};

/// Format version written to / required from baseline files.
pub const BASELINE_VERSION: u32 = 1;

/// One accepted finding, identified independently of line numbers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub message: String,
}

impl BaselineEntry {
    fn of(f: &Finding) -> BaselineEntry {
        BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            message: f.message.clone(),
        }
    }
}

/// Result of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// Findings with no baseline entry — new debt, fails the build.
    pub new: Vec<Finding>,
    /// Baseline entries with no matching finding — stale, the baseline
    /// must be shrunk.
    pub stale: Vec<BaselineEntry>,
}

impl RatchetDiff {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Diffs `findings` against `baseline` as multisets keyed
/// `(rule, path, message)`.
pub fn diff(findings: &[Finding], baseline: &[BaselineEntry]) -> RatchetDiff {
    let mut budget: BTreeMap<BaselineEntry, usize> = BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut out = RatchetDiff::default();
    for f in findings {
        let key = BaselineEntry::of(f);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.new.push(f.clone()),
        }
    }
    for (key, n) in budget {
        for _ in 0..n {
            out.stale.push(key.clone());
        }
    }
    out
}

/// Shrink-only regeneration: intersects current `findings` with an
/// `existing` baseline, as multisets keyed `(rule, path, message)`.
/// Returns the surviving entries (sorted) plus the number of current
/// findings *excluded* because the existing baseline does not cover
/// them. `--write-baseline` routes through this when the target file
/// already exists, so regeneration can never grow committed debt —
/// uncovered findings must be fixed or annotated, not baselined.
pub fn shrink(findings: &[Finding], existing: &[BaselineEntry]) -> (Vec<BaselineEntry>, usize) {
    let mut budget: BTreeMap<BaselineEntry, usize> = BTreeMap::new();
    for e in existing {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut kept = Vec::new();
    let mut excluded = 0usize;
    for f in findings {
        let key = BaselineEntry::of(f);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                kept.push(key);
            }
            _ => excluded += 1,
        }
    }
    kept.sort();
    (kept, excluded)
}

/// Renders findings as a baseline document. One entry per line so the
/// file diffs and reviews like a ledger:
///
/// ```text
/// {"version":1,"entries":[
/// {"rule":"D006","path":"crates/core/src/grid.rs","message":"..."},
/// ...
/// ]}
/// ```
pub fn render(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings.iter().map(BaselineEntry::of).collect();
    entries.sort();
    render_entries(&entries)
}

/// Renders pre-built (already sorted) entries as a baseline document.
pub fn render_entries(entries: &[BaselineEntry]) -> String {
    let mut out = format!("{{\"version\":{BASELINE_VERSION},\"entries\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"message\":{}}}{}\n",
            json_str(&e.rule),
            json_str(&e.path),
            json_str(&e.message),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("]}\n");
    out
}

/// Parses a baseline document produced by [`render`]. The parser is
/// deliberately line-oriented (the audit crate is zero-dependency): one
/// entry object per line, fields extracted by key.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let head = text.lines().next().unwrap_or("");
    let version = field(head, "version").and_then(|v| v.parse::<u32>().ok());
    if version != Some(BASELINE_VERSION) {
        return Err(format!(
            "baseline version mismatch: expected {BASELINE_VERSION}, file header is `{head}` \
             (regenerate with --write-baseline)"
        ));
    }
    let mut entries = Vec::new();
    for line in text.lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "]}" {
            continue;
        }
        let entry = BaselineEntry {
            rule: string_field(line, "rule")
                .ok_or_else(|| format!("baseline entry missing `rule`: {line}"))?,
            path: string_field(line, "path")
                .ok_or_else(|| format!("baseline entry missing `path`: {line}"))?,
            message: string_field(line, "message")
                .ok_or_else(|| format!("baseline entry missing `message`: {line}"))?,
        };
        entries.push(entry);
    }
    Ok(entries)
}

/// Extracts the raw (unquoted) value following `"key":` on a line.
/// Crate-visible: the effects-manifest parser reuses it.
pub(crate) fn field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// Extracts and unescapes a JSON string value following `"key":`.
/// Crate-visible: the effects-manifest parser reuses it.
pub(crate) fn string_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, path: &str, message: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.into(),
            line: 1,
            col: 1,
            message: message.into(),
            help: String::new(),
            suggestion: String::new(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let findings = vec![
            finding("D006", "crates/core/src/a.rs", "fn `x` needs docs"),
            finding(
                "D003",
                "crates/lm/src/b.rs",
                "msg with \"quotes\" and \\slash",
            ),
        ];
        let doc = render(&findings);
        let parsed = parse(&doc).expect("roundtrip parses");
        assert_eq!(parsed.len(), 2);
        assert!(diff(&findings, &parsed).is_clean());
    }

    #[test]
    fn new_findings_are_flagged() {
        let base = parse(&render(&[finding("D001", "a.rs", "old")])).unwrap();
        let now = vec![
            finding("D001", "a.rs", "old"),
            finding("D002", "b.rs", "new"),
        ];
        let d = diff(&now, &base);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].rule, "D002");
        assert!(d.stale.is_empty());
    }

    #[test]
    fn stale_entries_are_flagged() {
        let base = parse(&render(&[
            finding("D001", "a.rs", "fixed since"),
            finding("D003", "c.rs", "still here"),
        ]))
        .unwrap();
        let now = vec![finding("D003", "c.rs", "still here")];
        let d = diff(&now, &base);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].rule, "D001");
    }

    #[test]
    fn duplicate_findings_need_duplicate_entries() {
        let two = vec![
            finding("D003", "a.rs", "same"),
            finding("D003", "a.rs", "same"),
        ];
        let base_one = parse(&render(&two[..1])).unwrap();
        let d = diff(&two, &base_one);
        assert_eq!(d.new.len(), 1, "multiset semantics: one budgeted, one new");
    }

    #[test]
    fn line_numbers_do_not_matter() {
        let mut f = finding("D004", "a.rs", "clock");
        let base = parse(&render(std::slice::from_ref(&f))).unwrap();
        f.line = 999;
        f.col = 40;
        assert!(diff(std::slice::from_ref(&f), &base).is_clean());
    }

    #[test]
    fn version_mismatch_is_an_error() {
        assert!(parse("{\"version\":99,\"entries\":[\n]}\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let doc = render(&[]);
        assert_eq!(parse(&doc).unwrap(), Vec::new());
    }

    #[test]
    fn deleted_file_entry_reports_stale() {
        // The file behind a baseline entry was deleted: no finding can
        // match it, so the ratchet must demand the entry's removal.
        let base = parse(&render(&[finding(
            "D006",
            "crates/core/src/gone.rs",
            "fn `x`",
        )]))
        .unwrap();
        let now: Vec<Finding> = Vec::new();
        let d = diff(&now, &base);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].path, "crates/core/src/gone.rs");
    }

    #[test]
    fn shrink_never_grows_an_existing_baseline() {
        let existing = parse(&render(&[
            finding("D006", "a.rs", "kept"),
            finding("D006", "b.rs", "fixed since"),
        ]))
        .unwrap();
        // Current findings: one covered, two new (one brand-new file,
        // one duplicate of a covered key beyond its budget).
        let now = vec![
            finding("D006", "a.rs", "kept"),
            finding("D006", "a.rs", "kept"),
            finding("N001", "c.rs", "new debt"),
        ];
        let (kept, excluded) = shrink(&now, &existing);
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].message, "kept");
        assert_eq!(excluded, 2, "uncovered findings are never written");
        // Shrinking against an empty baseline writes nothing.
        let (none, all_excluded) = shrink(&now, &[]);
        assert!(none.is_empty());
        assert_eq!(all_excluded, 3);
    }

    #[test]
    fn shrink_keeps_duplicate_budget_multiset() {
        let existing = parse(&render(&[
            finding("D003", "a.rs", "same"),
            finding("D003", "a.rs", "same"),
        ]))
        .unwrap();
        let now = vec![
            finding("D003", "a.rs", "same"),
            finding("D003", "a.rs", "same"),
        ];
        let (kept, excluded) = shrink(&now, &existing);
        assert_eq!(kept.len(), 2);
        assert_eq!(excluded, 0);
        assert!(diff(&now, &kept).is_clean());
    }
}
