//! Reusable reachability over the [`crate::index::SymbolIndex`] call
//! graph.
//!
//! PR 3 built a one-off fixpoint for D006 ("does this pub fn reach
//! `aptq_tensor::parallel`?"). Two directions of that computation turn
//! out to be the backbone of every call-graph contract rule:
//!
//! - [`reaches`] — *backward*: which functions transitively reach a
//!   seeded target (a module, a sink)? Seeds are per-file, and a
//!   per-call `direct` classifier catches path-qualified references
//!   that never touch an indexed definition. This is exactly D006.
//! - [`reachable_from`] — *forward*: which functions are in the
//!   transitive callee closure of a set of roots? This powers the
//!   H-rules, which walk everything a `# HotPath` function can execute
//!   and flag allocation/panic/lock sites inside the closure.
//!
//! Both directions resolve call edges by terminal name (a call to
//! `forward` links to *every* indexed `fn forward`), the same
//! over-approximation D006 shipped with: false edges are possible, but
//! a missed edge is not, and the `// audit:allow` escape hatch absorbs
//! the noise. The forward direction additionally drops calls whose
//! path qualifier names a std/core type or module (`Vec::new`,
//! `f64::from`, `std::mem::take`): those can never land on a workspace
//! definition, and resolving them by terminal name would drag every
//! workspace `fn new`/`fn from` into every hot-path closure.

use crate::index::{Call, FileIndex, FnId, SymbolIndex};

/// First path segments that always denote std/core items, never a
/// workspace definition. A call qualified by one of these is resolved
/// by the standard library, so it contributes no workspace call edge.
const STD_QUALIFIERS: &[&str] = &[
    "std", "core", "alloc", "Vec", "VecDeque", "String", "Box", "Rc", "Arc", "Cell", "RefCell",
    "Mutex", "RwLock", "Condvar", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Option", "Some",
    "None", "Result", "Ok", "Err", "Ordering", "PathBuf", "Path", "OsString", "CString",
    "Duration", "Instant", "Default", "Iterator", "bool", "char", "str", "f32", "f64", "i8", "i16",
    "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Whether a call site can resolve to a workspace definition at all.
/// Crate-visible: the effect engine builds its call edges with the same
/// filter so ported findings stay bit-identical.
pub(crate) fn may_resolve_in_workspace(call: &Call) -> bool {
    match call.path.split("::").next() {
        Some(first) if first != call.name => !STD_QUALIFIERS.contains(&first),
        _ => true,
    }
}

/// Backward fixpoint: for every item, whether its body transitively
/// reaches a seeded target.
///
/// `seed_file` marks every item of matching files as reaching (a module
/// *is* its own target); `direct` classifies a single call site as a
/// direct reference (e.g. a path-qualified call or an import-resolved
/// alias). Call edges then propagate reachability by terminal name
/// until the fixpoint.
pub fn reaches(
    index: &SymbolIndex,
    seed_file: impl Fn(&FileIndex) -> bool,
    direct: impl Fn(&FileIndex, &Call) -> bool,
) -> Vec<Vec<bool>> {
    let by_name = index.fns_by_name();
    let mut reach: Vec<Vec<bool>> = index
        .files()
        .iter()
        .map(|f| vec![seed_file(f); f.items.len()])
        .collect();

    loop {
        let mut changed = false;
        for (id, item) in index.fns() {
            if reach[id.0][id.1] {
                continue;
            }
            let file = index.file(id);
            let hit = item.calls.iter().any(|call| {
                direct(file, call)
                    || by_name
                        .get(call.name.as_str())
                        .is_some_and(|defs: &Vec<FnId>| defs.iter().any(|&(fi, ii)| reach[fi][ii]))
            });
            if hit {
                reach[id.0][id.1] = true;
                changed = true;
            }
        }
        if !changed {
            return reach;
        }
    }
}

/// Forward closure: every function reachable from `roots` over by-name
/// call edges, roots included.
///
/// Test-only definitions are never entered: a production call edge that
/// happens to share a name with a `#[cfg(test)]` helper must not drag
/// test code into a hot-path closure.
pub fn reachable_from(index: &SymbolIndex, roots: &[FnId]) -> Vec<Vec<bool>> {
    let by_name = index.fns_by_name();
    let mut marked: Vec<Vec<bool>> = index
        .files()
        .iter()
        .map(|f| vec![false; f.items.len()])
        .collect();
    let mut work: Vec<FnId> = Vec::new();
    for &id in roots {
        if !marked[id.0][id.1] {
            marked[id.0][id.1] = true;
            work.push(id);
        }
    }
    while let Some(id) = work.pop() {
        for call in &index.item(id).calls {
            if !may_resolve_in_workspace(call) {
                continue;
            }
            let Some(defs) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &(fi, ii) in defs {
                if index.files()[fi].items[ii].in_test || marked[fi][ii] {
                    continue;
                }
                marked[fi][ii] = true;
                work.push((fi, ii));
            }
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sources: &[(&str, &str)]) -> SymbolIndex {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        SymbolIndex::build(&owned)
    }

    fn fn_id(index: &SymbolIndex, name: &str) -> FnId {
        index
            .fns()
            .find(|(_, it)| it.name == name)
            .map(|(id, _)| id)
            .expect("fn present")
    }

    #[test]
    fn backward_reaches_through_helper_chain() {
        let idx = build(&[
            ("crates/tensor/src/parallel.rs", "pub fn run_indexed(n: usize) -> usize { n }\n"),
            (
                "crates/core/src/x.rs",
                "pub fn api() -> usize {\n    helper()\n}\nfn helper() -> usize {\n    aptq_tensor::parallel::run_indexed(3)\n}\nfn unrelated() -> usize { 0 }\n",
            ),
        ]);
        let r = reaches(
            &idx,
            |f| f.rel_path == "crates/tensor/src/parallel.rs",
            |_, call| call.path.contains("aptq_tensor::parallel"),
        );
        let api = fn_id(&idx, "api");
        let unrelated = fn_id(&idx, "unrelated");
        assert!(r[api.0][api.1]);
        assert!(!r[unrelated.0][unrelated.1]);
    }

    #[test]
    fn forward_closure_covers_transitive_callees_only() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn root() {\n    mid();\n}\nfn mid() {\n    leaf();\n}\nfn leaf() {}\nfn island() {}\n",
        )]);
        let r = reachable_from(&idx, &[fn_id(&idx, "root")]);
        for name in ["root", "mid", "leaf"] {
            let id = fn_id(&idx, name);
            assert!(r[id.0][id.1], "{name} should be in the closure");
        }
        let island = fn_id(&idx, "island");
        assert!(!r[island.0][island.1]);
    }

    #[test]
    fn forward_closure_skips_test_definitions() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn root() {\n    shared();\n}\nfn shared() {}\n#[cfg(test)]\nmod tests {\n    fn shared() { super::nested_test_only(); }\n    fn nested_test_only() {}\n}\n",
        )]);
        let r = reachable_from(&idx, &[fn_id(&idx, "root")]);
        let in_closure: Vec<&str> = idx
            .fns()
            .filter(|(id, _)| r[id.0][id.1])
            .map(|(_, it)| it.name.as_str())
            .collect();
        assert_eq!(in_closure, vec!["root", "shared"]);
    }

    #[test]
    fn forward_closure_ignores_std_qualified_calls() {
        // `Vec::new()` shares a terminal name with the workspace
        // `Pool::new`, but the std qualifier proves it never lands
        // there; the bare `helper()` edge still resolves.
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn root() {\n    let v: Vec<u8> = Vec::new();\n    let _ = f64::from(1u8);\n    helper();\n}\nfn helper() {}\npub struct Pool;\nimpl Pool {\n    pub fn new() -> Self { Pool }\n    pub fn from(_x: u8) -> Self { Pool }\n}\n",
        )]);
        let r = reachable_from(&idx, &[fn_id(&idx, "root")]);
        let in_closure: Vec<&str> = idx
            .fns()
            .filter(|(id, _)| r[id.0][id.1])
            .map(|(_, it)| it.name.as_str())
            .collect();
        assert_eq!(in_closure, vec!["root", "helper"]);
    }
}
