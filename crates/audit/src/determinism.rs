//! The determinism & concurrency rule set (D001–D006).
//!
//! PR 2 made quantization parallel; the reproduction's headline
//! guarantee — bit-identical Table 1/2/3 numbers at any thread count —
//! now rests on conventions. These rules enforce them:
//!
//! | Code | Scope | What it enforces |
//! |------|-------|------------------|
//! | D001 | `crates/*/src`, non-test | no `thread::spawn` / `thread::scope` / `thread::Builder` outside `aptq_tensor::parallel` — one concurrency choke point |
//! | D002 | `crates/*/src`, non-test | no `std::env::var` outside the designated config module (`crates/tensor/src/parallel.rs`) |
//! | D003 | `crates/*/src`, non-test | no `HashMap` / `HashSet` where iteration order can reach outputs — use `BTreeMap` / `BTreeSet` |
//! | D004 | library crates (`bench` and `src/bin` exempt), non-test | no `Instant::now` / `SystemTime` / entropy-seeded RNG |
//! | D005 | all of `crates/` | no `static mut`, interior-mutable `static`s, or `thread_local!` globals |
//! | D006 | `crates/*/src`, non-test | a `pub fn` whose body transitively reaches `aptq_tensor::parallel` (via the symbol index) must carry a `# Determinism` doc section |
//!
//! Escape hatches mirror A001/A002: `// audit:allow(<kind>): <reason>`
//! on the offending line or the comment-only line above, with kinds
//! `thread`, `env`, `order`, `nondet`, `global`, and — for D006 — a
//! `# Determinism` doc section on the function (that *is* the fix).
//!
//! D001–D005 are per-line rules over the lexical scan; D006 runs on the
//! [`crate::index::SymbolIndex`] call graph: name-resolved call edges
//! plus path-qualified references, propagated to a fixpoint, so a
//! helper chain `pub api → private helper → parallel::run_indexed`
//! still flags the public entry point.

use crate::index::{FileIndex, SymbolIndex};
use crate::scan::word_occurrences;
use crate::{Finding, Severity};

/// The one file allowed to spawn threads and read thread configuration
/// from the environment.
pub const PARALLEL_MODULE_FILE: &str = "crates/tensor/src/parallel.rs";

/// The module path D006 tracks reachability to.
pub const PARALLEL_MODULE_PATH: &str = "aptq_tensor::parallel";

/// Per-crate designated config modules: the only library files where
/// `std::env` reads are legal without an annotation.
pub const ENV_CONFIG_MODULES: &[&str] = &[PARALLEL_MODULE_FILE];

/// True for library source files: `crates/<name>/src/**`.
fn in_lib_src(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

/// True for files exempt from the wall-clock/entropy rule: bench
/// binaries (the whole `crates/bench` tree) and `src/bin/` entry points
/// are allowed to time and report.
pub(crate) fn clock_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/bench/") || rel_path.contains("/src/bin/")
}

/// Runs D001–D005 over one scanned file.
pub fn check_file(file: &FileIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel_path = file.rel_path.as_str();
    let f = &file.scanned;

    for (idx, line) in f.lines.iter().enumerate() {
        let code = &line.code;

        // D001 — thread spawns outside the choke point.
        if in_lib_src(rel_path) && rel_path != PARALLEL_MODULE_FILE && !line.in_test {
            for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
                for col in word_occurrences(code, pat) {
                    if !f.allowed(idx, "thread") {
                        findings.push(Finding {
                            rule: "D001",
                            severity: Severity::Error,
                            path: rel_path.to_string(),
                            line: idx + 1,
                            col: col + 1,
                            message: format!(
                                "`{pat}` outside `aptq_tensor::parallel` — the workspace's one \
                                 concurrency choke point"
                            ),
                            help: "spawning threads elsewhere lets scheduling reach results; \
                                   express the fan-out through the parallel module instead, or \
                                   annotate with `// audit:allow(thread): <reason>`"
                                .into(),
                            suggestion: "use `aptq_tensor::parallel::run_indexed` / \
                                         `run_indexed_with` (index-ordered, bit-identical at any \
                                         thread count)"
                                .into(),
                        });
                    }
                }
            }
        }

        // D002 — env reads outside the designated config module.
        if in_lib_src(rel_path) && !ENV_CONFIG_MODULES.contains(&rel_path) && !line.in_test {
            for col in word_occurrences(code, "env::var") {
                if !f.allowed(idx, "env") {
                    findings.push(Finding {
                        rule: "D002",
                        severity: Severity::Error,
                        path: rel_path.to_string(),
                        line: idx + 1,
                        col: col + 1,
                        message: "`std::env::var` outside the designated config module".into(),
                        help: "scattered environment reads make runs irreproducible from the \
                               command line alone; resolve configuration once in \
                               `aptq_tensor::parallel` (thread knobs) or annotate with \
                               `// audit:allow(env): <reason>`"
                            .into(),
                        suggestion: "take the value as a parameter, or read it via \
                                     `aptq_tensor::parallel::thread_count()`"
                            .into(),
                    });
                }
            }
        }

        // D003 — order-dependent collections in result-producing code.
        if in_lib_src(rel_path) && !line.in_test {
            for pat in ["HashMap", "HashSet"] {
                for col in word_occurrences(code, pat) {
                    if !f.allowed(idx, "order") {
                        let btree = if pat == "HashMap" {
                            "BTreeMap"
                        } else {
                            "BTreeSet"
                        };
                        findings.push(Finding {
                            rule: "D003",
                            severity: Severity::Error,
                            path: rel_path.to_string(),
                            line: idx + 1,
                            col: col + 1,
                            message: format!(
                                "`{pat}` in result-producing library code — iteration order is \
                                 randomized per process"
                            ),
                            help: format!(
                                "if any iteration over this collection can reach an output \
                                 (serialization, reports, accumulation), two runs will differ; \
                                 use `{btree}`, or annotate with `// audit:allow(order): <why \
                                 iteration order cannot reach outputs>`"
                            ),
                            suggestion: format!("replace `{pat}` with `{btree}`"),
                        });
                    }
                }
            }
        }

        // D004 — wall clock / entropy in library crates.
        if in_lib_src(rel_path) && !clock_exempt(rel_path) && !line.in_test {
            for pat in [
                "Instant::now",
                "SystemTime",
                "thread_rng",
                "from_entropy",
                "random_seed",
            ] {
                for col in word_occurrences(code, pat) {
                    if !f.allowed(idx, "nondet") {
                        findings.push(Finding {
                            rule: "D004",
                            severity: Severity::Error,
                            path: rel_path.to_string(),
                            line: idx + 1,
                            col: col + 1,
                            message: format!(
                                "`{pat}` in library code — wall clock / entropy cannot feed \
                                 reproducible results"
                            ),
                            help: "library crates must be replayable from their inputs; inject \
                                   timestamps or seeds from the caller (bench binaries under \
                                   `crates/bench` and `src/bin` are exempt), or annotate with \
                                   `// audit:allow(nondet): <reason>`"
                                .into(),
                            suggestion: "accept a seed/timestamp parameter instead".into(),
                        });
                    }
                }
            }
        }

        // D005 — mutable / interior-mutable globals, everywhere.
        if rel_path.starts_with("crates/") {
            if let Some(col) = static_global_col(code) {
                if !f.allowed(idx, "global") {
                    findings.push(Finding {
                        rule: "D005",
                        severity: Severity::Error,
                        path: rel_path.to_string(),
                        line: idx + 1,
                        col: col + 1,
                        message: "mutable or interior-mutable global state".into(),
                        help: "global state couples otherwise-independent calls and makes \
                               results depend on call ordering across threads; pass state \
                               explicitly (sessions, parameters), or annotate with \
                               `// audit:allow(global): <reason>` after review"
                            .into(),
                        suggestion: "thread the state through a struct owned by the caller \
                                     (see `QuantSession`)"
                            .into(),
                    });
                }
            }
        }
    }
    findings
}

/// Returns the column of a `static mut` / interior-mutable `static` /
/// `thread_local!` declaration on this line of code text, if any.
pub(crate) fn static_global_col(code: &str) -> Option<usize> {
    if let Some(col) = word_occurrences(code, "thread_local!").first() {
        return Some(*col);
    }
    let trimmed = code.trim_start();
    let lead = code.chars().count() - trimmed.chars().count();
    let at = trimmed.find("static ")?;
    // Must be a declaration: only modifiers before the keyword, which
    // also rules out `'static` lifetimes mid-expression.
    let prefix = &trimmed[..at];
    if !prefix
        .split_whitespace()
        .all(|t| t == "pub" || t.starts_with("pub("))
    {
        return None;
    }
    if prefix.trim_end().ends_with('\'') || prefix.contains('&') {
        return None;
    }
    let rest = &trimmed[at + "static ".len()..];
    const INTERIOR: &[&str] = &[
        "Mutex<",
        "RwLock<",
        "RefCell<",
        "Cell<",
        "UnsafeCell<",
        "OnceLock<",
        "OnceCell<",
        "LazyLock<",
        "LazyCell<",
        "AtomicBool",
        "AtomicU",
        "AtomicI",
        "AtomicPtr",
    ];
    if rest.trim_start().starts_with("mut ") || INTERIOR.iter().any(|t| rest.contains(t)) {
        Some(lead + at)
    } else {
        None
    }
}

/// Runs the full determinism rule set (D001–D006) over an index,
/// computing a private [`EffectAnalysis`](crate::effects::EffectAnalysis)
/// for D006. Production callers run the shared analysis once and use
/// [`check_with`] instead.
pub fn check_index(index: &SymbolIndex) -> Vec<Finding> {
    check_with(index, &crate::effects::EffectAnalysis::compute(index))
}

/// Runs D001–D006 with D006's reachability answered by the shared
/// effect engine ([`crate::effects`]): the engine's
/// `reaches_parallel` fixpoint *is* the pre-engine D006 computation,
/// bit-for-bit (pinned by tests).
pub fn check_with(index: &SymbolIndex, analysis: &crate::effects::EffectAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in index.files() {
        findings.extend(check_file(file));
    }
    findings.extend(rule_d006_determinism_docs(
        index,
        &analysis.reaches_parallel,
    ));
    findings
}

/// D006: every non-test `pub fn` in library code whose body transitively
/// reaches `aptq_tensor::parallel` must document its determinism
/// contract in a `# Determinism` doc section. `reaches` is the engine's
/// parallel-reachability fixpoint
/// ([`crate::effects::parallel_reachability`]).
fn rule_d006_determinism_docs(index: &SymbolIndex, reaches: &[Vec<bool>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, item) in index.fns() {
        let file = index.file(id);
        let rel_path = file.rel_path.as_str();
        if !in_lib_src(rel_path) || rel_path.contains("/src/bin/") {
            continue;
        }
        if !item.is_pub || item.in_test || item.has_determinism_doc {
            continue;
        }
        if !reaches[id.0][id.1] {
            continue;
        }
        if file.scanned.allowed(item.line, "determinism") {
            continue;
        }
        findings.push(Finding {
            rule: "D006",
            severity: Severity::Error,
            path: rel_path.to_string(),
            line: item.line + 1,
            col: 1,
            message: format!(
                "public function `{}` transitively reaches `{PARALLEL_MODULE_PATH}` but its doc \
                 comment has no `# Determinism` section",
                item.name
            ),
            help: "callers of parallel code need the thread-count contract in writing; state \
                   whether results are bit-identical across thread counts and why, or annotate \
                   with `// audit:allow(determinism): <reason>`"
                .into(),
            suggestion: "add a `/// # Determinism` doc section".into(),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(rel: &str, src: &str) -> Vec<Finding> {
        let idx = SymbolIndex::build(&[(rel.to_string(), src.to_string())]);
        check_index(&idx)
    }

    #[test]
    fn d001_fires_outside_parallel_module() {
        let f = check_one(
            "crates/core/src/x.rs",
            "fn f() {\n    std::thread::scope(|s| {});\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "D001").count(), 1);
    }

    #[test]
    fn d001_is_silent_in_parallel_module_and_tests() {
        let f = check_one(
            "crates/tensor/src/parallel.rs",
            "fn f() {\n    std::thread::scope(|s| {});\n}\n",
        );
        assert!(f.iter().all(|f| f.rule != "D001"));
        let g = check_one(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n",
        );
        assert!(g.iter().all(|f| f.rule != "D001"));
    }

    #[test]
    fn d002_fires_and_respects_config_module() {
        let f = check_one(
            "crates/eval/src/x.rs",
            "fn f() -> Option<String> {\n    std::env::var(\"X\").ok()\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "D002").count(), 1);
        let g = check_one(
            "crates/tensor/src/parallel.rs",
            "fn f() -> Option<String> {\n    std::env::var(\"X\").ok()\n}\n",
        );
        assert!(g.iter().all(|f| f.rule != "D002"));
    }

    #[test]
    fn d003_fires_on_hash_collections() {
        let f = check_one(
            "crates/textgen/src/x.rs",
            "use std::collections::HashMap;\nfn f() -> HashMap<String, u32> {\n    HashMap::new()\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "D003").count(), 3);
        assert!(f[0].suggestion.contains("BTreeMap"));
    }

    #[test]
    fn d004_fires_in_lib_but_not_bench() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let f = check_one("crates/core/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "D004").count(), 1);
        assert!(check_one("crates/bench/src/bin/table1.rs", src)
            .iter()
            .all(|f| f.rule != "D004"));
        assert!(check_one("crates/cli/src/bin/tool.rs", src)
            .iter()
            .all(|f| f.rule != "D004"));
    }

    #[test]
    fn d005_fires_on_static_mut_and_interior_mutability() {
        for src in [
            "static mut COUNTER: u32 = 0;\n",
            "pub static CACHE: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n",
            "thread_local! { static TL: RefCell<u32> = RefCell::new(0); }\n",
        ] {
            let f = check_one("crates/core/src/x.rs", src);
            assert_eq!(f.iter().filter(|f| f.rule == "D005").count(), 1, "{src}");
        }
    }

    #[test]
    fn d005_ignores_immutable_statics_and_lifetimes() {
        for src in [
            "static NAMES: &[&str] = &[\"a\"];\n",
            "pub const X: u32 = 1;\n",
            "fn f(x: &'static str) -> &'static str { x }\n",
        ] {
            let f = check_one("crates/core/src/x.rs", src);
            assert!(f.iter().all(|f| f.rule != "D005"), "{src}: {f:?}");
        }
    }

    #[test]
    fn d006_flags_transitive_pub_reach() {
        let sources = vec![
            (
                "crates/tensor/src/parallel.rs".to_string(),
                "pub fn run_indexed(n: usize) -> usize { n }\n".to_string(),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                "pub fn api() -> usize {\n    helper()\n}\n\nfn helper() -> usize {\n    aptq_tensor::parallel::run_indexed(3)\n}\n"
                    .to_string(),
            ),
        ];
        let idx = SymbolIndex::build(&sources);
        let f: Vec<Finding> = check_index(&idx)
            .into_iter()
            .filter(|f| f.rule == "D006")
            .collect();
        // `api` is flagged (pub, undocumented, transitive); `helper` is
        // private; `run_indexed` sits in the parallel module itself and
        // is flagged there too.
        assert!(
            f.iter()
                .any(|x| x.path == "crates/core/src/x.rs" && x.message.contains("`api`")),
            "{f:?}"
        );
        assert!(f.iter().all(|x| !x.message.contains("`helper`")));
    }

    #[test]
    fn d006_satisfied_by_determinism_doc() {
        let sources = vec![
            (
                "crates/tensor/src/parallel.rs".to_string(),
                "/// # Determinism\n/// Index-ordered.\npub fn run_indexed(n: usize) -> usize { n }\n"
                    .to_string(),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                "/// Quantizes.\n///\n/// # Determinism\n/// Bit-identical at any thread count.\npub fn api() -> usize {\n    aptq_tensor::parallel::run_indexed(3)\n}\n"
                    .to_string(),
            ),
        ];
        let idx = SymbolIndex::build(&sources);
        let f: Vec<Finding> = check_index(&idx)
            .into_iter()
            .filter(|f| f.rule == "D006")
            .collect();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d006_resolves_use_imports() {
        let sources = vec![
            (
                "crates/tensor/src/parallel.rs".to_string(),
                "/// # Determinism\n/// ok.\npub fn thread_count() -> usize { 1 }\n".to_string(),
            ),
            (
                "crates/lm/src/x.rs".to_string(),
                "use aptq_tensor::parallel::thread_count;\n\npub fn api() -> usize {\n    thread_count()\n}\n"
                    .to_string(),
            ),
        ];
        let idx = SymbolIndex::build(&sources);
        let f: Vec<Finding> = check_index(&idx)
            .into_iter()
            .filter(|f| f.rule == "D006")
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`api`"));
    }
}
