//! Numerical-safety rules (N001–N004).
//!
//! The quantities APTQ's mixed-precision decisions hang off — Hessian
//! traces, sensitivity scores, Eq.18 bit budgets, perplexity — are all
//! floating-point reductions and ratios. The failure modes are quiet:
//! a `== 0.0` guard that never fires because the value is `1e-17`, a
//! naive sum that loses the small terms, a division by an unguarded
//! count, an `exp` on an unbounded logit. These rules make each one a
//! lint-time finding:
//!
//! | Code | Scope | What it enforces | Escape hatch |
//! |------|-------|------------------|--------------|
//! | N001 | `crates/*/src`, non-test | no bare f32/f64 `==`/`!=` against float literals (assert lines are themselves guards and exempt) | `// audit:allow(fpeq): <reason>` |
//! | N002 | `crates/{tensor,core,eval}/src`, non-test | reductions via `.sum::<f32>()`/`.sum::<f64>()` must use `aptq_tensor::stats::kahan_sum` | `// audit:allow(accum): <reason>` |
//! | N003 | `crates/{tensor,core,eval}/src`, non-test | division by a bare identifier unguarded in the same function | `// audit:allow(div): <reason>` |
//! | N004 | `crates/{core,eval}/src`, non-test | `exp`/`ln`/`sqrt` on unclamped inputs | `// audit:allow(range): <reason>` |
//!
//! N001/N002 are per-line; N003/N004 need the function body (from the
//! symbol index) to search for guards on the operand identifier.

use crate::index::{FileIndex, SymbolIndex};
use crate::scan::word_occurrences;
use crate::{Finding, Severity};

/// Crates whose reductions and divisions feed quantization decisions.
const NUMERIC_CRATES: &[&str] = &["crates/tensor/src/", "crates/core/src/", "crates/eval/src/"];

/// Crates under the transcendental-range rule (N004).
const RANGE_CRATES: &[&str] = &["crates/core/src/", "crates/eval/src/"];

/// Tokens that make a line count as a guard for an identifier: bounds
/// checks, clamps, and branch heads. Deliberately loose — a human-shaped
/// guard anywhere in the function on the same identifier clears the
/// finding; the `allow` hatch handles the rest.
const GUARD_TOKENS: &[&str] = &[
    "assert", "max(", ".max", "min(", "clamp", "== 0", "!= 0", "> 0", ">= ", "< ", "<= ", "if ",
    "while ", "is_empty", "match ", "for ",
];

fn in_lib_src(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

fn in_numeric_crate(rel_path: &str) -> bool {
    NUMERIC_CRATES.iter().any(|p| rel_path.starts_with(p))
}

/// Runs N001–N004 over the workspace index.
pub fn check_index(index: &SymbolIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in index.files() {
        check_lines(file, &mut findings);
    }
    for (id, item) in index.fns() {
        let file = index.file(id);
        if item.in_test || !in_numeric_crate(&file.rel_path) {
            continue;
        }
        rule_n003_unguarded_division(file, item, &mut findings);
        if RANGE_CRATES.iter().any(|p| file.rel_path.starts_with(p)) {
            rule_n004_unclamped_transcendentals(file, item, &mut findings);
        }
    }
    findings
}

/// Per-line rules N001 and N002.
fn check_lines(file: &FileIndex, findings: &mut Vec<Finding>) {
    let rel_path = file.rel_path.as_str();
    let f = &file.scanned;
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;

        // N001 — bare float equality. An `assert`-family line *is* the
        // guard idiom (exact-equality regression pins), so it is exempt.
        if in_lib_src(rel_path) && !code.contains("assert") {
            for col in float_eq_cols(code) {
                if f.allowed(idx, "fpeq") {
                    continue;
                }
                findings.push(Finding {
                    rule: "N001",
                    severity: Severity::Error,
                    path: rel_path.to_string(),
                    line: idx + 1,
                    col: col + 1,
                    message: "bare float `==`/`!=` comparison — exact equality rarely survives \
                              accumulation"
                        .into(),
                    help: "values that are conceptually zero arrive as `1e-17` after rounding; \
                           compare against an epsilon scaled to the data's magnitude, or — for \
                           genuine sentinel/sparsity checks on values never produced by \
                           arithmetic — annotate with `// audit:allow(fpeq): <reason>`"
                        .into(),
                    suggestion: "use an epsilon-scaled guard (see `aptq_tensor::stats::pearson`)"
                        .into(),
                });
            }
        }

        // N002 — naive reductions in numeric crates.
        if in_numeric_crate(rel_path) {
            for pat in [".sum::<f32>()", ".sum::<f64>()"] {
                for col in word_occurrences(code, pat) {
                    if f.allowed(idx, "accum") {
                        continue;
                    }
                    findings.push(Finding {
                        rule: "N002",
                        severity: Severity::Error,
                        path: rel_path.to_string(),
                        line: idx + 1,
                        col: col + 1,
                        message: format!(
                            "naive `{pat}` reduction — error grows with input magnitude spread"
                        ),
                        help: "long reductions (Hessian rows, NLL sums, means over a layer) \
                               lose the small terms; sum through \
                               `aptq_tensor::stats::kahan_sum` / `KahanSum`, or annotate with \
                               `// audit:allow(accum): <reason>` when terms are few and bounded"
                            .into(),
                        suggestion: "replace with `aptq_tensor::stats::kahan_sum`".into(),
                    });
                }
            }
        }
    }
}

/// N003 — `a / n` or `a /= n` where `n` is a bare identifier with no
/// guard mentioning it anywhere in the same function body.
fn rule_n003_unguarded_division(
    file: &FileIndex,
    item: &crate::index::Item,
    findings: &mut Vec<Finding>,
) {
    let f = &file.scanned;
    let (lo, hi) = item.body;
    for idx in lo..=hi.min(f.lines.len().saturating_sub(1)) {
        if f.lines[idx].in_test {
            continue;
        }
        for (col, ident) in division_idents(&f.lines[idx].code) {
            if f.allowed(idx, "div") || ident_guarded(f, item.body, &ident) {
                continue;
            }
            findings.push(Finding {
                rule: "N003",
                severity: Severity::Error,
                path: file.rel_path.clone(),
                line: idx + 1,
                col: col + 1,
                message: format!(
                    "division by `{ident}` with no guard on it in `{}`",
                    item.name
                ),
                help: format!(
                    "nothing in this function bounds `{ident}` away from zero; add an \
                     assert/clamp/branch on it, or annotate with \
                     `// audit:allow(div): <why {ident} is nonzero>`"
                ),
                suggestion: format!("guard with `assert!({ident} > 0.0)` or `.max(EPS)`"),
            });
        }
    }
}

/// N004 — `.exp()` / `.ln()` / `.sqrt()` whose input is not visibly
/// clamped (same line) or guarded (same function, for ident receivers).
fn rule_n004_unclamped_transcendentals(
    file: &FileIndex,
    item: &crate::index::Item,
    findings: &mut Vec<Finding>,
) {
    const CLAMPED: &[&str] = &["clamp", ".max(", ".min(", ".abs("];
    let f = &file.scanned;
    let (lo, hi) = item.body;
    for idx in lo..=hi.min(f.lines.len().saturating_sub(1)) {
        if f.lines[idx].in_test {
            continue;
        }
        let code = &f.lines[idx].code;
        if CLAMPED.iter().any(|c| code.contains(c)) {
            continue;
        }
        for pat in [".exp()", ".ln()", ".sqrt()"] {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "range") {
                    continue;
                }
                // An identifier receiver guarded elsewhere in the fn is
                // considered range-checked.
                if let Some(recv) = ident_receiver(code, col) {
                    if ident_guarded(f, item.body, &recv) {
                        continue;
                    }
                }
                findings.push(Finding {
                    rule: "N004",
                    severity: Severity::Error,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    col: col + 1,
                    message: format!(
                        "`{}` on an unclamped input in `{}`",
                        pat.trim_start_matches('.').trim_end_matches("()"),
                        item.name
                    ),
                    help: "`exp` overflows past ~88 (f32), `ln`/`sqrt` return NaN below zero — \
                           and a NaN here silently poisons every downstream score; clamp the \
                           operand (`.max`, `.min`, `clamp`) or annotate with \
                           `// audit:allow(range): <why the input is bounded>`"
                        .into(),
                    suggestion: "clamp the operand before the call".into(),
                });
            }
        }
    }
}

/// `a / n` and `a /= n` sites whose denominator is a bare identifier:
/// returns `(column, identifier)`. Calls, paths, fields, indexing, and
/// literals are out of scope — the rule targets the shape where a plain
/// count/norm variable divides, which is where the zero-denominator
/// bugs in this workspace have lived.
fn division_idents(code: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for i in 0..chars.len() {
        if chars[i] != '/' {
            continue;
        }
        // Not a comment remnant or closing-generic artifact.
        if matches!(chars.get(i + 1), Some('/') | Some('*')) {
            continue;
        }
        if i > 0 && matches!(chars[i - 1], '/' | '*' | '<') {
            continue;
        }
        let mut j = i + 1;
        if chars.get(j) == Some(&'=') {
            j += 1;
        }
        while j < chars.len() && chars[j] == ' ' {
            j += 1;
        }
        let Some(&c0) = chars.get(j) else { continue };
        if !(c0.is_alphabetic() || c0 == '_') {
            continue;
        }
        let mut k = j;
        while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
            k += 1;
        }
        if matches!(
            chars.get(k),
            Some('(') | Some(':') | Some('.') | Some('[') | Some('!')
        ) {
            continue;
        }
        let ident: String = chars[j..k].iter().collect();
        if ident == "self" {
            continue;
        }
        out.push((i, ident));
    }
    out
}

/// True when some line of the function body mentions `ident` (word
/// boundary) on a line that also carries a guard-shaped token.
fn ident_guarded(f: &crate::scan::ScannedFile, body: (usize, usize), ident: &str) -> bool {
    let (lo, hi) = body;
    for j in lo..=hi.min(f.lines.len().saturating_sub(1)) {
        let code = &f.lines[j].code;
        if word_occurrences(code, ident).is_empty() {
            continue;
        }
        if GUARD_TOKENS.iter().any(|t| code.contains(t)) {
            return true;
        }
    }
    false
}

/// The simple identifier receiver of a method call at `col` (the column
/// of the leading `.`), if the receiver is a bare identifier.
fn ident_receiver(code: &str, col: usize) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut s = col;
    while s > 0 {
        let p = chars[s - 1];
        if p.is_alphanumeric() || p == '_' {
            s -= 1;
        } else {
            break;
        }
    }
    if s == col {
        return None;
    }
    // Reject field/path/call receivers: the char before the identifier
    // must not extend the expression.
    if s > 0 && matches!(chars[s - 1], '.' | ':' | ')' | ']') {
        return None;
    }
    let ident: String = chars[s..col].iter().collect();
    if ident
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        Some(ident)
    } else {
        None
    }
}

/// Columns of `==` / `!=` operators with a float literal on either
/// side. Composite operators (`<=`, `>=`, `===`-like) are excluded.
fn float_eq_cols(code: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let is_op = (chars[i] == '=' || chars[i] == '!') && chars[i + 1] == '=';
        let clean = is_op
            && chars.get(i + 2) != Some(&'=')
            && (i == 0
                || !matches!(
                    chars[i - 1],
                    '<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                ));
        if clean {
            let left = token_before(&chars, i);
            let right = token_after(&chars, i + 2);
            if float_literal(&left) || float_literal(&right) {
                out.push(i);
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

fn is_token_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | ':')
}

fn token_before(chars: &[char], op: usize) -> String {
    let mut e = op;
    while e > 0 && chars[e - 1] == ' ' {
        e -= 1;
    }
    let mut s = e;
    while s > 0 && is_token_char(chars[s - 1]) {
        s -= 1;
    }
    chars[s..e].iter().collect()
}

fn token_after(chars: &[char], mut s: usize) -> String {
    while s < chars.len() && chars[s] == ' ' {
        s += 1;
    }
    let mut e = s;
    if chars.get(e) == Some(&'-') {
        e += 1;
    }
    while e < chars.len() && is_token_char(chars[e]) {
        e += 1;
    }
    chars[s..e].iter().collect()
}

/// True for f32/f64 literal tokens (`0.0`, `1.5f32`, `-2.0_f64`) and
/// float-typed constants (`f32::NAN`).
fn float_literal(tok: &str) -> bool {
    let t = tok.strip_prefix('-').unwrap_or(tok);
    if t.starts_with("f32::") || t.starts_with("f64::") {
        return true;
    }
    let t = t
        .strip_suffix("_f32")
        .or_else(|| t.strip_suffix("_f64"))
        .or_else(|| t.strip_suffix("f32"))
        .or_else(|| t.strip_suffix("f64"))
        .unwrap_or(t);
    t.contains('.') && t.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Finding> {
        let idx = SymbolIndex::build(&[(rel.to_string(), src.to_string())]);
        check_index(&idx)
    }

    #[test]
    fn n001_fires_on_float_literal_equality() {
        let f = check(
            "crates/core/src/x.rs",
            "fn f(x: f32) -> bool {\n    x == 0.0\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "N001").count(), 1, "{f:?}");
        let g = check(
            "crates/core/src/x.rs",
            "fn f(x: f32) -> bool {\n    // audit:allow(fpeq): sparsity sentinel, never computed\n    x == 0.0\n}\n",
        );
        assert!(g.iter().all(|f| f.rule != "N001"), "{g:?}");
    }

    #[test]
    fn n001_ignores_int_equality_asserts_and_composites() {
        for src in [
            "fn f(x: usize) -> bool { x == 0 }\n",
            "fn f(x: f32) -> bool { x <= 0.0 }\n",
            "fn f(x: f32) -> bool { x >= 1.0 }\n",
            "fn f(x: f32) { assert_eq!(x, 0.0); }\n",
        ] {
            let f = check("crates/core/src/x.rs", src);
            assert!(f.iter().all(|f| f.rule != "N001"), "{src}: {f:?}");
        }
    }

    #[test]
    fn n001_catches_negative_and_suffixed_literals() {
        for src in [
            "fn f(x: f32) -> bool { x != -1.0 }\n",
            "fn f(x: f32) -> bool { 0.5f32 == x }\n",
            "fn f(x: f32) -> bool { x == f32::INFINITY }\n",
        ] {
            let f = check("crates/core/src/x.rs", src);
            assert_eq!(f.iter().filter(|f| f.rule == "N001").count(), 1, "{src}");
        }
    }

    #[test]
    fn n002_fires_in_numeric_crates_only() {
        let src =
            "fn f(xs: &[f32]) -> f64 {\n    xs.iter().map(|&x| f64::from(x)).sum::<f64>()\n}\n";
        let f = check("crates/core/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "N002").count(), 1, "{f:?}");
        let g = check("crates/lm/src/x.rs", src);
        assert!(g.iter().all(|f| f.rule != "N002"), "{g:?}");
        let h = check(
            "crates/core/src/x.rs",
            "fn f(xs: &[f32]) -> f64 {\n    // audit:allow(accum): at most 4 bounded terms\n    xs.iter().map(|&x| f64::from(x)).sum::<f64>()\n}\n",
        );
        assert!(h.iter().all(|f| f.rule != "N002"), "{h:?}");
    }

    #[test]
    fn n003_fires_without_guard_and_clears_with_one() {
        let f = check(
            "crates/core/src/x.rs",
            "fn f(a: f32, n: f32) -> f32 {\n    a / n\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "N003").count(), 1, "{f:?}");
        let g = check(
            "crates/core/src/x.rs",
            "fn f(a: f32, n: f32) -> f32 {\n    assert!(n > 0.0, \"n\");\n    a / n\n}\n",
        );
        assert!(g.iter().all(|f| f.rule != "N003"), "{g:?}");
        let h = check(
            "crates/core/src/x.rs",
            "fn f(a: f32, n: f32) -> f32 {\n    // audit:allow(div): n is a validated group size\n    a / n\n}\n",
        );
        assert!(h.iter().all(|f| f.rule != "N003"), "{h:?}");
    }

    #[test]
    fn n003_skips_calls_literals_and_fields() {
        for src in [
            "fn f(a: f64, n: usize) -> f64 { a / usize_f64(n) }\n",
            "fn f(a: f32) -> f32 { a / 2.0 }\n",
            "fn f(a: f32, s: S) -> f32 { a / s.count }\n",
        ] {
            let f = check("crates/core/src/x.rs", src);
            assert!(f.iter().all(|f| f.rule != "N003"), "{src}: {f:?}");
        }
    }

    #[test]
    fn n004_fires_on_bare_exp_and_clears_on_clamp() {
        let f = check(
            "crates/eval/src/x.rs",
            "fn f(x: f32) -> f32 {\n    x.exp()\n}\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "N004").count(), 1, "{f:?}");
        let g = check(
            "crates/eval/src/x.rs",
            "fn f(x: f32) -> f32 {\n    x.min(80.0).exp()\n}\n",
        );
        assert!(g.iter().all(|f| f.rule != "N004"), "{g:?}");
        let h = check(
            "crates/eval/src/x.rs",
            "fn f(x: f32) -> f32 {\n    // audit:allow(range): mean NLL of a finite corpus\n    x.exp()\n}\n",
        );
        assert!(h.iter().all(|f| f.rule != "N004"), "{h:?}");
    }

    #[test]
    fn n004_scope_is_core_and_eval() {
        let src = "fn f(x: f32) -> f32 {\n    x.sqrt()\n}\n";
        let f = check("crates/tensor/src/x.rs", src);
        assert!(f.iter().all(|f| f.rule != "N004"), "{f:?}");
    }

    #[test]
    fn n004_ident_receiver_guarded_elsewhere_is_exempt() {
        let src = "fn f(x: f32) -> f32 {\n    assert!(x >= 0.0, \"x\");\n    x.sqrt()\n}\n";
        let f = check("crates/eval/src/x.rs", src);
        assert!(f.iter().all(|f| f.rule != "N004"), "{f:?}");
    }
}
