//! Hot-path contract rules (H001–H004).
//!
//! APTQ's serving claim is that the quantized forward/decode path runs
//! "as fast as the hardware allows"; allocation, panicking, and locking
//! inside it are regressions the type system cannot see. The contract
//! is declared in prose and enforced here, on top of the shared effect
//! engine ([`crate::effects`]):
//!
//! - a function documented with a `# HotPath` doc section is a *root*
//!   ([`EffectAnalysis::hot_roots`](crate::effects::EffectAnalysis));
//! - the engine computes everything a root can transitively execute
//!   (by-name call edges, test code excluded) and scans every function
//!   body for effect sites once;
//! - every `Alloc`/`Panic`/`Io` site inside a root's closure becomes a
//!   finding, attributed to the first root in (path, line) order so
//!   messages — and therefore baseline keys — are deterministic.
//!
//! | Code | What it enforces | Escape hatch |
//! |------|------------------|--------------|
//! | H001 | no allocation sites (`Vec::new`/`with_capacity`/`push`, `vcat`, `to_vec`, `clone`, `format!`, `String` construction) | `// audit:allow(alloc): <reason>` |
//! | H002 | no panic sites (`unwrap`/message-less `expect`/`panic!`-family/`assert!`-family), *transitively* — beyond A001's per-file view | `// audit:allow(panic): <reason>` or a `# Panics` doc on the containing fn |
//! | H003 | no locks or I/O (`Mutex`/`RwLock`/`std::io`/`println!`) | `// audit:allow(io): <reason>` |
//! | H004 | every `# HotPath` root documents its allocation budget | `// audit:allow(budget): <reason>` |

use crate::effects::{Effect, EffectAnalysis};
use crate::index::SymbolIndex;
use crate::{Finding, Severity};

/// Runs H001–H004 over the workspace index, computing a private
/// [`EffectAnalysis`]. Production callers run the shared analysis once
/// and use [`check_with`] instead.
pub fn check_index(index: &SymbolIndex) -> Vec<Finding> {
    check_with(index, &EffectAnalysis::compute(index))
}

/// Runs H001–H004 against a precomputed effect analysis. Findings are
/// bit-identical to the pre-engine pass (pinned by tests): the engine
/// extracts sites with the same patterns, in the same body-scan order,
/// honoring the same `audit:allow` kinds.
pub fn check_with(index: &SymbolIndex, analysis: &EffectAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();

    // H004 — a root without a stated allocation budget.
    for &id in &analysis.hot_roots {
        let item = index.item(id);
        let file = index.file(id);
        if item.hotpath_budget || file.scanned.allowed(item.line, "budget") {
            continue;
        }
        findings.push(Finding {
            rule: "H004",
            severity: Severity::Error,
            path: file.rel_path.clone(),
            line: item.line + 1,
            col: 1,
            message: format!(
                "hot-path root `{}` has a `# HotPath` doc section but states no allocation budget",
                item.name
            ),
            help: "the `# HotPath` contract is only checkable against a stated budget; say what \
                   the function may allocate and when (e.g. \"budget: zero allocations on the \
                   steady-state token path\"), or annotate with `// audit:allow(budget): <reason>`"
                .into(),
            suggestion: "add a budget line to the `# HotPath` doc section".into(),
        });
    }

    // H001–H003 — effect sites inside owned closures. The engine only
    // extracts sites for non-test library functions, so the ownership
    // map is the sole remaining filter.
    for (&id, &root) in &analysis.hot_owner {
        let item = index.item(id);
        let file = index.file(id);
        let root_label = format!(
            "{}::{}",
            index.file(root).module.as_str(),
            index.item(root).name
        );
        for site in &analysis.sites[id.0][id.1] {
            let (rule, message, help, suggestion) = match site.effect {
                Effect::Alloc => (
                    "H001",
                    format!(
                        "allocation site `{}` in `{}`, reachable from hot path `{root_label}`",
                        site.what, item.name
                    ),
                    "hot paths must run on caller-provided or preallocated buffers; write \
                     into scratch owned by the session/struct, or annotate with \
                     `// audit:allow(alloc): <reason>` if the allocation is off the \
                     steady-state path",
                    "preallocate in the constructor and reuse the buffer",
                ),
                Effect::Panic => {
                    // A `# Panics` doc on the containing function turns
                    // the sites into documented preconditions.
                    if item.has_panics_doc {
                        continue;
                    }
                    (
                        "H002",
                        format!(
                            "panic site {} in `{}`, reachable from hot path `{root_label}`",
                            site.what, item.name
                        ),
                        "a panic mid-decode aborts the whole generation; return an error at \
                         the boundary, document the precondition in a `# Panics` section on \
                         the containing function, or annotate with \
                         `// audit:allow(panic): <reason>`",
                        "validate at the session boundary and make the hot path infallible",
                    )
                }
                Effect::Io => (
                    "H003",
                    format!(
                        "lock/I-O site `{}` in `{}`, reachable from hot path `{root_label}`",
                        site.what, item.name
                    ),
                    "blocking on a lock or file descriptor inside the token loop turns \
                     tail latency into throughput collapse; hoist the I/O to the caller \
                     or annotate with `// audit:allow(io): <reason>`",
                    "move the lock/I-O outside the `# HotPath` closure",
                ),
                _ => continue,
            };
            findings.push(Finding {
                rule,
                severity: Severity::Error,
                path: file.rel_path.clone(),
                line: site.line + 1,
                col: site.col + 1,
                message,
                help: help.into(),
                suggestion: suggestion.into(),
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let idx = SymbolIndex::build(&[("crates/core/src/x.rs".to_string(), src.to_string())]);
        check_index(&idx)
    }

    const ROOT_DOC: &str = "/// # HotPath\n/// budget: zero allocations.\n";

    #[test]
    fn h001_fires_transitively_and_clears_with_allow() {
        let src = format!(
            "{ROOT_DOC}pub fn forward() {{\n    helper();\n}}\nfn helper() {{\n    let mut v = Vec::new();\n    v.push(1);\n}}\n"
        );
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H001").count(), 2, "{f:?}");
        let annotated = src.replace(
            "    let mut v = Vec::new();",
            "    // audit:allow(alloc): test scratch\n    let mut v = Vec::new();",
        );
        let g = check(&annotated);
        assert_eq!(g.iter().filter(|f| f.rule == "H001").count(), 1, "{g:?}");
    }

    #[test]
    fn h001_silent_without_hotpath_root() {
        let f = check("pub fn forward() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n");
        assert!(f.iter().all(|f| f.rule != "H001"), "{f:?}");
    }

    #[test]
    fn h002_fires_on_transitive_unwrap_and_respects_panics_doc() {
        let src = format!(
            "{ROOT_DOC}pub fn forward() {{\n    helper();\n}}\nfn helper() {{\n    x.unwrap();\n}}\n"
        );
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H002").count(), 1, "{f:?}");
        let documented = src.replace(
            "fn helper() {",
            "/// # Panics\n/// When x is None.\nfn helper() {",
        );
        let g = check(&documented);
        assert!(g.iter().all(|f| f.rule != "H002"), "{g:?}");
    }

    #[test]
    fn h003_fires_on_println_in_closure() {
        let src = format!("{ROOT_DOC}pub fn forward() {{\n    println!(\"token\");\n}}\n");
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H003").count(), 1, "{f:?}");
    }

    #[test]
    fn h004_requires_budget_in_root_doc() {
        let f = check("/// # HotPath\npub fn forward() {}\n");
        assert_eq!(f.iter().filter(|f| f.rule == "H004").count(), 1, "{f:?}");
        let g = check("/// # HotPath\n/// budget: none on steady state.\npub fn forward() {}\n");
        assert!(g.iter().all(|f| f.rule != "H004"), "{g:?}");
    }

    #[test]
    fn ported_findings_match_per_line_ordering() {
        // One helper with an alloc, a panic, and an I/O site on
        // consecutive lines: emission must stay line-major with
        // H001 < H002 < H003 within a line, as the pre-engine pass did.
        let src = format!(
            "{ROOT_DOC}pub fn forward() {{\n    let v = Vec::new();\n    x.unwrap();\n    println!(\"t\");\n}}\n"
        );
        let rules: Vec<&str> = check(&src)
            .into_iter()
            .filter(|f| f.rule.starts_with('H'))
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec!["H001", "H002", "H003"]);
    }
}
