//! Hot-path contract rules (H001–H004).
//!
//! APTQ's serving claim is that the quantized forward/decode path runs
//! "as fast as the hardware allows"; allocation, panicking, and locking
//! inside it are regressions the type system cannot see. The contract
//! is declared in prose and enforced here:
//!
//! - a function documented with a `# HotPath` doc section is a *root*;
//! - [`crate::reach::reachable_from`] computes everything a root can
//!   transitively execute (by-name call edges, test code excluded);
//! - every function in that closure is scanned for contract-breaking
//!   sites.
//!
//! | Code | What it enforces | Escape hatch |
//! |------|------------------|--------------|
//! | H001 | no allocation sites (`Vec::new`/`with_capacity`/`push`, `vcat`, `to_vec`, `clone`, `format!`, `String` construction) | `// audit:allow(alloc): <reason>` |
//! | H002 | no panic sites (`unwrap`/message-less `expect`/`panic!`-family/`assert!`-family), *transitively* — beyond A001's per-file view | `// audit:allow(panic): <reason>` or a `# Panics` doc on the containing fn |
//! | H003 | no locks or I/O (`Mutex`/`RwLock`/`std::io`/`println!`) | `// audit:allow(io): <reason>` |
//! | H004 | every `# HotPath` root documents its allocation budget | `// audit:allow(budget): <reason>` |
//!
//! When several roots reach the same helper, the finding is attributed
//! to the first root in (path, line) order so messages — and therefore
//! baseline keys — are deterministic.

use std::collections::BTreeMap;

use crate::index::{FnId, Item, SymbolIndex};
use crate::reach::reachable_from;
use crate::scan::word_occurrences;
use crate::{Finding, Severity};

/// True for library source files: `crates/<name>/src/**`.
fn in_lib_src(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

/// Allocation-site patterns for H001. `Matrix::zeros` and `vec![...]`
/// are deliberately absent: sized one-shot scratch is the documented
/// budget mechanism, while growth and copying are not.
const ALLOC_SITES: &[&str] = &[
    "Vec::new(",
    "with_capacity(",
    ".push(",
    "vcat(",
    "to_vec(",
    ".clone()",
    "format!",
    "String::new(",
    "String::from(",
    "to_string(",
    ".to_owned(",
];

/// Lock / I/O patterns for H003.
const IO_SITES: &[&str] = &["Mutex", "RwLock", "std::io", "println!", "eprintln!"];

/// Panic macros for H002 (A001's set plus the assert family — on a hot
/// path even a *documented* assert deserves a look, hence the `# Panics`
/// exemption is per containing function, not global).
const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Runs H001–H004 over the workspace index.
pub fn check_index(index: &SymbolIndex) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Roots: `# HotPath`-documented non-test library functions, in
    // (path, line) order for deterministic attribution.
    let mut roots: Vec<FnId> = index
        .fns()
        .filter(|&(id, it)| {
            it.has_hotpath_doc && !it.in_test && in_lib_src(&index.file(id).rel_path)
        })
        .map(|(id, _)| id)
        .collect();
    roots.sort_by(|&a, &b| {
        (&index.file(a).rel_path, index.item(a).line)
            .cmp(&(&index.file(b).rel_path, index.item(b).line))
    });

    // H004 — a root without a stated allocation budget.
    for &id in &roots {
        let item = index.item(id);
        let file = index.file(id);
        if item.hotpath_budget || file.scanned.allowed(item.line, "budget") {
            continue;
        }
        findings.push(Finding {
            rule: "H004",
            severity: Severity::Error,
            path: file.rel_path.clone(),
            line: item.line + 1,
            col: 1,
            message: format!(
                "hot-path root `{}` has a `# HotPath` doc section but states no allocation budget",
                item.name
            ),
            help: "the `# HotPath` contract is only checkable against a stated budget; say what \
                   the function may allocate and when (e.g. \"budget: zero allocations on the \
                   steady-state token path\"), or annotate with `// audit:allow(budget): <reason>`"
                .into(),
            suggestion: "add a budget line to the `# HotPath` doc section".into(),
        });
    }

    // Ownership: the first root reaching a function owns its findings.
    let mut owner: BTreeMap<FnId, FnId> = BTreeMap::new();
    for &root in &roots {
        let closure = reachable_from(index, &[root]);
        for (id, _) in index.fns() {
            if closure[id.0][id.1] {
                owner.entry(id).or_insert(root);
            }
        }
    }

    for (&id, &root) in &owner {
        let item = index.item(id);
        let file = index.file(id);
        if item.in_test || !in_lib_src(&file.rel_path) {
            continue;
        }
        let root_label = format!(
            "{}::{}",
            index.file(root).module.as_str(),
            index.item(root).name
        );
        scan_fn_sites(file, item, &root_label, &mut findings);
    }

    findings
}

/// Scans one function body for H001–H003 sites.
fn scan_fn_sites(
    file: &crate::index::FileIndex,
    item: &Item,
    root_label: &str,
    findings: &mut Vec<Finding>,
) {
    let f = &file.scanned;
    let (lo, hi) = item.body;
    for idx in lo..=hi.min(f.lines.len().saturating_sub(1)) {
        let line = &f.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        // H001 — allocation sites.
        for pat in ALLOC_SITES {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "alloc") {
                    continue;
                }
                findings.push(Finding {
                    rule: "H001",
                    severity: Severity::Error,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    col: col + 1,
                    message: format!(
                        "allocation site `{}` in `{}`, reachable from hot path `{root_label}`",
                        pat.trim_end_matches('('),
                        item.name
                    ),
                    help: "hot paths must run on caller-provided or preallocated buffers; write \
                           into scratch owned by the session/struct, or annotate with \
                           `// audit:allow(alloc): <reason>` if the allocation is off the \
                           steady-state path"
                        .into(),
                    suggestion: "preallocate in the constructor and reuse the buffer".into(),
                });
            }
        }

        // H002 — panic sites, transitive. A `# Panics` doc on the
        // containing function turns the sites into documented
        // preconditions; a descriptive `.expect("...")` self-annotates
        // exactly as in A001.
        if !item.has_panics_doc {
            let mut panic_cols: Vec<(usize, String)> = Vec::new();
            for col in word_occurrences(code, ".unwrap()") {
                panic_cols.push((col, "`.unwrap()`".into()));
            }
            for col in word_occurrences(code, ".expect(") {
                let after = &code[code
                    .char_indices()
                    .nth(col + ".expect(".len())
                    .map_or(code.len(), |(b, _)| b)..];
                let trimmed = after.trim_start();
                let descriptive = trimmed.starts_with('"')
                    && trimmed[1..]
                        .chars()
                        .take_while(|&c| c != '"')
                        .any(|c| c == ' ')
                    && trimmed[1..].contains('"');
                if !descriptive {
                    panic_cols.push((col, "message-less `.expect(...)`".into()));
                }
            }
            for mac in PANIC_MACROS {
                for col in word_occurrences(code, mac) {
                    panic_cols.push((col, format!("`{mac}`")));
                }
            }
            for (col, what) in panic_cols {
                if f.allowed(idx, "panic") {
                    continue;
                }
                findings.push(Finding {
                    rule: "H002",
                    severity: Severity::Error,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    col: col + 1,
                    message: format!(
                        "panic site {what} in `{}`, reachable from hot path `{root_label}`",
                        item.name
                    ),
                    help: "a panic mid-decode aborts the whole generation; return an error at \
                           the boundary, document the precondition in a `# Panics` section on \
                           the containing function, or annotate with \
                           `// audit:allow(panic): <reason>`"
                        .into(),
                    suggestion: "validate at the session boundary and make the hot path \
                                 infallible"
                        .into(),
                });
            }
        }

        // H003 — locks and I/O.
        for pat in IO_SITES {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "io") {
                    continue;
                }
                findings.push(Finding {
                    rule: "H003",
                    severity: Severity::Error,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    col: col + 1,
                    message: format!(
                        "lock/I-O site `{pat}` in `{}`, reachable from hot path `{root_label}`",
                        item.name
                    ),
                    help: "blocking on a lock or file descriptor inside the token loop turns \
                           tail latency into throughput collapse; hoist the I/O to the caller \
                           or annotate with `// audit:allow(io): <reason>`"
                        .into(),
                    suggestion: "move the lock/I-O outside the `# HotPath` closure".into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let idx = SymbolIndex::build(&[("crates/core/src/x.rs".to_string(), src.to_string())]);
        check_index(&idx)
    }

    const ROOT_DOC: &str = "/// # HotPath\n/// budget: zero allocations.\n";

    #[test]
    fn h001_fires_transitively_and_clears_with_allow() {
        let src = format!(
            "{ROOT_DOC}pub fn forward() {{\n    helper();\n}}\nfn helper() {{\n    let mut v = Vec::new();\n    v.push(1);\n}}\n"
        );
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H001").count(), 2, "{f:?}");
        let annotated = src.replace(
            "    let mut v = Vec::new();",
            "    // audit:allow(alloc): test scratch\n    let mut v = Vec::new();",
        );
        let g = check(&annotated);
        assert_eq!(g.iter().filter(|f| f.rule == "H001").count(), 1, "{g:?}");
    }

    #[test]
    fn h001_silent_without_hotpath_root() {
        let f = check("pub fn forward() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n");
        assert!(f.iter().all(|f| f.rule != "H001"), "{f:?}");
    }

    #[test]
    fn h002_fires_on_transitive_unwrap_and_respects_panics_doc() {
        let src = format!(
            "{ROOT_DOC}pub fn forward() {{\n    helper();\n}}\nfn helper() {{\n    x.unwrap();\n}}\n"
        );
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H002").count(), 1, "{f:?}");
        let documented = src.replace(
            "fn helper() {",
            "/// # Panics\n/// When x is None.\nfn helper() {",
        );
        let g = check(&documented);
        assert!(g.iter().all(|f| f.rule != "H002"), "{g:?}");
    }

    #[test]
    fn h003_fires_on_println_in_closure() {
        let src = format!("{ROOT_DOC}pub fn forward() {{\n    println!(\"token\");\n}}\n");
        let f = check(&src);
        assert_eq!(f.iter().filter(|f| f.rule == "H003").count(), 1, "{f:?}");
    }

    #[test]
    fn h004_requires_budget_in_root_doc() {
        let f = check("/// # HotPath\npub fn forward() {}\n");
        assert_eq!(f.iter().filter(|f| f.rule == "H004").count(), 1, "{f:?}");
        let g = check("/// # HotPath\n/// budget: none on steady state.\npub fn forward() {}\n");
        assert!(g.iter().all(|f| f.rule != "H004"), "{g:?}");
    }
}
