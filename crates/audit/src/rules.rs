//! The audit rule set.
//!
//! | Code | Scope | What it enforces |
//! |------|-------|------------------|
//! | A001 | non-test lib code of `aptq-tensor`, `aptq-core`, `aptq-qmodel` | no `.unwrap()` / message-less `.expect(...)` / `panic!` without `// audit:allow(panic): <reason>` |
//! | A002 | `crates/tensor/src`, `crates/core/src/pack.rs`, `crates/core/src/grid.rs` | no bare float↔int `as` casts without `// audit:allow(cast): <reason>` |
//! | A003 | all `crates/*/src` | `pub fn` containing an unannotated `assert!`/`panic!` must document `# Panics` |
//! | A004 | whole workspace | `unsafe` forbidden outside the allowlist |
//! | A005 | every `Cargo.toml` | dependencies must resolve via `[workspace.dependencies]` |
//! | D001 | `crates/*/src`, non-test | thread spawns only inside `aptq_tensor::parallel` (`// audit:allow(thread)`) |
//! | D002 | `crates/*/src`, non-test | `std::env::var` only in the designated config module (`// audit:allow(env)`) |
//! | D003 | `crates/*/src`, non-test | no `HashMap`/`HashSet` — use `BTreeMap`/`BTreeSet` (`// audit:allow(order)`) |
//! | D004 | library crates, non-test (`bench`/`src/bin` exempt) | no wall clock / entropy (`// audit:allow(nondet)`) |
//! | D005 | all of `crates/` | no `static mut` / interior-mutable globals / `thread_local!` (`// audit:allow(global)`) |
//! | D006 | `crates/*/src`, non-test | `pub fn` transitively reaching `aptq_tensor::parallel` documents `# Determinism` |
//! | H001 | transitive closure of `# HotPath` roots | no allocation sites (`// audit:allow(alloc)`) |
//! | H002 | transitive closure of `# HotPath` roots | no panic sites — `# Panics` doc or `// audit:allow(panic)` |
//! | H003 | transitive closure of `# HotPath` roots | no locks / I-O (`// audit:allow(io)`) |
//! | H004 | `# HotPath` roots | the doc section states an allocation budget (`// audit:allow(budget)`) |
//! | N001 | `crates/*/src`, non-test | no bare float `==`/`!=` against literals (`// audit:allow(fpeq)`) |
//! | N002 | `crates/{tensor,core,eval}/src`, non-test | reductions via `aptq_tensor::stats::kahan_sum` (`// audit:allow(accum)`) |
//! | N003 | `crates/{tensor,core,eval}/src`, non-test | denominators guarded in the same function (`// audit:allow(div)`) |
//! | N004 | `crates/{core,eval}/src`, non-test | `exp`/`ln`/`sqrt` inputs clamped (`// audit:allow(range)`) |
//! | E001 | `# HotPath` roots | a `# HotPath` root must not infer effect `Alloc` (`// audit:allow(effect)`) |
//! | E002 | `# Determinism`-documented fns, non-test | a `# Determinism` fn must not infer `EnvRead`/`WallClock` (`// audit:allow(effect)`) |
//! | E003 | pub fns of `aptq-tensor`, `aptq-core`, `aptq-qmodel`, non-test | a pub fn inferring `Panic` documents `# Panics` (`// audit:allow(effect)`) |
//! | E004 | `results/effects.json` | the committed effects manifest matches the inferred one |
//! | U001 | every `audit:allow` annotation, non-test | an annotation that suppresses no finding is stale (`// audit:allow(stale)`) |
//!
//! The A-rules live in this module; the D-rules live in
//! [`crate::determinism`] because D006 needs the workspace-wide symbol
//! index ([`crate::index`]); the H-rules ([`crate::hotpath`]),
//! N-rules ([`crate::numerics`]), and contract rules E001–E004
//! ([`crate::effects`]) run on the same index via the shared effect
//! engine, and U001 ([`crate::stale`]) audits the annotations
//! themselves. [`CATALOG`] is the single source of truth the CLI's
//! `--list-rules` prints, and a test pins it against the table above.
//!
//! A `.expect("non-empty message")` is treated as self-annotating: the
//! message *is* the reason, matching the burn-down policy in ISSUE /
//! DESIGN ("convert to `Result`, descriptive `expect`, or annotated
//! allow"). Message-less or computed-argument `expect` still needs an
//! annotation.

use crate::scan::{scan, word_occurrences, ScannedFile};
use crate::{Finding, Severity};

/// One entry of the rule catalog: code, where it applies, what it
/// enforces, and the `audit:allow` kind that silences it (empty when
/// the rule has no annotation hatch).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub code: &'static str,
    pub scope: &'static str,
    pub summary: &'static str,
    /// The `// audit:allow(<kind>)` kind, or `""` when none applies.
    pub allow: &'static str,
}

/// The full rule catalog — the single source of truth behind
/// `aptq-audit --list-rules` and the module doc table above (a test
/// asserts they agree).
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        code: "A001",
        scope: "non-test lib code of aptq-tensor, aptq-core, aptq-qmodel",
        summary: "no .unwrap() / message-less .expect(...) / panic!-family macros",
        allow: "panic",
    },
    RuleInfo {
        code: "A002",
        scope: "crates/tensor/src, crates/core/src/pack.rs, crates/core/src/grid.rs",
        summary: "no bare float<->int `as` casts",
        allow: "cast",
    },
    RuleInfo {
        code: "A003",
        scope: "all crates/*/src",
        summary: "pub fn containing an unannotated assert!/panic! documents # Panics",
        allow: "panic",
    },
    RuleInfo {
        code: "A004",
        scope: "whole workspace",
        summary: "unsafe forbidden outside the allowlist",
        allow: "",
    },
    RuleInfo {
        code: "A005",
        scope: "every Cargo.toml",
        summary: "dependencies resolve via [workspace.dependencies]",
        allow: "",
    },
    RuleInfo {
        code: "D001",
        scope: "crates/*/src, non-test",
        summary: "thread spawns only inside aptq_tensor::parallel",
        allow: "thread",
    },
    RuleInfo {
        code: "D002",
        scope: "crates/*/src, non-test",
        summary: "std::env::var only in the designated config module",
        allow: "env",
    },
    RuleInfo {
        code: "D003",
        scope: "crates/*/src, non-test",
        summary: "no HashMap/HashSet — use BTreeMap/BTreeSet",
        allow: "order",
    },
    RuleInfo {
        code: "D004",
        scope: "library crates, non-test (bench/src/bin exempt)",
        summary: "no wall clock / entropy",
        allow: "nondet",
    },
    RuleInfo {
        code: "D005",
        scope: "all of crates/",
        summary: "no static mut / interior-mutable globals / thread_local!",
        allow: "global",
    },
    RuleInfo {
        code: "D006",
        scope: "crates/*/src, non-test",
        summary: "pub fn transitively reaching aptq_tensor::parallel documents # Determinism",
        allow: "determinism",
    },
    RuleInfo {
        code: "E001",
        scope: "# HotPath roots",
        summary: "a # HotPath root must not infer effect Alloc",
        allow: "effect",
    },
    RuleInfo {
        code: "E002",
        scope: "# Determinism-documented fns, non-test",
        summary: "a # Determinism fn must not infer EnvRead/WallClock",
        allow: "effect",
    },
    RuleInfo {
        code: "E003",
        scope: "pub fns of aptq-tensor, aptq-core, aptq-qmodel, non-test",
        summary: "a pub fn inferring Panic documents # Panics",
        allow: "effect",
    },
    RuleInfo {
        code: "E004",
        scope: "results/effects.json",
        summary: "the committed effects manifest matches the inferred one",
        allow: "",
    },
    RuleInfo {
        code: "H001",
        scope: "transitive closure of # HotPath roots",
        summary: "no allocation sites (Vec growth, to_vec, clone, format!, String construction)",
        allow: "alloc",
    },
    RuleInfo {
        code: "H002",
        scope: "transitive closure of # HotPath roots",
        summary:
            "no panic sites (unwrap/expect/panic!/assert!), transitively; # Panics doc exempts",
        allow: "panic",
    },
    RuleInfo {
        code: "H003",
        scope: "transitive closure of # HotPath roots",
        summary: "no locks or I/O (Mutex/RwLock/std::io/println!)",
        allow: "io",
    },
    RuleInfo {
        code: "H004",
        scope: "# HotPath roots",
        summary: "every # HotPath doc section states an allocation budget",
        allow: "budget",
    },
    RuleInfo {
        code: "N001",
        scope: "crates/*/src, non-test",
        summary: "no bare f32/f64 ==/!= against float literals (assert lines exempt)",
        allow: "fpeq",
    },
    RuleInfo {
        code: "N002",
        scope: "crates/{tensor,core,eval}/src, non-test",
        summary: "reductions use aptq_tensor::stats::kahan_sum, not naive .sum::<fNN>()",
        allow: "accum",
    },
    RuleInfo {
        code: "N003",
        scope: "crates/{tensor,core,eval}/src, non-test",
        summary: "division denominators guarded in the same function",
        allow: "div",
    },
    RuleInfo {
        code: "N004",
        scope: "crates/{core,eval}/src, non-test",
        summary: "exp/ln/sqrt inputs clamped or guarded",
        allow: "range",
    },
    RuleInfo {
        code: "U001",
        scope: "every audit:allow annotation, non-test",
        summary: "an audit:allow annotation that suppresses no finding is stale",
        allow: "stale",
    },
];

/// Files (workspace-relative, forward slashes) where `unsafe` is
/// permitted. Intentionally empty: the workspace is 100% safe Rust
/// today, and any new unsafe block must argue its way in here via
/// code review.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Crates whose non-test library code falls under the A001 panic rule
/// (and, transitively, the E003 inferred-panic rule).
pub(crate) const PANIC_FREE_CRATES: &[&str] = &[
    "crates/tensor/src/",
    "crates/core/src/",
    "crates/qmodel/src/",
];

/// Hot-path files under the A002 cast rule.
const HOT_PATHS: &[&str] = &[
    "crates/tensor/src/",
    "crates/core/src/pack.rs",
    "crates/core/src/grid.rs",
];

/// Runs every source-level rule (A001–A004) over one file.
///
/// `rel_path` must be workspace-relative with forward slashes; it
/// selects which rules apply. Exposed so tests can audit synthetic
/// sources without touching the filesystem.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scanned = scan(source);
    let mut findings = Vec::new();
    if PANIC_FREE_CRATES.iter().any(|p| rel_path.starts_with(p)) {
        rule_a001_panic_sites(rel_path, &scanned, &mut findings);
    }
    if HOT_PATHS.iter().any(|p| rel_path.starts_with(p)) {
        rule_a002_float_casts(rel_path, &scanned, &mut findings);
    }
    if rel_path.starts_with("crates/") && rel_path.contains("/src/") {
        rule_a003_panic_docs(rel_path, &scanned, &mut findings);
    }
    rule_a004_unsafe(rel_path, &scanned, &mut findings);
    findings
}

/// A001: `.unwrap()`, message-less `.expect(`, and `panic!`-family
/// macros in non-test library code need an annotation.
fn rule_a001_panic_sites(rel_path: &str, f: &ScannedFile, findings: &mut Vec<Finding>) {
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut sites: Vec<(usize, String, String, String)> = Vec::new();
        for col in word_occurrences(code, ".unwrap()") {
            sites.push((
                col,
                "`.unwrap()` in library code".into(),
                "convert to `Result`, use a descriptive `.expect(\"...\")`, or annotate \
                 with `// audit:allow(panic): <reason>`"
                    .into(),
                "replace `.unwrap()` with `.expect(\"<why this cannot fail>\")`".into(),
            ));
        }
        for col in word_occurrences(code, ".expect(") {
            // Descriptive expects are self-annotating: the scanner
            // blanked string contents to spaces, so a literal message
            // shows up as `.expect("   ")` — quotes survive, text
            // doesn't. Non-empty literal => allowed.
            let after = &code[code
                .char_indices()
                .nth(col + ".expect(".len())
                .map_or(code.len(), |(b, _)| b)..];
            let trimmed = after.trim_start();
            let descriptive = trimmed.starts_with('"')
                && trimmed[1..]
                    .chars()
                    .take_while(|&c| c != '"')
                    .any(|c| c == ' ')
                && trimmed[1..].contains('"');
            if !descriptive {
                sites.push((
                    col,
                    "`.expect(...)` without a literal message in library code".into(),
                    "give `.expect` a descriptive string literal, or annotate with \
                     `// audit:allow(panic): <reason>`"
                        .into(),
                    "write `.expect(\"<invariant that guarantees Some/Ok>\")`".into(),
                ));
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            for col in word_occurrences(code, mac) {
                sites.push((
                    col,
                    format!("`{mac}` in library code"),
                    "return an error instead, or annotate with \
                     `// audit:allow(panic): <reason>`"
                        .into(),
                    format!("replace `{mac}` with a `Result`/`Option` return"),
                ));
            }
        }
        for (col, msg, help, suggestion) in sites {
            if !f.allowed(idx, "panic") {
                findings.push(Finding {
                    rule: "A001",
                    severity: Severity::Error,
                    path: rel_path.to_string(),
                    line: idx + 1,
                    col: col + 1,
                    message: msg,
                    help,
                    suggestion,
                });
            }
        }
    }
}

/// A002: `as f32` / `as f64`, and int-target `as` casts fed by a float
/// rounding method, need an annotation in hot-path files.
///
/// A purely lexical pass has no type information, so the rule targets
/// the two syntactic shapes where float↔int conversions appear in this
/// codebase: casts *to* a float type, and casts *to* an integer type
/// whose operand visibly ends in `.round()`/`.floor()`/`.ceil()`/
/// `.trunc()`. Integer↔integer masks like `(x & 0xF) as u8` stay legal.
fn rule_a002_float_casts(rel_path: &str, f: &ScannedFile, findings: &mut Vec<Finding>) {
    const INT_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    const ROUNDERS: &[&str] = &[".round()", ".floor()", ".ceil()", ".trunc()"];
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for col in word_occurrences(code, "as ") {
            // Require the keyword position: preceded by whitespace or ')'.
            let chars: Vec<char> = code.chars().collect();
            if col > 0 {
                let p = chars[col - 1];
                if !(p.is_whitespace() || p == ')') {
                    continue;
                }
            } else {
                continue;
            }
            let rest: String = chars[col + 3..].iter().collect();
            let target: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let before: String = chars[..col].iter().collect();
            let before = before.trim_end();
            let (flagged, what) = if target == "f32" || target == "f64" {
                (true, format!("numeric `as {target}` cast in a hot path"))
            } else if INT_TYPES.contains(&target.as_str())
                && ROUNDERS.iter().any(|r| before.ends_with(r))
            {
                (
                    true,
                    format!("float-to-`{target}` truncating cast in a hot path"),
                )
            } else {
                (false, String::new())
            };
            if flagged && !f.allowed(idx, "cast") {
                findings.push(Finding {
                    rule: "A002",
                    severity: Severity::Error,
                    path: rel_path.to_string(),
                    line: idx + 1,
                    col: col + 1,
                    message: what,
                    help: "use `f64::from`/`From`/`TryFrom` where lossless, or annotate \
                           with `// audit:allow(cast): <reason>` stating the value range"
                        .into(),
                    suggestion: "annotate with `// audit:allow(cast): <value range proof>`".into(),
                });
            }
        }
    }
}

/// A003: a `pub fn` whose body contains an unannotated `assert!`,
/// `assert_eq!`, `assert_ne!`, or `panic!` must carry a `# Panics`
/// section in its doc comment.
fn rule_a003_panic_docs(rel_path: &str, f: &ScannedFile, findings: &mut Vec<Finding>) {
    const PANICKY: &[&str] = &["assert!", "assert_eq!", "assert_ne!", "panic!"];
    let n = f.lines.len();
    let mut idx = 0usize;
    while idx < n {
        let line = &f.lines[idx];
        if line.in_test {
            idx += 1;
            continue;
        }
        let code = line.code.trim_start();
        let is_pub_fn = code.starts_with("pub fn ")
            || code.starts_with("pub const fn ")
            || code.starts_with("pub(crate) fn ");
        if !is_pub_fn {
            idx += 1;
            continue;
        }
        let fn_line = idx;
        // Gather the doc comment block immediately above (skipping
        // attributes like #[inline] / #[must_use]). The scanner routes
        // `/// ...` into the line's *comment* text (leading `/` plus the
        // doc text), so that's where `# Panics` lives.
        let mut has_panics_doc = false;
        {
            let mut j = fn_line;
            while j > 0 {
                j -= 1;
                let l = &f.lines[j];
                let c = l.code.trim();
                let is_comment_only = c.is_empty() && !l.comment.is_empty();
                if is_comment_only {
                    if l.comment.contains("# Panics") {
                        has_panics_doc = true;
                    }
                    continue;
                }
                if c.starts_with("#[") || c.starts_with("#![") {
                    continue;
                }
                break;
            }
        }
        // Find the body: first '{' at or after fn_line, match braces.
        let (mut depth, mut body_open) = (0i64, false);
        let mut j = fn_line;
        let mut first_panic: Option<(usize, usize, &'static str)> = None;
        'body: while j < n {
            let lc = &f.lines[j].code;
            // A declaration ending in ';' before any '{' has no body.
            if !body_open && lc.contains(';') && !lc.contains('{') {
                break;
            }
            for ch in lc.chars() {
                if ch == '{' {
                    depth += 1;
                    body_open = true;
                } else if ch == '}' {
                    depth -= 1;
                    if body_open && depth == 0 {
                        break 'body;
                    }
                }
            }
            if body_open && j > fn_line {
                for mac in PANICKY {
                    if first_panic.is_none() {
                        if let Some(col) = word_occurrences(lc, mac).first().copied() {
                            if !f.allowed(j, "panic") {
                                first_panic = Some((j, col, mac));
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        if let Some((pl, pc, mac)) = first_panic {
            if !has_panics_doc {
                findings.push(Finding {
                    rule: "A003",
                    severity: Severity::Error,
                    path: rel_path.to_string(),
                    line: pl + 1,
                    col: pc + 1,
                    message: format!(
                        "public function contains `{mac}` but its doc comment has no `# Panics` section"
                    ),
                    help: "add a `/// # Panics` section describing the condition, or \
                           annotate the site with `// audit:allow(panic): <reason>`"
                        .into(),
                    suggestion: "add a `/// # Panics` doc section".into(),
                });
            }
        }
        idx = j.max(fn_line) + 1;
    }
}

/// A004: `unsafe` is forbidden outside [`UNSAFE_ALLOWLIST`].
fn rule_a004_unsafe(rel_path: &str, f: &ScannedFile, findings: &mut Vec<Finding>) {
    if UNSAFE_ALLOWLIST.contains(&rel_path) {
        return;
    }
    for (idx, line) in f.lines.iter().enumerate() {
        for col in word_occurrences(&line.code, "unsafe") {
            // Word boundary on the right too: `unsafe_code` (the lint
            // name in attributes) is not the keyword.
            let after = line.code.chars().nth(col + "unsafe".len());
            if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            findings.push(Finding {
                rule: "A004",
                severity: Severity::Error,
                path: rel_path.to_string(),
                line: idx + 1,
                col: col + 1,
                message: "`unsafe` is forbidden in this workspace".into(),
                help: "rewrite in safe Rust, or add the file to `UNSAFE_ALLOWLIST` in \
                       crates/audit/src/rules.rs with a review note"
                    .into(),
                suggestion: String::new(),
            });
        }
    }
}

/// A005: every dependency in every manifest must be inherited from
/// `[workspace.dependencies]` (i.e. use the `workspace = true` form).
///
/// `workspace_manifest` controls whether `[workspace.dependencies]`
/// itself is being declared (allowed, root only).
pub fn check_manifest(rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || (section.starts_with("target.") && section.ends_with("dependencies"));
        if !dep_section {
            continue;
        }
        // `name = { ... }`, `name = "1.0"`, or `name.workspace = true`.
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        let inherited = key.ends_with(".workspace")
            || (val.starts_with('{') && val.contains("workspace") && val.contains("true"));
        if !inherited {
            let name = key.split('.').next().unwrap_or(key);
            findings.push(Finding {
                rule: "A005",
                severity: Severity::Error,
                path: rel_path.to_string(),
                line: idx + 1,
                col: 1,
                message: format!(
                    "dependency `{name}` does not resolve through [workspace.dependencies]"
                ),
                help: format!(
                    "declare `{name}` once in the root [workspace.dependencies] table and \
                     use `{name}.workspace = true` here"
                ),
                suggestion: format!("write `{name}.workspace = true`"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a001(src: &str) -> Vec<Finding> {
        check_source("crates/core/src/demo.rs", src)
            .into_iter()
            .filter(|f| f.rule == "A001")
            .collect()
    }

    #[test]
    fn unwrap_in_scoped_crate_is_flagged() {
        let f = a001("fn f() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn annotated_unwrap_is_allowed() {
        let f = a001("fn f() {\n    // audit:allow(panic): index bounded by loop above\n    x.unwrap();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_in_test_mod_is_ignored() {
        let f = a001("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_outside_scoped_crates_is_ignored() {
        let f = check_source("crates/lm/src/demo.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.iter().all(|f| f.rule != "A001"));
    }

    #[test]
    fn descriptive_expect_is_self_annotating() {
        let f = a001("fn f() { x.expect(\"grid is non-empty by construction\"); }\n");
        assert!(f.is_empty(), "{f:?}");
        let g = a001("fn f() { x.expect(msg); }\n");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn unwrap_in_string_literal_is_ignored() {
        let f = a001("fn f() { let s = \".unwrap()\"; }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    fn a002(src: &str) -> Vec<Finding> {
        check_source("crates/core/src/pack.rs", src)
            .into_iter()
            .filter(|f| f.rule == "A002")
            .collect()
    }

    #[test]
    fn float_cast_is_flagged() {
        assert_eq!(a002("fn f(x: usize) -> f32 { x as f32 }\n").len(), 1);
        assert_eq!(a002("fn f(x: u8) -> f64 { x as f64 }\n").len(), 1);
    }

    #[test]
    fn rounded_int_cast_is_flagged() {
        assert_eq!(a002("fn f(x: f32) -> u8 { x.round() as u8 }\n").len(), 1);
    }

    #[test]
    fn int_mask_cast_is_legal() {
        assert!(a002("fn f(x: u32) -> u8 { (x & 0xFF) as u8 }\n").is_empty());
    }

    #[test]
    fn annotated_cast_is_allowed() {
        let f = a002("fn f(x: usize) -> f32 {\n    // audit:allow(cast): dims < 2^24, exact in f32\n    x as f32\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cast_outside_hot_paths_is_ignored() {
        let f = check_source(
            "crates/core/src/mixed.rs",
            "fn f(x: usize) -> f32 { x as f32 }\n",
        );
        assert!(f.iter().all(|f| f.rule != "A002"));
    }

    fn a003(src: &str) -> Vec<Finding> {
        check_source("crates/lm/src/demo.rs", src)
            .into_iter()
            .filter(|f| f.rule == "A003")
            .collect()
    }

    #[test]
    fn pub_fn_with_assert_needs_panics_doc() {
        let f = a003("pub fn f(x: usize) {\n    assert!(x > 0, \"x\");\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("# Panics"));
    }

    #[test]
    fn panics_doc_satisfies_a003() {
        let f = a003("/// Does things.\n///\n/// # Panics\n/// If x is zero.\npub fn f(x: usize) {\n    assert!(x > 0);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn debug_assert_does_not_trigger_a003() {
        let f = a003("pub fn f(x: usize) {\n    debug_assert!(x > 0);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn private_fn_with_assert_is_fine() {
        let f = a003("fn f(x: usize) {\n    assert!(x > 0);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotated_assert_satisfies_a003() {
        let f = a003("pub fn f(x: usize) {\n    // audit:allow(panic): validated at CLI boundary\n    assert!(x > 0);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_is_flagged_everywhere() {
        let f = check_source("crates/bench/benches/b.rs", "unsafe fn f() {}\n");
        assert_eq!(f.iter().filter(|f| f.rule == "A004").count(), 1);
    }

    #[test]
    fn unsafe_code_lint_name_is_not_the_keyword() {
        let f = check_source("crates/lm/src/lib.rs", "#![deny(unsafe_code)]\n");
        assert!(f.iter().all(|f| f.rule != "A004"));
    }

    #[test]
    fn manifest_version_dep_is_flagged() {
        let f = check_manifest("crates/lm/Cargo.toml", "[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn manifest_workspace_forms_pass() {
        let src = "[dependencies]\nserde.workspace = true\nrand = { workspace = true }\n\n[dev-dependencies]\nproptest = { workspace = true, features = [\"x\"] }\n";
        assert!(check_manifest("crates/lm/Cargo.toml", src).is_empty());
    }

    #[test]
    fn manifest_path_dep_is_flagged() {
        let f = check_manifest(
            "crates/lm/Cargo.toml",
            "[dev-dependencies]\nfoo = { path = \"../foo\" }\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"1.0\"\n\n[features]\ndefault = []\n";
        assert!(check_manifest("crates/lm/Cargo.toml", src).is_empty());
    }

    #[test]
    fn catalog_codes_are_unique_and_sorted() {
        let codes: Vec<&str> = CATALOG.iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "CATALOG must be sorted by code, no dupes");
        assert_eq!(codes.len(), 24);
    }

    #[test]
    fn catalog_matches_module_doc_table() {
        // The module doc table rows look like `//! | A001 | scope | … |`;
        // every documented code must be in CATALOG and vice versa.
        let src = include_str!("rules.rs");
        let mut documented: Vec<&str> = src
            .lines()
            .filter_map(|l| {
                let row = l.trim().strip_prefix("//! |")?;
                let code = row.split('|').next()?.trim();
                let looks_like_code = code.len() == 4
                    && code.starts_with(|c: char| c.is_ascii_uppercase())
                    && code[1..].chars().all(|c| c.is_ascii_digit());
                looks_like_code.then_some(code)
            })
            .collect();
        documented.sort_unstable();
        documented.dedup();
        let catalog: Vec<&str> = CATALOG.iter().map(|r| r.code).collect();
        assert_eq!(
            documented, catalog,
            "rules.rs doc table and CATALOG disagree"
        );
    }
}
