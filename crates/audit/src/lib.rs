//! aptq-audit: the workspace static-analysis pass.
//!
//! A zero-dependency lint layer that walks every `.rs` file and every
//! `Cargo.toml` in the workspace and enforces the project's numerical
//! and hygiene invariants *before* the compiler gets a say:
//!
//! - **A001** — no `.unwrap()` / message-less `.expect(...)` /
//!   `panic!`-family macros in non-test library code of `aptq-tensor`,
//!   `aptq-core`, `aptq-qmodel`, unless the line carries
//!   `// audit:allow(panic): <reason>`.
//! - **A002** — no bare float↔int `as` casts in hot paths
//!   (`crates/tensor/src`, `crates/core/src/pack.rs`,
//!   `crates/core/src/grid.rs`) without `// audit:allow(cast): <reason>`.
//! - **A003** — every `pub fn` containing an unannotated `assert!` /
//!   `panic!` must have a `# Panics` doc section.
//! - **A004** — `unsafe` is forbidden outside an explicit allowlist
//!   (currently empty).
//! - **A005** — every crate dependency must resolve through
//!   `[workspace.dependencies]`.
//!
//! plus the determinism & concurrency rule set **D001–D006** (see
//! [`determinism`]): thread-spawn containment, env-read containment,
//! ordered collections, wall-clock/entropy bans, global-state bans, and
//! `# Determinism` doc coverage for public functions that transitively
//! reach `aptq_tensor::parallel` — resolved over a workspace-wide
//! symbol index ([`index`]) rather than per-file text.
//!
//! Two further families run on the reusable reachability engine
//! ([`reach`]): the hot-path contracts **H001–H004** ([`hotpath`]) —
//! the transitive callee closure of every `# HotPath`-documented
//! function must be free of allocation, panic, and lock/I-O sites, and
//! each root must state its allocation budget — and the
//! numerical-safety rules **N001–N004** ([`numerics`]) — no bare float
//! equality, reductions through `aptq_tensor::stats::kahan_sum`,
//! guarded denominators, clamped `exp`/`ln`/`sqrt`. The full catalog
//! lives in [`rules::CATALOG`] (`aptq-audit --list-rules`).
//!
//! Run it as `cargo run -p aptq-audit` (text diagnostics, rustc style)
//! or `cargo run -p aptq-audit -- --json` (machine-readable). CI runs
//! `--ratchet results/audit-baseline.json`, which fails on findings
//! *not* in the committed baseline and on stale baseline entries — debt
//! may only shrink (see [`baseline`]). Library consumers call
//! [`audit_workspace`], or [`rules::check_source`] /
//! [`rules::check_manifest`] on in-memory sources.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod determinism;
pub mod effects;
pub mod hotpath;
pub mod index;
pub mod numerics;
pub mod reach;
pub mod rules;
pub mod scan;
pub mod stale;

/// Finding severity. Everything the current rule set emits is an
/// [`Severity::Error`]; the distinction exists so future advisory rules
/// don't need an output-format change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code, e.g. `"A001"`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    pub message: String,
    pub help: String,
    /// A concrete, mechanical fix (may be empty when none applies).
    pub suggestion: String,
}

impl Finding {
    /// Renders the finding in rustc style:
    ///
    /// ```text
    /// error[A001]: `.unwrap()` in library code
    ///  --> crates/core/src/hessian.rs:42:13
    ///   = help: convert to `Result`, ...
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n --> {}:{}:{}\n  = help: {}\n",
            self.severity, self.rule, self.message, self.path, self.line, self.col, self.help
        );
        if !self.suggestion.is_empty() {
            out.push_str(&format!("  = suggestion: {}\n", self.suggestion));
        }
        out
    }

    /// Renders the finding as a JSON object (single line).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{},\"suggestion\":{}}}",
            json_str(self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.path),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.help),
            json_str(&self.suggestion)
        )
    }
}

/// Errors from the filesystem walk (not rule findings).
#[derive(Debug)]
pub struct AuditError {
    pub path: PathBuf,
    pub message: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit: {}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for AuditError {}

/// Runs every in-memory rule family over a set of sources: the A-rule
/// lexical pass per file, then — over one shared
/// [`effects::EffectAnalysis`] — the D-rules, H-rules, N-rules, and
/// contract rules E001–E003. Returns the findings unsorted, plus the
/// index and analysis for manifest rendering and U001.
fn source_rule_findings(
    sources: &[(String, String)],
) -> (Vec<Finding>, index::SymbolIndex, effects::EffectAnalysis) {
    let mut findings = Vec::new();
    for (rel_path, source) in sources {
        findings.extend(rules::check_source(rel_path, source));
    }
    let index = index::SymbolIndex::build(sources);
    let analysis = effects::EffectAnalysis::compute(&index);
    findings.extend(determinism::check_with(&index, &analysis));
    findings.extend(hotpath::check_with(&index, &analysis));
    findings.extend(numerics::check_index(&index));
    findings.extend(effects::check_contracts(&index, &analysis));
    (findings, index, analysis)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Audits a set of in-memory `(rel_path, source)` pairs with every rule
/// that needs no filesystem: A/D/H/N, the E-contract rules, and U001
/// (which re-runs the pipeline on an annotation-neutralized shadow copy
/// — see [`stale`]). The manifest-drift rule E004 only runs in
/// [`audit_workspace`], where a committed manifest exists to diff.
///
/// # Determinism
///
/// The audit itself is single-threaded and every cross-file structure
/// is BTreeMap-ordered, so findings are byte-identical for identical
/// sources regardless of `APTQ_THREADS`.
pub fn audit_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let (mut findings, index, _) = source_rule_findings(sources);
    let shadow_sources: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.clone(), stale::neutralize(s)))
        .collect();
    let (shadow, _, _) = source_rule_findings(&shadow_sources);
    findings.extend(stale::check(&index, &findings, &shadow));
    sort_findings(&mut findings);
    findings
}

/// Walks the workspace rooted at `root` and runs every rule, returning
/// the findings together with the freshly inferred effects manifest
/// (the text `--effects-out` writes). Findings come back sorted by
/// path, then line, then rule, so output is stable across filesystems.
///
/// When `root/results/effects.json` exists, E004 diffs it against the
/// inferred manifest; a missing file is not a finding so fixture
/// workspaces (and fresh checkouts mid-bootstrap) stay auditable.
///
/// # Determinism
///
/// Single-threaded over a sorted file walk with BTreeMap-ordered
/// analyses: findings and the manifest are byte-identical for an
/// identical tree regardless of `APTQ_THREADS`.
pub fn audit_workspace_with_manifest(root: &Path) -> Result<(Vec<Finding>, String), AuditError> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();

    // A root without a Cargo.toml is a misconfiguration (e.g. a typo'd
    // --root); silently reporting "clean" there would let CI pass on
    // nothing.
    let root_manifest = root.join("Cargo.toml");
    if !root_manifest.is_file() {
        return Err(AuditError {
            path: root.to_path_buf(),
            message: "not a workspace root (no Cargo.toml found)".to_string(),
        });
    }
    manifests.push(root_manifest);
    for tree in ["crates", "vendor", "src", "tests", "benches", "examples"] {
        let dir = root.join(tree);
        if dir.is_dir() {
            walk(&dir, &mut rs_files, &mut manifests)?;
        }
    }

    let mut sources: Vec<(String, String)> = Vec::with_capacity(rs_files.len());
    for path in &rs_files {
        sources.push((rel(root, path), read(path)?));
    }

    let (mut findings, index, analysis) = source_rule_findings(&sources);
    for path in &manifests {
        let source = read(path)?;
        findings.extend(rules::check_manifest(&rel(root, path), &source));
    }

    // U001 — shadow pass with neutralized annotations.
    let shadow_sources: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.clone(), stale::neutralize(s)))
        .collect();
    let (shadow, _, _) = source_rule_findings(&shadow_sources);
    findings.extend(stale::check(&index, &findings, &shadow));

    // E004 — committed manifest vs. the one just inferred.
    let manifest = effects::render_manifest(&index, &analysis);
    let committed_path = root.join(effects::MANIFEST_PATH);
    if committed_path.is_file() {
        let committed = read(&committed_path)?;
        findings.extend(effects::diff_manifests(&committed, &manifest));
    }

    sort_findings(&mut findings);
    Ok((findings, manifest))
}

/// [`audit_workspace_with_manifest`] without the manifest text.
///
/// # Determinism
///
/// Inherits the byte-stable ordering of
/// [`audit_workspace_with_manifest`]; independent of `APTQ_THREADS`.
pub fn audit_workspace(root: &Path) -> Result<Vec<Finding>, AuditError> {
    audit_workspace_with_manifest(root).map(|(findings, _)| findings)
}

/// Serializes findings as a JSON document:
/// `{"findings":[...],"count":N}`.
pub fn render_json_report(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f.render_json());
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn walk(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries = fs::read_dir(dir).map_err(|e| AuditError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| AuditError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        children.push(entry.path());
    }
    children.sort();
    for path in children {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "results" | "assets" | "fixtures") {
                continue;
            }
            walk(&path, rs, manifests)?;
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, AuditError> {
    fs::read_to_string(path).map_err(|e| AuditError {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.to_string_lossy().replace('\\', "/")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let f = Finding {
            rule: "A001",
            severity: Severity::Error,
            path: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "msg with \"quotes\"".into(),
            help: "do the thing".into(),
            suggestion: "use `BTreeMap`".into(),
        };
        let doc = render_json_report(&[f]);
        assert!(doc.starts_with("{\"findings\":["));
        assert!(doc.ends_with("\"count\":1}"));
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(doc.contains("\"line\":3"));
        assert!(doc.contains("\"suggestion\":\"use `BTreeMap`\""));
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let f = Finding {
            rule: "A002",
            severity: Severity::Error,
            path: "crates/tensor/src/matrix.rs".into(),
            line: 10,
            col: 2,
            message: "bad cast".into(),
            help: "fix it".into(),
            suggestion: "write `f32::from(x)`".into(),
        };
        let text = f.render_text();
        assert!(text.starts_with("error[A002]: bad cast\n"));
        assert!(text.contains(" --> crates/tensor/src/matrix.rs:10:2\n"));
        assert!(text.contains("= help: fix it"));
        assert!(text.contains("= suggestion: write `f32::from(x)`"));
    }

    #[test]
    fn empty_report() {
        assert_eq!(render_json_report(&[]), "{\"findings\":[],\"count\":0}");
    }
}
