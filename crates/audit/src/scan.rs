//! Comment- and string-aware source scanning.
//!
//! The audit rules must not fire on occurrences of `unwrap()` inside a
//! string literal or a doc comment, and must read annotations *out of*
//! comments. This module performs a single lexical pass over a source
//! file and splits every line into its code text and its comment text,
//! with string/char literal contents blanked out of the code text
//! (replaced by spaces so byte columns keep lining up). It also tracks
//! which lines fall inside `#[cfg(test)]`-gated items.
//!
//! This is a lexer-grade pass, not a parser: it understands line and
//! block comments (including nesting), plain and raw strings, char
//! literals vs. lifetimes, and brace depth. That is enough to make the
//! textual rules in [`crate::rules`] reliable on real-world Rust.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text on the line (without `//` markers).
    pub comment: String,
    /// True if the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A whole scanned file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl ScannedFile {
    /// True if `line_idx` (0-based) or the line above carries an
    /// `// audit:allow(<kind>): <reason>` annotation with a non-empty
    /// reason.
    pub fn allowed(&self, line_idx: usize, kind: &str) -> bool {
        let here = self
            .lines
            .get(line_idx)
            .is_some_and(|l| has_allow(&l.comment, kind));
        let above = line_idx > 0
            && self
                .lines
                .get(line_idx - 1)
                .is_some_and(|l| has_allow(&l.comment, kind) && l.code.trim().is_empty());
        here || above
    }
}

/// Parses `audit:allow(<kind>): <reason>` out of comment text; the
/// reason must contain at least one non-whitespace character.
pub fn has_allow(comment: &str, kind: &str) -> bool {
    let needle = format!("audit:allow({kind}):");
    comment
        .find(&needle)
        .is_some_and(|at| !comment[at + needle.len()..].trim().is_empty())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Scans source text into per-line code/comment splits with test-region
/// tracking.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut state = State::Code;

    // Test-region tracking: brace depth, plus the depth at which each
    // `#[cfg(test)]`-gated item opened.
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut test_depths: Vec<i64> = Vec::new();

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let in_test_at_start = !test_depths.is_empty();

        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        if state == State::LineComment {
            state = State::Code;
        }
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[char_byte_at(raw, i) + 2..]);
                        state = State::LineComment;
                        break;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    }
                    '"' => {
                        // Raw string? Look back for r / r# prefixes.
                        code.push('"');
                        state = State::Str;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"..." or r#"..."#.
                        let mut hashes = 0usize;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j;
                            state = State::RawStr(hashes as u8);
                        } else {
                            code.push(c);
                        }
                    }
                    '\'' => {
                        // Char literal vs. lifetime: a lifetime is
                        // followed by an identifier and no closing quote
                        // nearby; a char literal closes within a few
                        // chars (possibly escaped).
                        if is_char_literal(&bytes, i) {
                            code.push(' ');
                            state = State::Char;
                        } else {
                            code.push('\'');
                        }
                    }
                    '{' => {
                        depth += 1;
                        if pending_test_attr {
                            test_depths.push(depth);
                            pending_test_attr = false;
                        }
                        code.push('{');
                    }
                    '}' => {
                        if test_depths.last().is_some_and(|&d| d == depth) {
                            test_depths.pop();
                        }
                        depth -= 1;
                        code.push('}');
                    }
                    _ => code.push(c),
                },
                State::LineComment => unreachable!("line comments break out of the loop"),
                State::BlockComment(n) => {
                    if c == '*' && next == Some('/') {
                        state = if n == 1 {
                            State::Code
                        } else {
                            State::BlockComment(n - 1)
                        };
                        comment.push(' ');
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(n + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    } else {
                        comment.push(c);
                        code.push(' ');
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Code;
                    }
                    _ => code.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes as usize {
                                code.push(' ');
                            }
                            i += hashes as usize;
                            state = State::Code;
                        } else {
                            code.push(' ');
                        }
                    } else {
                        code.push(' ');
                    }
                }
                State::Char => {
                    if c == '\\' {
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    } else if c == '\'' {
                        code.push(' ');
                        state = State::Code;
                    } else {
                        code.push(' ');
                    }
                }
            }
            i += 1;
        }

        // Plain strings legitimately span lines (trailing `\` or just a
        // multi-line literal), so `Str` persists. Char literals cannot.
        if state == State::Char {
            state = State::Code;
        }

        if code.contains("#[cfg(test)]") || code.contains("# [cfg (test)]") {
            pending_test_attr = true;
        }

        lines.push(Line {
            code,
            comment,
            in_test: in_test_at_start || !test_depths.is_empty() || pending_test_attr,
        });
    }

    ScannedFile { lines }
}

/// Returns the 0-based char column of each occurrence of `needle` in
/// `code` that starts at a word boundary. The boundary check (previous
/// char not alphanumeric/underscore) only applies when the needle opens
/// with an identifier character — it keeps `debug_assert!` from
/// matching `assert!`, while `.unwrap()` still matches right after its
/// receiver.
pub fn word_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    let needs_boundary = pat
        .first()
        .is_some_and(|c| c.is_alphanumeric() || *c == '_');
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + pat.len() <= chars.len() {
        if chars[i..i + pat.len()] == pat[..] {
            let boundary = !needs_boundary || i == 0 || {
                let p = chars[i - 1];
                !(p.is_alphanumeric() || p == '_')
            };
            if boundary {
                out.push(i);
            }
        }
        i += 1;
    }
    out
}

/// Byte offset of the `i`-th char of `s`.
fn char_byte_at(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map_or(s.len(), |(b, _)| b)
}

/// Heuristic: does the `'` at `i` start a char literal (vs. a lifetime)?
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(&c) => {
            if bytes.get(i + 2) == Some(&'\'') {
                // 'x' — but '' in a lifetime position can't occur.
                true
            } else {
                // Lifetimes: 'a, 'static — identifier not followed by a
                // quote right after one char.
                !(c.is_alphanumeric() || c == '_')
            }
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let x = \"panic!(\"; // audit:allow(panic): demo\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].comment.contains("audit:allow(panic): demo"));
        assert!(f.allowed(0, "panic"));
        assert!(!f.allowed(0, "cast"));
    }

    #[test]
    fn allow_requires_reason() {
        let f = scan("foo(); // audit:allow(panic):\n");
        assert!(!f.allowed(0, "panic"));
        let g = scan("foo(); // audit:allow(panic):   \n");
        assert!(!g.allowed(0, "panic"));
    }

    #[test]
    fn allow_on_line_above_counts() {
        let f = scan("// audit:allow(panic): caller guarantees\nfoo.unwrap();\n");
        assert!(f.allowed(1, "panic"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("a /* one\n two */ b\n");
        assert_eq!(f.lines[0].code.trim_end(), "a");
        assert!(f.lines[1].code.contains('b'));
        assert!(f.lines[0].comment.contains("one"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* a /* b */ still */ code\n");
        assert!(f.lines[0].code.contains("code"));
        assert!(!f.lines[0].code.contains('a'));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "region must close with its brace");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("&"));
        assert!(f.lines[0].code.contains("str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let f = scan("let c = '\"'; let d = '\\''; let e = 'x';\n");
        let code = &f.lines[0].code;
        assert!(
            !code.contains('x') || code.matches('x').count() == 0,
            "{code}"
        );
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let s = r#\"unwrap() \"quoted\" \"#; after();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("after"));
    }
}
