//! CLI entry point for the workspace audit.
//!
//! ```text
//! cargo run -p aptq-audit            # text diagnostics, exit 1 on findings
//! cargo run -p aptq-audit -- --json  # JSON report on stdout
//! cargo run -p aptq-audit -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use aptq_audit::{audit_workspace, render_json_report};

struct Options {
    json: bool,
    quiet: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quiet: false,
        root: default_root(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--root" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--root requires a path".to_string())?;
                opts.root = PathBuf::from(v);
            }
            "-h" | "--help" => {
                println!(
                    "aptq-audit: workspace static-analysis pass\n\n\
                     USAGE: aptq-audit [--json] [--quiet] [--root <dir>]\n\n\
                     Rules: A001 panic sites, A002 float casts, A003 panic docs,\n\
                     A004 unsafe allowlist, A005 workspace dependencies.\n\
                     Exit codes: 0 clean, 1 findings, 2 error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn default_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|c| c.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aptq-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match audit_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", render_json_report(&findings));
    } else if !opts.quiet {
        for f in &findings {
            println!("{}", f.render_text());
        }
        if findings.is_empty() {
            println!("audit: clean ({} rules, 0 findings)", 5);
        } else {
            println!("audit: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
