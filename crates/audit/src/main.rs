//! CLI entry point for the workspace audit.
//!
//! ```text
//! cargo run -p aptq-audit                 # text diagnostics, exit 1 on findings
//! cargo run -p aptq-audit -- --json       # JSON report on stdout
//! cargo run -p aptq-audit -- --json-out results/audit.json
//! cargo run -p aptq-audit -- --ratchet results/audit-baseline.json
//! cargo run -p aptq-audit -- --write-baseline results/audit-baseline.json
//! cargo run -p aptq-audit -- --effects-out results/effects.json
//! cargo run -p aptq-audit -- --root /path/to/workspace
//! ```
//!
//! In `--ratchet` mode findings listed in the baseline are accepted;
//! only *new* findings fail (exit 1), and baseline entries that no
//! longer match any finding fail too (exit 3) so the baseline can only
//! shrink. `--write-baseline` regenerates the file from the current
//! findings and exits 0 — if the file already exists, the regeneration
//! only *intersects* with it (debt can be dropped, never added).
//! `--list-rules` prints the rule catalog and exits.
//!
//! Exit codes: `0` clean, `1` findings (or new-vs-baseline findings),
//! `2` usage or I/O error, `3` stale baseline entries only.

use std::path::PathBuf;
use std::process::ExitCode;

use aptq_audit::{audit_workspace_with_manifest, baseline, render_json_report, rules};

struct Options {
    json: bool,
    quiet: bool,
    root: PathBuf,
    ratchet: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    json_out: Option<PathBuf>,
    effects_out: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quiet: false,
        root: default_root(),
        ratchet: None,
        write_baseline: None,
        json_out: None,
        effects_out: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a path"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--root" => opts.root = path_arg(&mut args, "--root")?,
            "--ratchet" => opts.ratchet = Some(path_arg(&mut args, "--ratchet")?),
            "--write-baseline" => {
                opts.write_baseline = Some(path_arg(&mut args, "--write-baseline")?)
            }
            "--json-out" => opts.json_out = Some(path_arg(&mut args, "--json-out")?),
            "--effects-out" => opts.effects_out = Some(path_arg(&mut args, "--effects-out")?),
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                println!(
                    "aptq-audit: workspace static-analysis pass\n\n\
                     USAGE: aptq-audit [--json] [--quiet] [--root <dir>]\n\
                            [--ratchet <baseline.json>] [--write-baseline <baseline.json>]\n\
                            [--json-out <report.json>] [--effects-out <effects.json>]\n\
                            [--list-rules]\n\n\
                     Rules: A001 panic sites, A002 float casts, A003 panic docs,\n\
                     A004 unsafe allowlist, A005 workspace dependencies,\n\
                     D001 thread containment, D002 env containment, D003 ordered\n\
                     collections, D004 wall-clock/entropy, D005 global state,\n\
                     D006 determinism docs, E001 hot-path effect contracts,\n\
                     E002 determinism effect contracts, E003 undocumented panic\n\
                     effects, E004 effects-manifest drift, H001 hot-path\n\
                     allocations, H002 hot-path panics, H003 hot-path locks/I-O,\n\
                     H004 hot-path budgets, N001 float equality, N002 compensated\n\
                     sums, N003 guarded denominators, N004 clamped\n\
                     transcendentals, U001 stale allow annotations.\n\
                     --effects-out writes the inferred per-function effects\n\
                     manifest (the file E004 diffs against).\n\
                     Run --list-rules for scopes and allow kinds.\n\
                     Exit codes: 0 clean, 1 findings, 2 error, 3 stale baseline."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.ratchet.is_some() && opts.write_baseline.is_some() {
        return Err("--ratchet and --write-baseline are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn default_root() -> PathBuf {
    // audit:allow(env): resolving the workspace root in the CLI binary, not library code
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|c| c.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aptq-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        if opts.json {
            let mut out = String::from("{\"rules\":[");
            for (i, r) in rules::CATALOG.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"code\":\"{}\",\"scope\":{:?},\"summary\":{:?},\"allow\":{:?}}}",
                    r.code, r.scope, r.summary, r.allow
                ));
            }
            out.push_str(&format!("],\"count\":{}}}", rules::CATALOG.len()));
            println!("{out}");
        } else {
            println!(
                "aptq-audit rule catalog ({} rules):\n",
                rules::CATALOG.len()
            );
            for r in rules::CATALOG {
                let hatch = if r.allow.is_empty() {
                    String::from("none")
                } else {
                    format!("audit:allow({})", r.allow)
                };
                println!(
                    "  {}  {}\n        scope: {}\n        allow: {}",
                    r.code, r.summary, r.scope, hatch
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    let (findings, manifest) = match audit_workspace_with_manifest(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.effects_out {
        if let Err(e) = std::fs::write(path, &manifest) {
            eprintln!("aptq-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, render_json_report(&findings) + "\n") {
            eprintln!("aptq-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        // A fresh path records all current findings; an existing file is
        // only ever *intersected* — the ratchet must never grow.
        let (doc, written, excluded) = if path.is_file() {
            let existing = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| baseline::parse(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("aptq-audit: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let (kept, excluded) = baseline::shrink(&findings, &existing);
            (baseline::render_entries(&kept), kept.len(), excluded)
        } else {
            (baseline::render(&findings), findings.len(), 0)
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("aptq-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!(
                "audit: wrote baseline with {written} entr{} to {}{}",
                if written == 1 { "y" } else { "ies" },
                path.display(),
                if excluded > 0 {
                    format!(" ({excluded} finding(s) not covered by the existing baseline were excluded — fix or annotate them)")
                } else {
                    String::new()
                }
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.ratchet {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("aptq-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("aptq-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let diff = baseline::diff(&findings, &base);
        if opts.json {
            println!("{}", render_json_report(&diff.new));
        } else if !opts.quiet {
            for f in &diff.new {
                println!("{}", f.render_text());
            }
            for e in &diff.stale {
                println!(
                    "stale baseline entry: [{}] {} — {}\n  = fix: the finding is gone; \
                     remove this entry from {} (or regenerate with --write-baseline)\n",
                    e.rule,
                    e.path,
                    e.message,
                    path.display()
                );
            }
            println!(
                "audit: {} finding(s) total, {} accepted by baseline, {} new, {} stale",
                findings.len(),
                findings.len() - diff.new.len(),
                diff.new.len(),
                diff.stale.len()
            );
        }
        return if !diff.new.is_empty() {
            ExitCode::from(1)
        } else if !diff.stale.is_empty() {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        };
    }

    if opts.json {
        println!("{}", render_json_report(&findings));
    } else if !opts.quiet {
        for f in &findings {
            println!("{}", f.render_text());
        }
        if findings.is_empty() {
            println!("audit: clean ({} rules, 0 findings)", rules::CATALOG.len());
        } else {
            println!("audit: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
