//! CLI entry point for the workspace audit.
//!
//! ```text
//! cargo run -p aptq-audit                 # text diagnostics, exit 1 on findings
//! cargo run -p aptq-audit -- --json       # JSON report on stdout
//! cargo run -p aptq-audit -- --json-out results/audit.json
//! cargo run -p aptq-audit -- --ratchet results/audit-baseline.json
//! cargo run -p aptq-audit -- --write-baseline results/audit-baseline.json
//! cargo run -p aptq-audit -- --root /path/to/workspace
//! ```
//!
//! In `--ratchet` mode findings listed in the baseline are accepted;
//! only *new* findings fail (exit 1), and baseline entries that no
//! longer match any finding fail too (exit 3) so the baseline can only
//! shrink. `--write-baseline` regenerates the file from the current
//! findings and exits 0.
//!
//! Exit codes: `0` clean, `1` findings (or new-vs-baseline findings),
//! `2` usage or I/O error, `3` stale baseline entries only.

use std::path::PathBuf;
use std::process::ExitCode;

use aptq_audit::{audit_workspace, baseline, render_json_report};

struct Options {
    json: bool,
    quiet: bool,
    root: PathBuf,
    ratchet: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    json_out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quiet: false,
        root: default_root(),
        ratchet: None,
        write_baseline: None,
        json_out: None,
    };
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a path"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--root" => opts.root = path_arg(&mut args, "--root")?,
            "--ratchet" => opts.ratchet = Some(path_arg(&mut args, "--ratchet")?),
            "--write-baseline" => {
                opts.write_baseline = Some(path_arg(&mut args, "--write-baseline")?)
            }
            "--json-out" => opts.json_out = Some(path_arg(&mut args, "--json-out")?),
            "-h" | "--help" => {
                println!(
                    "aptq-audit: workspace static-analysis pass\n\n\
                     USAGE: aptq-audit [--json] [--quiet] [--root <dir>]\n\
                            [--ratchet <baseline.json>] [--write-baseline <baseline.json>]\n\
                            [--json-out <report.json>]\n\n\
                     Rules: A001 panic sites, A002 float casts, A003 panic docs,\n\
                     A004 unsafe allowlist, A005 workspace dependencies,\n\
                     D001 thread containment, D002 env containment, D003 ordered\n\
                     collections, D004 wall-clock/entropy, D005 global state,\n\
                     D006 determinism docs.\n\
                     Exit codes: 0 clean, 1 findings, 2 error, 3 stale baseline."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.ratchet.is_some() && opts.write_baseline.is_some() {
        return Err("--ratchet and --write-baseline are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn default_root() -> PathBuf {
    // audit:allow(env): resolving the workspace root in the CLI binary, not library code
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|c| c.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aptq-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match audit_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, render_json_report(&findings) + "\n") {
            eprintln!("aptq-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&findings)) {
            eprintln!("aptq-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!(
                "audit: wrote baseline with {} entr{} to {}",
                findings.len(),
                if findings.len() == 1 { "y" } else { "ies" },
                path.display()
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.ratchet {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("aptq-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("aptq-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let diff = baseline::diff(&findings, &base);
        if opts.json {
            println!("{}", render_json_report(&diff.new));
        } else if !opts.quiet {
            for f in &diff.new {
                println!("{}", f.render_text());
            }
            for e in &diff.stale {
                println!(
                    "stale baseline entry: [{}] {} — {}\n  = fix: the finding is gone; \
                     remove this entry from {} (or regenerate with --write-baseline)\n",
                    e.rule,
                    e.path,
                    e.message,
                    path.display()
                );
            }
            println!(
                "audit: {} finding(s) total, {} accepted by baseline, {} new, {} stale",
                findings.len(),
                findings.len() - diff.new.len(),
                diff.new.len(),
                diff.stale.len()
            );
        }
        return if !diff.new.is_empty() {
            ExitCode::from(1)
        } else if !diff.stale.is_empty() {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        };
    }

    if opts.json {
        println!("{}", render_json_report(&findings));
    } else if !opts.quiet {
        for f in &findings {
            println!("{}", f.render_text());
        }
        if findings.is_empty() {
            println!("audit: clean ({} rules, 0 findings)", 11);
        } else {
            println!("audit: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
