//! Unified call-graph effect inference — the engine behind D006,
//! H001–H004, and the contract rules E001–E004.
//!
//! PR 5 left the workspace with three separate reach analyses: the D006
//! determinism fixpoint, the H-rule hot-path closure, and the N-rule
//! body scans, each re-walking the call graph with its own ad-hoc
//! rules. The guarantees they check are all *transitive* properties of
//! whole call chains, so they now share one inference pass:
//!
//! 1. **Leaf facts.** Every non-test library function is scanned once
//!    for effect *sites* — the same patterns the per-rule scans used —
//!    yielding a per-function [`EffectSet`] over the lattice
//!    `{Alloc, Panic, EnvRead, ThreadSpawn, WallClock, Io, GlobalMut,
//!    FloatAccum}`. Sanctioned scopes are excluded at the leaf: env
//!    reads inside the designated config module, thread spawns inside
//!    `aptq_tensor::parallel`, wall-clock reads in `crates/bench` /
//!    `src/bin`, and any site carrying its rule's `// audit:allow(...)`
//!    annotation (an allow is a reviewed exemption, so it suppresses
//!    both the finding *and* the effect bit).
//! 2. **Closure.** Effects propagate callee → caller over the same
//!    by-name call edges [`crate::reach`] uses, to a fixpoint. A
//!    `# Panics`-documented callee does not propagate `Panic` (the doc
//!    turns the panic into a precondition the caller accepted), and
//!    `ThreadSpawn` additionally absorbs the exact D006 backward
//!    fixpoint (reaching `aptq_tensor::parallel` *is* spawning).
//! 3. **Queries.** [`crate::determinism`] reads
//!    [`EffectAnalysis::reaches_parallel`] for D006,
//!    [`crate::hotpath`] reads the hot-path roots / ownership map /
//!    per-function sites for H001–H004 (bit-identical to the pre-engine
//!    passes, pinned by tests), and [`check_contracts`] compares
//!    *declared* contracts against *inferred* effects:
//!
//! | Code | What it enforces | Escape hatch |
//! |------|------------------|--------------|
//! | E001 | a `# HotPath` root must not infer `Alloc` | `// audit:allow(effect): <reason>` |
//! | E002 | a `# Determinism`-documented fn must not infer `EnvRead`/`WallClock` | `// audit:allow(effect): <reason>` |
//! | E003 | a pub fn in a panic-free crate inferring `Panic` must document `# Panics` | `// audit:allow(effect): <reason>` |
//! | E004 | the committed `results/effects.json` matches the inferred manifest | regenerate with `--effects-out` |
//!
//! The manifest ([`render_manifest`]) records the inferred effect set
//! of every public library function, BTreeMap-ordered and line-oriented
//! so diffs review like a ledger. CI regenerates it and byte-compares
//! against the committed copy: any PR that changes the effect signature
//! of a public fn must update the manifest in the same diff.

use std::collections::BTreeMap;

use crate::determinism::{
    clock_exempt, static_global_col, ENV_CONFIG_MODULES, PARALLEL_MODULE_FILE, PARALLEL_MODULE_PATH,
};
use crate::index::{FileIndex, FnId, Item, SymbolIndex};
use crate::reach;
use crate::scan::word_occurrences;
use crate::{json_str, Finding, Severity};

/// One effect in the lattice. The discriminant doubles as the bit
/// position inside [`EffectSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    Alloc,
    Panic,
    EnvRead,
    ThreadSpawn,
    WallClock,
    Io,
    GlobalMut,
    FloatAccum,
}

impl Effect {
    /// Every effect, in manifest order.
    pub const ALL: [Effect; 8] = [
        Effect::Alloc,
        Effect::Panic,
        Effect::EnvRead,
        Effect::ThreadSpawn,
        Effect::WallClock,
        Effect::Io,
        Effect::GlobalMut,
        Effect::FloatAccum,
    ];

    /// The manifest / message name of the effect.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Alloc => "Alloc",
            Effect::Panic => "Panic",
            Effect::EnvRead => "EnvRead",
            Effect::ThreadSpawn => "ThreadSpawn",
            Effect::WallClock => "WallClock",
            Effect::Io => "Io",
            Effect::GlobalMut => "GlobalMut",
            Effect::FloatAccum => "FloatAccum",
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A set of [`Effect`]s, packed into one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(u8);

impl EffectSet {
    pub const EMPTY: EffectSet = EffectSet(0);

    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    pub fn remove(&mut self, e: Effect) {
        self.0 &= !e.bit();
    }

    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Member names in [`Effect::ALL`] order.
    pub fn names(self) -> Vec<&'static str> {
        Effect::ALL
            .iter()
            .filter(|&&e| self.contains(e))
            .map(|&e| e.name())
            .collect()
    }

    /// `"Alloc|Panic"`-style label for diagnostics.
    pub fn label(self) -> String {
        self.names().join("|")
    }
}

/// One effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    pub effect: Effect,
    /// 0-based line of the site.
    pub line: usize,
    /// 0-based char column of the site.
    pub col: usize,
    /// Site label as it appears in H-rule messages (`.unwrap()`,
    /// `Vec::new`, `Mutex`, …).
    pub what: String,
    /// An `assert!`-family macro: feeds H002 (a hot-path assert
    /// deserves a look even when documented) but not the `Panic` effect
    /// bit — documented preconditions are not part of a function's
    /// effect signature the way an `unwrap` is.
    pub assert_family: bool,
}

/// Allocation-site patterns (H001 / `Alloc`). `Matrix::zeros` and
/// `vec![...]` are deliberately absent: sized one-shot scratch is the
/// documented budget mechanism, while growth and copying are not.
pub(crate) const ALLOC_SITES: &[&str] = &[
    "Vec::new(",
    "with_capacity(",
    ".push(",
    "vcat(",
    "to_vec(",
    ".clone()",
    "format!",
    "String::new(",
    "String::from(",
    "to_string(",
    ".to_owned(",
];

/// Lock / I-O patterns (H003 / `Io`).
pub(crate) const IO_SITES: &[&str] = &["Mutex", "RwLock", "std::io", "println!", "eprintln!"];

/// Panic macros (H002 / `Panic`): A001's set plus the assert family.
pub(crate) const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Thread-spawn patterns (`ThreadSpawn`), as in D001.
const THREAD_SITES: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Wall-clock / entropy patterns (`WallClock`), as in D004.
const CLOCK_SITES: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "random_seed",
];

/// Naive float-reduction patterns (`FloatAccum`), as in N002.
const ACCUM_SITES: &[&str] = &[".sum::<f32>()", ".sum::<f64>()"];

/// True for library source files: `crates/<name>/src/**`.
pub(crate) fn in_lib_src(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

/// The computed effect analysis for one workspace index.
pub struct EffectAnalysis {
    /// Per `(file, item)`: leaf effect sites, in body-scan order
    /// (line-major; within a line: alloc, panic, io, then the rest).
    pub sites: Vec<Vec<Vec<Site>>>,
    /// Per `(file, item)`: effects of the function's own body.
    pub local: Vec<Vec<EffectSet>>,
    /// Per `(file, item)`: `local` closed over callees to the fixpoint.
    pub inferred: Vec<Vec<EffectSet>>,
    /// Per `(file, item)`: the exact D006 backward fixpoint — whether
    /// the body transitively reaches `aptq_tensor::parallel`.
    pub reaches_parallel: Vec<Vec<bool>>,
    /// `# HotPath`-documented non-test library functions, in
    /// (path, line) order for deterministic attribution.
    pub hot_roots: Vec<FnId>,
    /// First hot root (in `hot_roots` order) reaching each member of
    /// any hot closure.
    pub hot_owner: BTreeMap<FnId, FnId>,
}

impl EffectAnalysis {
    /// Runs the full inference over a workspace index: leaf sites, the
    /// D006 backward fixpoint, the hot-path forward closures, and the
    /// callee→caller effect fixpoint.
    pub fn compute(index: &SymbolIndex) -> EffectAnalysis {
        let mut sites: Vec<Vec<Vec<Site>>> = Vec::with_capacity(index.files().len());
        let mut local: Vec<Vec<EffectSet>> = Vec::with_capacity(index.files().len());
        for file in index.files() {
            let mut file_sites = Vec::with_capacity(file.items.len());
            let mut file_local = Vec::with_capacity(file.items.len());
            for item in &file.items {
                let s = if item.kind == crate::index::ItemKind::Fn
                    && !item.in_test
                    && in_lib_src(&file.rel_path)
                {
                    extract_sites(file, item)
                } else {
                    Vec::new()
                };
                let mut set = EffectSet::EMPTY;
                for site in &s {
                    if !(site.effect == Effect::Panic && site.assert_family) {
                        set.insert(site.effect);
                    }
                }
                file_sites.push(s);
                file_local.push(set);
            }
            sites.push(file_sites);
            local.push(file_local);
        }

        let reaches_parallel = parallel_reachability(index);

        // Hot-path roots and first-root-wins ownership, exactly as the
        // pre-engine H-rule pass computed them.
        let mut hot_roots: Vec<FnId> = index
            .fns()
            .filter(|&(id, it)| {
                it.has_hotpath_doc && !it.in_test && in_lib_src(&index.file(id).rel_path)
            })
            .map(|(id, _)| id)
            .collect();
        hot_roots.sort_by(|&a, &b| {
            (&index.file(a).rel_path, index.item(a).line)
                .cmp(&(&index.file(b).rel_path, index.item(b).line))
        });
        let mut hot_owner: BTreeMap<FnId, FnId> = BTreeMap::new();
        for &root in &hot_roots {
            let closure = reach::reachable_from(index, &[root]);
            for (id, _) in index.fns() {
                if closure[id.0][id.1] {
                    hot_owner.entry(id).or_insert(root);
                }
            }
        }

        // Callee → caller effect fixpoint over by-name edges. Test
        // definitions and non-library definitions never contribute: an
        // integration-test helper sharing a name with a library fn must
        // not leak its effects into the library's signature.
        let by_name = index.fns_by_name();
        let mut inferred = local.clone();
        loop {
            let mut changed = false;
            for (id, item) in index.fns() {
                if item.in_test || !in_lib_src(&index.file(id).rel_path) {
                    continue;
                }
                let mut acc = inferred[id.0][id.1];
                for call in &item.calls {
                    if !reach::may_resolve_in_workspace(call) {
                        continue;
                    }
                    let Some(defs) = by_name.get(call.name.as_str()) else {
                        continue;
                    };
                    for &(fi, ii) in defs {
                        let callee = &index.files()[fi].items[ii];
                        if callee.in_test || !in_lib_src(&index.files()[fi].rel_path) {
                            continue;
                        }
                        let mut ce = inferred[fi][ii];
                        if callee.has_panics_doc {
                            ce.remove(Effect::Panic);
                        }
                        acc = acc.union(ce);
                    }
                }
                if acc != inferred[id.0][id.1] {
                    inferred[id.0][id.1] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Reaching `aptq_tensor::parallel` *is* spawning threads; the
        // D006 fixpoint already closed over callers, so the bit lands
        // directly on every reaching library function.
        for (id, item) in index.fns() {
            if !item.in_test && in_lib_src(&index.file(id).rel_path) && reaches_parallel[id.0][id.1]
            {
                inferred[id.0][id.1].insert(Effect::ThreadSpawn);
            }
        }

        EffectAnalysis {
            sites,
            local,
            inferred,
            reaches_parallel,
            hot_roots,
            hot_owner,
        }
    }
}

/// Computes, per function item, whether its body transitively reaches
/// `aptq_tensor::parallel`: seeded by functions *defined in* the
/// parallel module and by call sites that name it (directly or through
/// a `use` import), then propagated over name-resolved call edges to a
/// fixpoint — [`crate::reach::reaches`] with the parallel module as
/// seed and import-aware path matching as the direct classifier. This
/// is D006's reachability, bit-for-bit.
pub fn parallel_reachability(index: &SymbolIndex) -> Vec<Vec<bool>> {
    reach::reaches(
        index,
        |f| f.rel_path == PARALLEL_MODULE_FILE,
        |file: &FileIndex, call| {
            let call_path = call.path.as_str();
            if call_path.contains(PARALLEL_MODULE_PATH) {
                return true;
            }
            let first = call_path.split("::").next().unwrap_or(call_path);
            file.imports
                .get(first)
                .or_else(|| {
                    // `use aptq_tensor::parallel::thread_count;` imports
                    // the terminal name itself.
                    file.imports.get(call_path)
                })
                .is_some_and(|full| full.contains(PARALLEL_MODULE_PATH))
        },
    )
}

/// Scans one function body for leaf effect sites. The per-line order —
/// alloc, panic, io, env, thread, clock, global, accum — matches the
/// emission order of the pre-engine H-rule pass so ported findings stay
/// bit-identical.
fn extract_sites(file: &FileIndex, item: &Item) -> Vec<Site> {
    let f = &file.scanned;
    let rel_path = file.rel_path.as_str();
    let (lo, hi) = item.body;
    let mut sites = Vec::new();
    for idx in lo..=hi.min(f.lines.len().saturating_sub(1)) {
        let line = &f.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        for pat in ALLOC_SITES {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "alloc") {
                    continue;
                }
                sites.push(Site {
                    effect: Effect::Alloc,
                    line: idx,
                    col,
                    what: pat.trim_end_matches('(').to_string(),
                    assert_family: false,
                });
            }
        }

        // Panic sites: `.unwrap()`, message-less `.expect(`, and the
        // panic macros. A descriptive `.expect("...")` self-annotates
        // exactly as in A001 (the scanner blanked string contents, so a
        // literal message shows up as `.expect("   ")`).
        let mut panic_cols: Vec<(usize, String, bool)> = Vec::new();
        for col in word_occurrences(code, ".unwrap()") {
            panic_cols.push((col, "`.unwrap()`".into(), false));
        }
        for col in word_occurrences(code, ".expect(") {
            let after = &code[code
                .char_indices()
                .nth(col + ".expect(".len())
                .map_or(code.len(), |(b, _)| b)..];
            let trimmed = after.trim_start();
            let descriptive = trimmed.starts_with('"')
                && trimmed[1..]
                    .chars()
                    .take_while(|&c| c != '"')
                    .any(|c| c == ' ')
                && trimmed[1..].contains('"');
            if !descriptive {
                panic_cols.push((col, "message-less `.expect(...)`".into(), false));
            }
        }
        for mac in PANIC_MACROS {
            for col in word_occurrences(code, mac) {
                let assert_family = mac.starts_with("assert");
                panic_cols.push((col, format!("`{mac}`"), assert_family));
            }
        }
        for (col, what, assert_family) in panic_cols {
            if f.allowed(idx, "panic") {
                continue;
            }
            sites.push(Site {
                effect: Effect::Panic,
                line: idx,
                col,
                what,
                assert_family,
            });
        }

        for pat in IO_SITES {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "io") {
                    continue;
                }
                sites.push(Site {
                    effect: Effect::Io,
                    line: idx,
                    col,
                    what: (*pat).to_string(),
                    assert_family: false,
                });
            }
        }

        if !ENV_CONFIG_MODULES.contains(&rel_path) {
            for col in word_occurrences(code, "env::var") {
                if f.allowed(idx, "env") {
                    continue;
                }
                sites.push(Site {
                    effect: Effect::EnvRead,
                    line: idx,
                    col,
                    what: "env::var".to_string(),
                    assert_family: false,
                });
            }
        }

        if rel_path != PARALLEL_MODULE_FILE {
            for pat in THREAD_SITES {
                for col in word_occurrences(code, pat) {
                    if f.allowed(idx, "thread") {
                        continue;
                    }
                    sites.push(Site {
                        effect: Effect::ThreadSpawn,
                        line: idx,
                        col,
                        what: (*pat).to_string(),
                        assert_family: false,
                    });
                }
            }
        }

        if !clock_exempt(rel_path) {
            for pat in CLOCK_SITES {
                for col in word_occurrences(code, pat) {
                    if f.allowed(idx, "nondet") {
                        continue;
                    }
                    sites.push(Site {
                        effect: Effect::WallClock,
                        line: idx,
                        col,
                        what: (*pat).to_string(),
                        assert_family: false,
                    });
                }
            }
        }

        if let Some(col) = static_global_col(code) {
            if !f.allowed(idx, "global") {
                sites.push(Site {
                    effect: Effect::GlobalMut,
                    line: idx,
                    col,
                    what: "static".to_string(),
                    assert_family: false,
                });
            }
        }

        for pat in ACCUM_SITES {
            for col in word_occurrences(code, pat) {
                if f.allowed(idx, "accum") {
                    continue;
                }
                sites.push(Site {
                    effect: Effect::FloatAccum,
                    line: idx,
                    col,
                    what: (*pat).to_string(),
                    assert_family: false,
                });
            }
        }
    }
    sites
}

/// E001–E003: declared contracts checked against inferred effects.
/// All three clear with `// audit:allow(effect): <reason>` on the
/// declaration line (or the comment-only line above).
pub fn check_contracts(index: &SymbolIndex, analysis: &EffectAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();

    // E001 — a `# HotPath` root whose closure allocates. H001 flags the
    // individual sites; this flags the broken *contract* at the root.
    for &id in &analysis.hot_roots {
        let item = index.item(id);
        let file = index.file(id);
        if !analysis.inferred[id.0][id.1].contains(Effect::Alloc)
            || file.scanned.allowed(item.line, "effect")
        {
            continue;
        }
        findings.push(Finding {
            rule: "E001",
            severity: Severity::Error,
            path: file.rel_path.clone(),
            line: item.line + 1,
            col: 1,
            message: format!(
                "hot-path root `{}` declares `# HotPath` but infers effect `Alloc`",
                item.name
            ),
            help: "the transitive closure of this root contains allocation sites (H001 lists \
                   them); hoist the allocations into caller-owned scratch, or annotate the root \
                   with `// audit:allow(effect): <reason>`"
                .into(),
            suggestion: "make the closure allocation-free, then re-run the audit".into(),
        });
    }

    for (id, item) in index.fns() {
        let file = index.file(id);
        let rel_path = file.rel_path.as_str();
        if item.in_test || !in_lib_src(rel_path) {
            continue;
        }
        let inferred = analysis.inferred[id.0][id.1];

        // E002 — a `# Determinism` contract contradicted by inferred
        // environment or wall-clock dependence.
        if item.has_determinism_doc {
            let mut bad = EffectSet::EMPTY;
            for e in [Effect::EnvRead, Effect::WallClock] {
                if inferred.contains(e) {
                    bad.insert(e);
                }
            }
            if !bad.is_empty() && !file.scanned.allowed(item.line, "effect") {
                findings.push(Finding {
                    rule: "E002",
                    severity: Severity::Error,
                    path: file.rel_path.clone(),
                    line: item.line + 1,
                    col: 1,
                    message: format!(
                        "function `{}` documents `# Determinism` but infers effect `{}`",
                        item.name,
                        bad.label()
                    ),
                    help: "a determinism contract cannot coexist with ambient environment or \
                           wall-clock reads; inject the value from the caller, or annotate with \
                           `// audit:allow(effect): <reason>`"
                        .into(),
                    suggestion: "take the configuration/timestamp as a parameter".into(),
                });
            }
        }

        // E003 — a public API in a panic-free crate silently gaining
        // `Panic` (transitively — beyond A003's own-body view).
        if item.is_pub
            && !item.has_panics_doc
            && crate::rules::PANIC_FREE_CRATES
                .iter()
                .any(|p| rel_path.starts_with(p))
            && inferred.contains(Effect::Panic)
            && !file.scanned.allowed(item.line, "effect")
        {
            findings.push(Finding {
                rule: "E003",
                severity: Severity::Error,
                path: file.rel_path.clone(),
                line: item.line + 1,
                col: 1,
                message: format!(
                    "public function `{}` infers effect `Panic` but its doc comment has no \
                     `# Panics` section",
                    item.name
                ),
                help: "a panic-free-crate API that can transitively panic must say so; document \
                       the precondition in a `# Panics` section, make the callee infallible, or \
                       annotate with `// audit:allow(effect): <reason>`"
                    .into(),
                suggestion: "add a `/// # Panics` doc section".into(),
            });
        }
    }
    findings
}

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The workspace-relative path the committed manifest lives at.
pub const MANIFEST_PATH: &str = "results/effects.json";

/// Builds the per-function effect manifest: every public, non-test
/// library function (binary entry points under `src/bin` excluded),
/// keyed `(path, fn name)` — duplicate keys (same-named methods in two
/// impl blocks) union-merge their effects. BTreeMap order makes the
/// output deterministic; the line-oriented layout diffs like a ledger.
pub fn render_manifest(index: &SymbolIndex, analysis: &EffectAnalysis) -> String {
    let mut map: BTreeMap<(String, String), EffectSet> = BTreeMap::new();
    for (id, item) in index.fns() {
        let rel_path = &index.file(id).rel_path;
        if !in_lib_src(rel_path) || rel_path.contains("/src/bin/") || !item.is_pub || item.in_test {
            continue;
        }
        let entry = map
            .entry((rel_path.clone(), item.name.clone()))
            .or_insert(EffectSet::EMPTY);
        *entry = entry.union(analysis.inferred[id.0][id.1]);
    }
    let mut out = format!("{{\"version\":{MANIFEST_VERSION},\"fns\":[\n");
    let total = map.len();
    for (i, ((path, name), set)) in map.iter().enumerate() {
        let effects: Vec<String> = set.names().iter().map(|n| json_str(n)).collect();
        out.push_str(&format!(
            "{{\"path\":{},\"fn\":{},\"effects\":[{}]}}{}\n",
            json_str(path),
            json_str(name),
            effects.join(","),
            if i + 1 < total { "," } else { "" }
        ));
    }
    out.push_str("]}\n");
    out
}

/// Parses a manifest produced by [`render_manifest`] into
/// `(path, fn) → effect names`. Line-oriented, like the baseline
/// parser: one entry object per line, fields extracted by key.
pub fn parse_manifest(text: &str) -> Result<BTreeMap<(String, String), Vec<String>>, String> {
    let head = text.lines().next().unwrap_or("");
    let version = crate::baseline::field(head, "version").and_then(|v| v.parse::<u32>().ok());
    if version != Some(MANIFEST_VERSION) {
        return Err(format!(
            "effects manifest version mismatch: expected {MANIFEST_VERSION}, file header is \
             `{head}` (regenerate with --effects-out)"
        ));
    }
    let mut map = BTreeMap::new();
    for line in text.lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "]}" {
            continue;
        }
        let path = crate::baseline::string_field(line, "path")
            .ok_or_else(|| format!("manifest entry missing `path`: {line}"))?;
        let name = crate::baseline::string_field(line, "fn")
            .ok_or_else(|| format!("manifest entry missing `fn`: {line}"))?;
        let effects_at = line
            .find("\"effects\":[")
            .ok_or_else(|| format!("manifest entry missing `effects`: {line}"))?;
        let rest = &line[effects_at + "\"effects\":[".len()..];
        let end = rest
            .find(']')
            .ok_or_else(|| format!("unterminated `effects` array: {line}"))?;
        let effects: Vec<String> = rest[..end]
            .split(',')
            .map(|s| s.trim().trim_matches('"').to_string())
            .filter(|s| !s.is_empty())
            .collect();
        map.insert((path, name), effects);
    }
    Ok(map)
}

/// E004: diffs the committed manifest text against the freshly rendered
/// one. Every divergence — a new fn, a removed fn, a changed effect
/// set — is one finding, so the failure names exactly what moved.
pub fn diff_manifests(committed: &str, current: &str) -> Vec<Finding> {
    let finding = |message: String| Finding {
        rule: "E004",
        severity: Severity::Error,
        path: MANIFEST_PATH.to_string(),
        line: 1,
        col: 1,
        message,
        help: "the committed effects manifest must match the inferred effect signatures; \
               regenerate it and review the diff — an unexpected effect change is the bug, not \
               the manifest"
            .into(),
        suggestion: "run `cargo run -p aptq-audit -- --effects-out results/effects.json` and \
                     commit the result"
            .into(),
    };
    let committed = match parse_manifest(committed) {
        Ok(m) => m,
        Err(e) => return vec![finding(format!("unreadable committed manifest: {e}"))],
    };
    let current = match parse_manifest(current) {
        Ok(m) => m,
        Err(e) => return vec![finding(format!("unreadable inferred manifest: {e}"))],
    };
    let mut findings = Vec::new();
    for ((path, name), effects) in &current {
        match committed.get(&(path.clone(), name.clone())) {
            None => findings.push(finding(format!(
                "effects manifest drift: `{path}` fn `{name}` (infers [{}]) is missing from the \
                 committed manifest",
                effects.join(", ")
            ))),
            Some(old) if old != effects => findings.push(finding(format!(
                "effects manifest drift: `{path}` fn `{name}` now infers [{}] but the committed \
                 manifest records [{}]",
                effects.join(", "),
                old.join(", ")
            ))),
            Some(_) => {}
        }
    }
    for (path, name) in committed.keys() {
        if !current.contains_key(&(path.clone(), name.clone())) {
            findings.push(finding(format!(
                "effects manifest drift: `{path}` fn `{name}` is in the committed manifest but \
                 no longer exists in the workspace"
            )));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sources: &[(&str, &str)]) -> SymbolIndex {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        SymbolIndex::build(&owned)
    }

    fn inferred_of(index: &SymbolIndex, analysis: &EffectAnalysis, name: &str) -> EffectSet {
        let (id, _) = index
            .fns()
            .find(|(_, it)| it.name == name)
            .expect("fn present");
        analysis.inferred[id.0][id.1]
    }

    #[test]
    fn leaf_effects_are_seeded_and_propagate_to_callers() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api() {\n    helper();\n}\nfn helper() {\n    let mut v = Vec::new();\n    v.push(1);\n    x.unwrap();\n}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        let api = inferred_of(&idx, &a, "api");
        assert!(api.contains(Effect::Alloc));
        assert!(api.contains(Effect::Panic));
        assert!(!api.contains(Effect::Io));
        assert_eq!(api.label(), "Alloc|Panic");
    }

    #[test]
    fn allow_annotations_suppress_the_effect_bit() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api() {\n    // audit:allow(alloc): one-time setup\n    let v = Vec::new();\n}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        assert!(inferred_of(&idx, &a, "api").is_empty());
    }

    #[test]
    fn panics_doc_masks_propagation_but_not_the_local_bit() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api() {\n    checked();\n}\n/// # Panics\n/// When x is None.\npub fn checked() {\n    x.unwrap();\n}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        assert!(inferred_of(&idx, &a, "checked").contains(Effect::Panic));
        assert!(!inferred_of(&idx, &a, "api").contains(Effect::Panic));
    }

    #[test]
    fn assert_macros_do_not_set_the_panic_bit_but_are_sites() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api(n: usize) {\n    assert!(n > 0);\n}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        assert!(!inferred_of(&idx, &a, "api").contains(Effect::Panic));
        let (id, _) = idx.fns().next().expect("one fn");
        assert_eq!(a.sites[id.0][id.1].len(), 1);
        assert!(a.sites[id.0][id.1][0].assert_family);
    }

    #[test]
    fn sanctioned_scopes_carry_no_leaf_effects() {
        let idx = build(&[
            (
                "crates/tensor/src/parallel.rs",
                "pub fn thread_count() -> usize {\n    std::env::var(\"APTQ_THREADS\");\n    std::thread::scope(|s| {});\n    1\n}\n",
            ),
            (
                "crates/bench/src/bin/b.rs",
                "pub fn timed() {\n    let t = std::time::Instant::now();\n}\n",
            ),
        ]);
        let a = EffectAnalysis::compute(&idx);
        let tc = inferred_of(&idx, &a, "thread_count");
        assert!(!tc.contains(Effect::EnvRead));
        // Defined *in* the parallel module: the D006 seed still marks it.
        assert!(tc.contains(Effect::ThreadSpawn));
        assert!(!inferred_of(&idx, &a, "timed").contains(Effect::WallClock));
    }

    #[test]
    fn reaching_parallel_infers_thread_spawn() {
        let idx = build(&[
            (
                "crates/tensor/src/parallel.rs",
                "pub fn run_indexed(n: usize) -> usize { n }\n",
            ),
            (
                "crates/core/src/x.rs",
                "pub fn api() -> usize {\n    aptq_tensor::parallel::run_indexed(3)\n}\n",
            ),
        ]);
        let a = EffectAnalysis::compute(&idx);
        assert!(inferred_of(&idx, &a, "api").contains(Effect::ThreadSpawn));
        let (id, _) = idx.fns().find(|(_, it)| it.name == "api").unwrap();
        assert!(a.reaches_parallel[id.0][id.1]);
    }

    #[test]
    fn test_and_non_library_defs_do_not_contribute() {
        let idx = build(&[
            (
                "crates/core/src/x.rs",
                "pub fn api() {\n    shared();\n}\nfn shared() {}\n#[cfg(test)]\nmod tests {\n    fn shared() { panic!(\"boom\"); }\n}\n",
            ),
            (
                "crates/core/tests/helpers.rs",
                "pub fn shared() {\n    let v = Vec::new();\n}\n",
            ),
        ]);
        let a = EffectAnalysis::compute(&idx);
        assert!(inferred_of(&idx, &a, "api").is_empty());
    }

    #[test]
    fn e001_fires_on_allocating_hot_root_and_clears_with_allow() {
        let src = "/// # HotPath\n/// budget: zero.\npub fn forward() {\n    helper();\n}\nfn helper() {\n    let v = Vec::new();\n}\n";
        let idx = build(&[("crates/core/src/x.rs", src)]);
        let a = EffectAnalysis::compute(&idx);
        let f = check_contracts(&idx, &a);
        assert_eq!(f.iter().filter(|f| f.rule == "E001").count(), 1, "{f:?}");
        let annotated = src.replace(
            "pub fn forward() {",
            "// audit:allow(effect): closure audited by hand\npub fn forward() {",
        );
        let idx2 = build(&[("crates/core/src/x.rs", &annotated)]);
        let a2 = EffectAnalysis::compute(&idx2);
        let g = check_contracts(&idx2, &a2);
        assert!(g.iter().all(|f| f.rule != "E001"), "{g:?}");
    }

    #[test]
    fn e002_fires_on_env_read_behind_determinism_doc() {
        let src = "/// # Determinism\n/// Bit-identical.\npub fn api() -> Option<String> {\n    std::env::var(\"X\").ok()\n}\n";
        let idx = build(&[("crates/core/src/x.rs", src)]);
        let a = EffectAnalysis::compute(&idx);
        let f = check_contracts(&idx, &a);
        assert_eq!(f.iter().filter(|f| f.rule == "E002").count(), 1, "{f:?}");
        assert!(f[0].message.contains("EnvRead"), "{f:?}");
    }

    #[test]
    fn e003_fires_on_transitive_panic_without_doc() {
        let src = "pub fn api() {\n    helper();\n}\nfn helper() {\n    x.unwrap();\n}\n";
        let idx = build(&[("crates/core/src/x.rs", src)]);
        let a = EffectAnalysis::compute(&idx);
        let f = check_contracts(&idx, &a);
        assert_eq!(f.iter().filter(|f| f.rule == "E003").count(), 1, "{f:?}");
        // Outside the panic-free crates the rule stays silent.
        let idx2 = build(&[("crates/lm/src/x.rs", src)]);
        let a2 = EffectAnalysis::compute(&idx2);
        assert!(check_contracts(&idx2, &a2).iter().all(|f| f.rule != "E003"));
    }

    #[test]
    fn manifest_roundtrips_and_diffs_cleanly() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api() {\n    let v = Vec::new();\n}\nfn private() {}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        let doc = render_manifest(&idx, &a);
        let parsed = parse_manifest(&doc).expect("manifest parses");
        assert_eq!(parsed.len(), 1, "private fns are not manifest entries");
        assert_eq!(
            parsed
                .get(&("crates/core/src/x.rs".to_string(), "api".to_string()))
                .map(Vec::as_slice),
            Some(&["Alloc".to_string()][..])
        );
        assert!(diff_manifests(&doc, &doc).is_empty());
    }

    #[test]
    fn e004_fires_once_per_drifted_entry() {
        let idx = build(&[(
            "crates/core/src/x.rs",
            "pub fn api() {\n    let v = Vec::new();\n}\n",
        )]);
        let a = EffectAnalysis::compute(&idx);
        let current = render_manifest(&idx, &a);
        let stale = current.replace("[\"Alloc\"]", "[]");
        let f = diff_manifests(&stale, &current);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "E004");
        assert!(f[0].message.contains("now infers [Alloc]"), "{f:?}");
        // Regenerating the manifest clears the drift.
        assert!(diff_manifests(&current, &current).is_empty());
    }

    #[test]
    fn manifest_is_byte_stable_across_runs() {
        let sources = [
            (
                "crates/core/src/b.rs",
                "pub fn beta() {\n    x.unwrap();\n}\n",
            ),
            ("crates/core/src/a.rs", "pub fn alpha() {}\n"),
        ];
        let idx = build(&sources);
        let a1 = EffectAnalysis::compute(&idx);
        let a2 = EffectAnalysis::compute(&idx);
        assert_eq!(render_manifest(&idx, &a1), render_manifest(&idx, &a2));
        // Sorted by path regardless of input order.
        let doc = render_manifest(&idx, &a1);
        let a_pos = doc.find("alpha").unwrap();
        let b_pos = doc.find("beta").unwrap();
        assert!(a_pos < b_pos);
    }
}
