//! Word-level tokenizer over the closed synthetic vocabulary.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::grammar::Grammar;

/// Id of the beginning-of-sequence token.
pub const BOS: u32 = 0;
/// Id of the unknown-word token.
pub const UNK: u32 = 1;

/// A word-level tokenizer with a fixed vocabulary derived from a
/// [`Grammar`].
///
/// Ids `0` and `1` are reserved for `<bos>` and `<unk>`; words follow in
/// the grammar's deterministic order. The reverse index is a `BTreeMap`
/// (audit rule D003) so every observable iteration — serialization
/// included — is byte-identical across processes.
///
/// # Example
///
/// ```
/// use aptq_textgen::{Grammar, Tokenizer};
///
/// let tok = Tokenizer::from_grammar(&Grammar::standard());
/// let ids = tok.encode("the crow sleeps .");
/// assert_eq!(tok.decode(&ids), "the crow sleeps .");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tokenizer {
    words: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl Tokenizer {
    /// Builds the vocabulary from a grammar's word list.
    pub fn from_grammar(grammar: &Grammar) -> Self {
        let mut words = vec!["<bos>".to_string(), "<unk>".to_string()];
        words.extend(grammar.word_list().into_iter().map(str::to_string));
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        Tokenizer { words, index }
    }

    /// Vocabulary size (including specials).
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// Id of a word, if present.
    pub fn token_id(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// Word for an id, if in range.
    pub fn word(&self, id: u32) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Encodes whitespace-separated text; unknown words map to `<unk>`.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.split_whitespace()
            .map(|w| self.token_id(w).unwrap_or(UNK))
            .collect()
    }

    /// Encodes a slice of words (avoids string assembly in generators).
    pub fn encode_words(&self, words: &[&str]) -> Vec<u32> {
        words
            .iter()
            .map(|w| self.token_id(w).unwrap_or(UNK))
            .collect()
    }

    /// Decodes ids back to space-joined words (`<unk>` for bad ids).
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter()
            .map(|&id| self.word(id).unwrap_or("<unk>"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::from_grammar(&Grammar::standard())
    }

    #[test]
    fn specials_have_reserved_ids() {
        let t = tok();
        assert_eq!(t.token_id("<bos>"), Some(BOS));
        assert_eq!(t.token_id("<unk>"), Some(UNK));
        assert_eq!(t.word(BOS), Some("<bos>"));
    }

    #[test]
    fn roundtrip_known_words() {
        let t = tok();
        let text = "the wild crow hunts and the foxes sleep .";
        let ids = t.encode(text);
        assert!(!ids.contains(&UNK), "all words should be known");
        assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let t = tok();
        let ids = t.encode("the zzz crow");
        assert_eq!(ids[1], UNK);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn encode_words_matches_encode() {
        let t = tok();
        assert_eq!(
            t.encode_words(&["the", "saw", "cuts"]),
            t.encode("the saw cuts")
        );
    }

    #[test]
    fn vocab_is_stable_and_reasonably_sized() {
        let t = tok();
        assert_eq!(t.vocab_size(), tok().vocab_size());
        assert!(
            t.vocab_size() > 110 && t.vocab_size() < 145,
            "{}",
            t.vocab_size()
        );
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let t = tok();
        for id in 0..t.vocab_size() as u32 {
            let w = t.word(id).expect("dense ids");
            assert_eq!(t.token_id(w), Some(id));
        }
        assert_eq!(t.word(t.vocab_size() as u32), None);
    }
}
