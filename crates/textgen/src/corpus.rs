//! Corpus generators: the C4-like calibration/eval stream and the
//! WikiText-like shifted-distribution eval stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grammar::Grammar;
use crate::tokenizer::{Tokenizer, BOS};

/// Which corpus distribution to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusStyle {
    /// Web-like: diverse sentence templates, compound sentences,
    /// occasional noise interjections. Plays the role of **C4** — both the
    /// pretraining/calibration set and the in-distribution eval set.
    WebC4,
    /// Encyclopedia-like: fact-heavy, formulaic, no noise. Plays the role
    /// of **WikiText-2** — an eval distribution shifted from calibration.
    Wiki,
}

/// Grammatical number of a generated clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Number {
    Singular,
    Plural,
}

/// Streaming, seeded corpus generator.
///
/// Sentences are drawn template-by-template and concatenated into
/// fixed-length token segments (each starting with `<bos>`), mirroring
/// how GPTQ/APTQ sample "128 segments of 2048 tokens" from C4.
#[derive(Debug)]
pub struct CorpusGenerator<'a> {
    grammar: &'a Grammar,
    tokenizer: &'a Tokenizer,
    style: CorpusStyle,
    rng: StdRng,
    buffer: Vec<u32>,
}

impl<'a> CorpusGenerator<'a> {
    /// Creates a generator for the given style and seed.
    pub fn new(
        grammar: &'a Grammar,
        tokenizer: &'a Tokenizer,
        style: CorpusStyle,
        seed: u64,
    ) -> Self {
        CorpusGenerator {
            grammar,
            tokenizer,
            style,
            rng: StdRng::seed_from_u64(seed),
            buffer: Vec::new(),
        }
    }

    /// Produces one segment of exactly `len` tokens (starting with
    /// `<bos>`).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn segment(&mut self, len: usize) -> Vec<u32> {
        assert!(len > 0, "segment length must be positive");
        let mut out = Vec::with_capacity(len);
        out.push(BOS);
        while out.len() < len {
            if self.buffer.is_empty() {
                let words = self.sentence_words();
                self.buffer = self.tokenizer.encode_words(&words);
            }
            let take = (len - out.len()).min(self.buffer.len());
            out.extend(self.buffer.drain(..take));
        }
        out
    }

    /// Produces `n` segments of `len` tokens each.
    pub fn segments(&mut self, n: usize, len: usize) -> Vec<Vec<u32>> {
        (0..n).map(|_| self.segment(len)).collect()
    }

    /// Generates the words of one sentence according to the style mix.
    fn sentence_words(&mut self) -> Vec<&'static str> {
        match self.style {
            CorpusStyle::WebC4 => {
                let roll: f32 = self.rng.gen_range(0.0..1.0);
                if roll < 0.35 {
                    self.svo_sentence(true)
                } else if roll < 0.55 {
                    self.compound_sentence()
                } else if roll < 0.80 {
                    self.fact_sentence()
                } else if roll < 0.90 {
                    self.noisy_sentence()
                } else {
                    self.svo_sentence(false)
                }
            }
            CorpusStyle::Wiki => {
                let roll: f32 = self.rng.gen_range(0.0..1.0);
                if roll < 0.60 {
                    self.fact_sentence()
                } else {
                    self.svo_sentence(false)
                }
            }
        }
    }

    /// "the [adj] noun verb ." with category-consistent choices and
    /// number agreement.
    fn svo_sentence(&mut self, with_adj: bool) -> Vec<&'static str> {
        let (ci, ni, number) = self.pick_noun();
        let cat = &self.grammar.categories[ci];
        let noun = noun_form(self.grammar, ci, ni, number);
        let verb = {
            // Respect the noun's affordance subset.
            let allowed = &cat.nouns[ni].allowed_verbs;
            let v = &cat.verbs[allowed[self.rng.gen_range(0..allowed.len())]];
            match number {
                Number::Singular => v.singular,
                Number::Plural => v.plural,
            }
        };
        let mut words = vec!["the"];
        if with_adj {
            words.push(cat.adjectives[self.rng.gen_range(0..cat.adjectives.len())]);
        }
        words.push(noun);
        words.push(verb);
        words.push(".");
        words
    }

    /// "the noun1 verb1 and the noun2 verb2 ." — both clauses agree.
    fn compound_sentence(&mut self) -> Vec<&'static str> {
        let mut words = self.svo_sentence(false);
        words.pop(); // drop "."
        words.push("and");
        words.extend(self.svo_sentence(false));
        words
    }

    /// "the noun is attr ." / "the nouns are attr ." — fact statements.
    /// The subject noun follows the same Zipf weighting as the rest of
    /// the corpus, so facts about tail nouns (the `Rare` class, the
    /// ARC-Challenge pool) are stated an order of magnitude less often
    /// than facts about head nouns.
    fn fact_sentence(&mut self) -> Vec<&'static str> {
        let ci = self.rng.gen_range(0..self.grammar.categories.len());
        let ni = self.zipf_index(self.grammar.categories[ci].nouns.len());
        let fact = self.grammar.fact_for(ci, ni);
        let number = if self.rng.gen_bool(0.3) {
            Number::Plural
        } else {
            Number::Singular
        };
        let noun = noun_form(self.grammar, fact.category, fact.noun, number);
        let copula = match number {
            Number::Singular => "is",
            Number::Plural => "are",
        };
        vec!["the", noun, copula, fact.attribute, "."]
    }

    /// An SVO sentence with a leading web-noise interjection.
    fn noisy_sentence(&mut self) -> Vec<&'static str> {
        let noise = self.grammar.noise_words[self.rng.gen_range(0..self.grammar.noise_words.len())];
        let mut words = vec![noise];
        words.extend(self.svo_sentence(false));
        words
    }

    /// Zipf-weighted noun choice: noun `i` of a category is sampled with
    /// weight `1/(i+1)^1.3`, giving the corpus the long-tailed word
    /// statistics of real web text. Tail nouns' affordances and facts are
    /// therefore genuinely under-trained — the headroom the zero-shot
    /// suites (which sample nouns *uniformly*) probe.
    fn pick_noun(&mut self) -> (usize, usize, Number) {
        let ci = self.rng.gen_range(0..self.grammar.categories.len());
        let ni = self.zipf_index(self.grammar.categories[ci].nouns.len());
        let number = if self.rng.gen_bool(0.35) {
            Number::Plural
        } else {
            Number::Singular
        };
        (ci, ni, number)
    }

    /// Samples an index in `0..n` with Zipf(2.0) weights.
    fn zipf_index(&mut self, n: usize) -> usize {
        let total: f32 = (0..n).map(|i| 1.0 / ((i + 1) as f32).powf(2.0)).sum();
        let mut r = self.rng.gen_range(0.0..total);
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f32).powf(2.0);
            if r < w {
                return i;
            }
            r -= w;
        }
        n - 1
    }
}

fn noun_form(grammar: &Grammar, ci: usize, ni: usize, number: Number) -> &'static str {
    let n = &grammar.categories[ci].nouns[ni];
    match number {
        Number::Singular => n.singular,
        Number::Plural => n.plural,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::FactFrequency;
    use crate::tokenizer::UNK;
    use std::collections::HashSet;

    fn setup() -> (Grammar, Tokenizer) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        (g, t)
    }

    #[test]
    fn segments_have_exact_length_and_bos() {
        let (g, t) = setup();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 1);
        for len in [8, 31, 64] {
            let s = gen.segment(len);
            assert_eq!(s.len(), len);
            assert_eq!(s[0], BOS);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (g, t) = setup();
        let a = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 7).segment(64);
        let b = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 7).segment(64);
        let c = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 8).segment(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_contains_no_unk() {
        let (g, t) = setup();
        for style in [CorpusStyle::WebC4, CorpusStyle::Wiki] {
            let mut gen = CorpusGenerator::new(&g, &t, style, 3);
            let seg = gen.segment(512);
            assert!(!seg.contains(&UNK), "{style:?} produced <unk>");
        }
    }

    #[test]
    fn styles_have_different_distributions() {
        let (g, t) = setup();
        let count_word = |style: CorpusStyle, word: &str| -> usize {
            let id = t.token_id(word).unwrap();
            let mut gen = CorpusGenerator::new(&g, &t, style, 5);
            gen.segment(4000).iter().filter(|&&x| x == id).count()
        };
        // Noise words never appear in Wiki style.
        assert_eq!(count_word(CorpusStyle::Wiki, "hmm"), 0);
        assert!(count_word(CorpusStyle::WebC4, "hmm") > 0);
        // Wiki is fact-heavier: more "is"/"are".
        let wiki_is = count_word(CorpusStyle::Wiki, "is");
        let c4_is = count_word(CorpusStyle::WebC4, "is");
        assert!(wiki_is > c4_is, "wiki {wiki_is} vs c4 {c4_is}");
    }

    #[test]
    fn rare_facts_appear_less_often_than_frequent() {
        let (g, t) = setup();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::Wiki, 11);
        let seg = gen.segment(20_000);
        // Count occurrences of each fact's noun (singular form) directly
        // followed by "is".
        let is_id = t.token_id("is").unwrap();
        let mut freq_count = 0usize;
        let mut rare_count = 0usize;
        for f in &g.facts {
            let noun_id = t
                .token_id(g.categories[f.category].nouns[f.noun].singular)
                .unwrap();
            let n = seg
                .windows(2)
                .filter(|w| w[0] == noun_id && w[1] == is_id)
                .count();
            match f.frequency {
                FactFrequency::Frequent => freq_count += n,
                FactFrequency::Rare => rare_count += n,
            }
        }
        assert!(
            freq_count > 2 * rare_count,
            "frequent facts ({freq_count}) should dominate rare ({rare_count})"
        );
        assert!(rare_count > 0, "rare facts must still appear");
    }

    #[test]
    fn affordances_are_respected() {
        // A verb from one category must never follow a noun of another.
        let (g, t) = setup();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 13);
        let seg = gen.segment(8000);
        // Build noun->category and verb->category maps over token ids
        // (BTreeMap so even test scaffolding iterates deterministically).
        let mut noun_cat = std::collections::BTreeMap::new();
        let mut verb_cat = std::collections::BTreeMap::new();
        for (ci, c) in g.categories.iter().enumerate() {
            for n in &c.nouns {
                noun_cat.insert(t.token_id(n.singular).unwrap(), ci);
                noun_cat.insert(t.token_id(n.plural).unwrap(), ci);
            }
            for v in &c.verbs {
                verb_cat.insert(t.token_id(v.singular).unwrap(), ci);
                verb_cat.insert(t.token_id(v.plural).unwrap(), ci);
            }
        }
        let mut checked = 0;
        for w in seg.windows(2) {
            if let (Some(&nc), Some(&vc)) = (noun_cat.get(&w[0]), verb_cat.get(&w[1])) {
                assert_eq!(nc, vc, "affordance violation");
                checked += 1;
            }
        }
        assert!(
            checked > 50,
            "expected many noun-verb bigrams, got {checked}"
        );
    }

    #[test]
    fn per_noun_affordances_are_respected() {
        // A noun must never be followed by a same-category verb outside
        // its allowed subset.
        let (g, t) = setup();
        let mut allowed_pairs = HashSet::new();
        let mut verb_ids = HashSet::new();
        for c in &g.categories {
            for n in &c.nouns {
                for &vi in &n.allowed_verbs {
                    let v = &c.verbs[vi];
                    allowed_pairs.insert((
                        t.token_id(n.singular).unwrap(),
                        t.token_id(v.singular).unwrap(),
                    ));
                    allowed_pairs
                        .insert((t.token_id(n.plural).unwrap(), t.token_id(v.plural).unwrap()));
                }
            }
            for v in &c.verbs {
                verb_ids.insert(t.token_id(v.singular).unwrap());
                verb_ids.insert(t.token_id(v.plural).unwrap());
            }
        }
        let noun_ids: HashSet<u32> = g
            .categories
            .iter()
            .flat_map(|c| c.nouns.iter())
            .flat_map(|n| {
                [
                    t.token_id(n.singular).unwrap(),
                    t.token_id(n.plural).unwrap(),
                ]
            })
            .collect();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 23);
        let seg = gen.segment(8000);
        let mut checked = 0;
        for w in seg.windows(2) {
            if noun_ids.contains(&w[0]) && verb_ids.contains(&w[1]) {
                assert!(
                    allowed_pairs.contains(&(w[0], w[1])),
                    "corpus used a disallowed noun-verb pair"
                );
                checked += 1;
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn number_agreement_is_respected() {
        let (g, t) = setup();
        let mut sing_verbs = HashSet::new();
        let mut plur_verbs = HashSet::new();
        let mut sing_nouns = HashSet::new();
        let mut plur_nouns = HashSet::new();
        for c in &g.categories {
            for v in &c.verbs {
                sing_verbs.insert(t.token_id(v.singular).unwrap());
                plur_verbs.insert(t.token_id(v.plural).unwrap());
            }
            for n in &c.nouns {
                sing_nouns.insert(t.token_id(n.singular).unwrap());
                plur_nouns.insert(t.token_id(n.plural).unwrap());
            }
        }
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 17);
        let seg = gen.segment(8000);
        for w in seg.windows(2) {
            if sing_nouns.contains(&w[0]) && plur_verbs.contains(&w[1]) {
                panic!("singular noun followed by plural verb");
            }
            if plur_nouns.contains(&w[0]) && sing_verbs.contains(&w[1]) {
                panic!("plural noun followed by singular verb");
            }
        }
    }

    #[test]
    fn segments_batch_api() {
        let (g, t) = setup();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, 19);
        let segs = gen.segments(5, 16);
        assert_eq!(segs.len(), 5);
        assert!(segs.iter().all(|s| s.len() == 16));
        // Segments differ from one another.
        assert_ne!(segs[0], segs[1]);
    }
}
