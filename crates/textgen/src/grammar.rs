//! The synthetic language: word categories, agreement, affordances and
//! a fact table with frequent and rare facts.
//!
//! Design constraints (so the downstream experiments behave like the
//! paper's):
//!
//! 1. A small trained LM must be able to *learn* the structure well above
//!    chance: verb–category affordances, singular/plural agreement and
//!    noun→attribute facts are all local, high-frequency patterns.
//! 2. The five zero-shot suites must span a difficulty range: agreement
//!    (easiest, adjacent-token), affordance, continuation, frequent fact,
//!    rare fact (hardest — appears 1/5 as often in the corpus).

/// A noun with singular and plural surface forms and its noun-specific
/// affordances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Noun {
    /// Singular form, e.g. `"crow"`.
    pub singular: &'static str,
    /// Plural form, e.g. `"crows"`.
    pub plural: &'static str,
    /// Indices (into the category's verb list) of the verbs this noun
    /// can take. Each noun allows only a *subset* of its category's
    /// verbs, so affordance questions probe noun-specific corpus
    /// knowledge rather than mere topic matching — mirroring how PIQA
    /// requires object-level physical knowledge.
    pub allowed_verbs: Vec<usize>,
}

/// A verb with third-person singular and plural forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verb {
    /// Singular form, e.g. `"flies"`.
    pub singular: &'static str,
    /// Plural form, e.g. `"fly"`.
    pub plural: &'static str,
}

/// A semantic category binding nouns to the verbs and adjectives that can
/// accompany them (the language's "affordances").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Category {
    /// Category name (report label only).
    pub name: &'static str,
    /// Member nouns.
    pub nouns: Vec<Noun>,
    /// Verbs compatible with this category.
    pub verbs: Vec<Verb>,
    /// Adjectives compatible with this category.
    pub adjectives: Vec<&'static str>,
}

/// How often a fact appears in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactFrequency {
    /// Stated often — the basis of the ARC-Easy-like suite.
    Frequent,
    /// Stated rarely (≈1/5 the rate) — the ARC-Challenge-like suite.
    Rare,
}

/// One noun→attribute fact, e.g. "the crow is black".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Category index of the subject noun.
    pub category: usize,
    /// Noun index within the category.
    pub noun: usize,
    /// Attribute word, e.g. `"black"`.
    pub attribute: &'static str,
    /// Corpus frequency class.
    pub frequency: FactFrequency,
}

/// The complete synthetic language definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Grammar {
    /// Semantic categories.
    pub categories: Vec<Category>,
    /// All attribute words facts can use.
    pub attributes: Vec<&'static str>,
    /// The fact table (one fact per noun).
    pub facts: Vec<Fact>,
    /// Filler "web noise" words used only by the C4-style corpus.
    pub noise_words: Vec<&'static str>,
}

/// Function words shared by all styles, in fixed order.
pub const FUNCTION_WORDS: [&str; 6] = ["the", "a", "and", "is", "are", "."];

impl Grammar {
    /// The standard language used by every experiment in this repo:
    /// 4 categories × 8 nouns, 4 verbs and 3 adjectives per category,
    /// 12 attributes, one fact per noun (half frequent, half rare).
    pub fn standard() -> Self {
        let categories = vec![
            Category {
                name: "animal",
                nouns: nouns(&[
                    ("crow", "crows"),
                    ("fox", "foxes"),
                    ("horse", "horses"),
                    ("otter", "otters"),
                    ("wolf", "wolves"),
                    ("heron", "herons"),
                    ("lynx", "lynxes"),
                    ("toad", "toads"),
                ]),
                verbs: verbs(&[
                    ("runs", "run"),
                    ("sleeps", "sleep"),
                    ("hunts", "hunt"),
                    ("swims", "swim"),
                ]),
                adjectives: vec!["wild", "swift", "hungry"],
            },
            Category {
                name: "tool",
                nouns: nouns(&[
                    ("hammer", "hammers"),
                    ("saw", "saws"),
                    ("drill", "drills"),
                    ("chisel", "chisels"),
                    ("wrench", "wrenches"),
                    ("plane", "planes"),
                    ("rasp", "rasps"),
                    ("clamp", "clamps"),
                ]),
                verbs: verbs(&[
                    ("cuts", "cut"),
                    ("shapes", "shape"),
                    ("fixes", "fix"),
                    ("grinds", "grind"),
                ]),
                adjectives: vec!["sharp", "heavy", "rusty"],
            },
            Category {
                name: "plant",
                nouns: nouns(&[
                    ("oak", "oaks"),
                    ("fern", "ferns"),
                    ("rose", "roses"),
                    ("moss", "mosses"),
                    ("pine", "pines"),
                    ("reed", "reeds"),
                    ("birch", "birches"),
                    ("ivy", "ivies"),
                ]),
                verbs: verbs(&[
                    ("grows", "grow"),
                    ("blooms", "bloom"),
                    ("wilts", "wilt"),
                    ("spreads", "spread"),
                ]),
                adjectives: vec!["green", "tall", "fragrant"],
            },
            Category {
                name: "vehicle",
                nouns: nouns(&[
                    ("truck", "trucks"),
                    ("barge", "barges"),
                    ("tram", "trams"),
                    ("sled", "sleds"),
                    ("ferry", "ferries"),
                    ("wagon", "wagons"),
                    ("kayak", "kayaks"),
                    ("scooter", "scooters"),
                ]),
                verbs: verbs(&[
                    ("rolls", "roll"),
                    ("hauls", "haul"),
                    ("stops", "stop"),
                    ("turns", "turn"),
                ]),
                adjectives: vec!["slow", "loaded", "noisy"],
            },
        ];

        let attributes = vec![
            "black", "silver", "ancient", "small", "bright", "quiet", "northern", "scarce", "pale",
            "sturdy", "crooked", "smooth",
        ];

        // One fact per noun. Attribute assignment is a fixed permutation
        // (stride 5 is coprime with 12) so no category maps uniformly onto
        // one attribute and same-category nouns carry *different*
        // attributes — the ARC-style distractors are drawn from exactly
        // those, keeping the tasks non-trivial. The first four nouns of
        // each category carry frequent facts, the last four rare facts.
        let mut facts = Vec::new();
        for (ci, cat) in categories.iter().enumerate() {
            for ni in 0..cat.nouns.len() {
                let attribute = attributes[(ci * 3 + ni * 5) % attributes.len()];
                let frequency = if ni < 4 {
                    FactFrequency::Frequent
                } else {
                    FactFrequency::Rare
                };
                facts.push(Fact {
                    category: ci,
                    noun: ni,
                    attribute,
                    frequency,
                });
            }
        }

        let noise_words = vec!["hmm", "oh", "well", "indeed", "also", "then"];

        Grammar {
            categories,
            attributes,
            facts,
            noise_words,
        }
    }

    /// Looks up the fact for a noun.
    ///
    /// # Panics
    ///
    /// Panics if the pair does not exist (every standard-grammar noun has
    /// exactly one fact).
    pub fn fact_for(&self, category: usize, noun: usize) -> &Fact {
        self.facts
            .iter()
            .find(|f| f.category == category && f.noun == noun)
            .expect("every noun has a fact")
    }

    /// All surface words of the language, deduplicated, in deterministic
    /// order: function words, nouns (both forms), verbs (both forms),
    /// adjectives, attributes, noise words.
    pub fn word_list(&self) -> Vec<&'static str> {
        let mut words: Vec<&'static str> = Vec::new();
        let push = |w: &'static str, words: &mut Vec<&'static str>| {
            if !words.contains(&w) {
                words.push(w);
            }
        };
        for w in FUNCTION_WORDS {
            push(w, &mut words);
        }
        for cat in &self.categories {
            for n in &cat.nouns {
                push(n.singular, &mut words);
                push(n.plural, &mut words);
            }
            for v in &cat.verbs {
                push(v.singular, &mut words);
                push(v.plural, &mut words);
            }
            for a in &cat.adjectives {
                push(a, &mut words);
            }
        }
        for a in &self.attributes {
            push(a, &mut words);
        }
        for w in &self.noise_words {
            push(w, &mut words);
        }
        words
    }

    /// Total noun count across categories.
    pub fn n_nouns(&self) -> usize {
        self.categories.iter().map(|c| c.nouns.len()).sum()
    }

    /// Verb indices of a category that a noun does *not* afford.
    pub fn disallowed_verbs(&self, category: usize, noun: usize) -> Vec<usize> {
        let cat = &self.categories[category];
        let allowed = &cat.nouns[noun].allowed_verbs;
        (0..cat.verbs.len())
            .filter(|v| !allowed.contains(v))
            .collect()
    }
}

fn nouns(pairs: &[(&'static str, &'static str)]) -> Vec<Noun> {
    // Noun `ni` affords verbs {ni, ni+1} mod 4 of its category — a fixed,
    // learnable assignment where every verb is allowed by exactly half
    // the nouns, so "verb seen with this category" never suffices.
    pairs
        .iter()
        .enumerate()
        .map(|(ni, &(s, p))| Noun {
            singular: s,
            plural: p,
            allowed_verbs: vec![ni % 4, (ni + 1) % 4],
        })
        .collect()
}

fn verbs(pairs: &[(&'static str, &'static str)]) -> Vec<Verb> {
    pairs
        .iter()
        .map(|&(s, p)| Verb {
            singular: s,
            plural: p,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_grammar_shape() {
        let g = Grammar::standard();
        assert_eq!(g.categories.len(), 4);
        for c in &g.categories {
            assert_eq!(c.nouns.len(), 8);
            assert_eq!(c.verbs.len(), 4);
            assert_eq!(c.adjectives.len(), 3);
        }
        assert_eq!(g.n_nouns(), 32);
        assert_eq!(g.facts.len(), 32);
    }

    #[test]
    fn every_noun_has_exactly_one_fact() {
        let g = Grammar::standard();
        for (ci, cat) in g.categories.iter().enumerate() {
            for ni in 0..cat.nouns.len() {
                let matching: Vec<_> = g
                    .facts
                    .iter()
                    .filter(|f| f.category == ci && f.noun == ni)
                    .collect();
                assert_eq!(matching.len(), 1, "noun ({ci},{ni})");
            }
        }
    }

    #[test]
    fn facts_split_between_frequent_and_rare() {
        let g = Grammar::standard();
        let freq = g
            .facts
            .iter()
            .filter(|f| f.frequency == FactFrequency::Frequent)
            .count();
        let rare = g
            .facts
            .iter()
            .filter(|f| f.frequency == FactFrequency::Rare)
            .count();
        assert_eq!(freq, 16);
        assert_eq!(rare, 16);
    }

    #[test]
    fn facts_use_diverse_attributes_within_category() {
        // If a whole category mapped to one attribute the ARC tasks would
        // be solvable without reading the noun.
        let g = Grammar::standard();
        for ci in 0..g.categories.len() {
            let attrs: HashSet<&str> = g
                .facts
                .iter()
                .filter(|f| f.category == ci)
                .map(|f| f.attribute)
                .collect();
            assert!(
                attrs.len() >= 3,
                "category {ci} facts too uniform: {attrs:?}"
            );
        }
    }

    #[test]
    fn word_list_is_unique_and_stable() {
        let g = Grammar::standard();
        let words = g.word_list();
        let set: HashSet<_> = words.iter().collect();
        assert_eq!(set.len(), words.len(), "duplicate surface words");
        // Deterministic order.
        assert_eq!(words, Grammar::standard().word_list());
        assert_eq!(words[0], "the");
        // Plausible total: 6 function + 64 noun forms + ≤32 verb forms +
        // 12 adjectives + 12 attributes + 6 noise (minus any collisions).
        assert!(words.len() > 110 && words.len() < 140, "{}", words.len());
    }

    #[test]
    fn verb_surface_forms_do_not_collide_across_number() {
        let g = Grammar::standard();
        for c in &g.categories {
            for v in &c.verbs {
                assert_ne!(v.singular, v.plural);
            }
            for n in &c.nouns {
                assert_ne!(n.singular, n.plural);
            }
        }
    }

    #[test]
    fn affordance_subsets_are_proper_and_balanced() {
        let g = Grammar::standard();
        for (ci, cat) in g.categories.iter().enumerate() {
            let mut verb_usage = vec![0usize; cat.verbs.len()];
            for (ni, n) in cat.nouns.iter().enumerate() {
                assert_eq!(n.allowed_verbs.len(), 2, "({ci},{ni})");
                assert!(n.allowed_verbs.iter().all(|&v| v < cat.verbs.len()));
                assert_eq!(g.disallowed_verbs(ci, ni).len(), cat.verbs.len() - 2);
                for &v in &n.allowed_verbs {
                    verb_usage[v] += 1;
                }
            }
            // Every verb is allowed by some nouns and disallowed by others.
            assert!(verb_usage.iter().all(|&u| u > 0 && u < cat.nouns.len()));
        }
    }

    #[test]
    fn fact_lookup_works() {
        let g = Grammar::standard();
        let f = g.fact_for(0, 0);
        assert_eq!(f.category, 0);
        assert_eq!(f.noun, 0);
        assert_eq!(f.frequency, FactFrequency::Frequent);
        let f = g.fact_for(3, 5);
        assert_eq!(f.frequency, FactFrequency::Rare);
        let f = g.fact_for(2, 3);
        assert_eq!(f.frequency, FactFrequency::Frequent);
    }
}
