//! Zero-shot task suites standing in for the paper's five benchmarks.
//!
//! Each suite is a set of multiple-choice items `(prompt, choices,
//! correct)`, scored — exactly like the lm-eval-harness the paper uses —
//! by the length-normalized log-likelihood of each choice continuation
//! given the prompt.
//!
//! | Suite | Paper counterpart | Skill probed |
//! |---|---|---|
//! | [`ZeroShotTask::Affordance`] | PIQA | which action fits an object |
//! | [`ZeroShotTask::Continuation`] | HellaSwag | plausible sentence ending |
//! | [`ZeroShotTask::FactEasy`] | ARC-Easy | frequently stated facts |
//! | [`ZeroShotTask::FactChallenge`] | ARC-Challenge | rarely stated facts |
//! | [`ZeroShotTask::Agreement`] | WinoGrande | number agreement/resolution |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::grammar::{FactFrequency, Grammar};
use crate::tokenizer::{Tokenizer, BOS};

/// The five zero-shot suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroShotTask {
    /// PIQA-like: pick the verb phrase compatible with the object.
    Affordance,
    /// HellaSwag-like: pick the grammatical, topic-consistent ending.
    Continuation,
    /// ARC-Easy-like: complete a frequently stated fact.
    FactEasy,
    /// ARC-Challenge-like: complete a rarely stated fact.
    FactChallenge,
    /// WinoGrande-like: resolve number agreement.
    Agreement,
}

impl ZeroShotTask {
    /// All suites in the paper's column order.
    pub const ALL: [ZeroShotTask; 5] = [
        ZeroShotTask::Affordance,
        ZeroShotTask::Continuation,
        ZeroShotTask::FactEasy,
        ZeroShotTask::FactChallenge,
        ZeroShotTask::Agreement,
    ];

    /// The paper benchmark this suite stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            ZeroShotTask::Affordance => "PIQA",
            ZeroShotTask::Continuation => "Hellaswag",
            ZeroShotTask::FactEasy => "Arc-E",
            ZeroShotTask::FactChallenge => "Arc-C",
            ZeroShotTask::Agreement => "WinoGrande",
        }
    }
}

impl std::fmt::Display for ZeroShotTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskItem {
    /// Prompt token ids (starts with `<bos>`).
    pub prompt: Vec<u32>,
    /// Candidate continuations (token ids).
    pub choices: Vec<Vec<u32>>,
    /// Index of the correct choice.
    pub correct: usize,
}

/// A full suite of items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSuite {
    /// Which benchmark this is.
    pub task: ZeroShotTask,
    /// The items.
    pub items: Vec<TaskItem>,
}

impl TaskSuite {
    /// Generates `n` seeded items for the given suite.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(
        task: ZeroShotTask,
        grammar: &Grammar,
        tokenizer: &Tokenizer,
        n: usize,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "suite must contain at least one item");
        let mut rng = StdRng::seed_from_u64(seed ^ (task as u64).wrapping_mul(0x9E37));
        let items = (0..n)
            .map(|_| match task {
                ZeroShotTask::Affordance => affordance_item(grammar, tokenizer, &mut rng),
                ZeroShotTask::Continuation => continuation_item(grammar, tokenizer, &mut rng),
                ZeroShotTask::FactEasy => {
                    fact_item(grammar, tokenizer, FactFrequency::Frequent, &mut rng)
                }
                ZeroShotTask::FactChallenge => {
                    fact_item(grammar, tokenizer, FactFrequency::Rare, &mut rng)
                }
                ZeroShotTask::Agreement => agreement_item(grammar, tokenizer, &mut rng),
            })
            .collect();
        TaskSuite { task, items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Chance accuracy (uniform over choices of the first item).
    pub fn chance_accuracy(&self) -> f32 {
        1.0 / self.items[0].choices.len() as f32
    }
}

fn encode_prompt(tokenizer: &Tokenizer, words: &[&str]) -> Vec<u32> {
    let mut ids = vec![BOS];
    ids.extend(tokenizer.encode_words(words));
    ids
}

/// PIQA-like: prompt "the NOUN", choices = 4 singular verbs; only one is
/// an affordance of *this specific noun*. Two distractors are
/// same-category verbs the noun does not take (solvable only from
/// noun-level corpus statistics), one is from another category.
fn affordance_item(grammar: &Grammar, tokenizer: &Tokenizer, rng: &mut StdRng) -> TaskItem {
    let n_cat = grammar.categories.len();
    let ci = rng.gen_range(0..n_cat);
    let cat = &grammar.categories[ci];
    let ni = rng.gen_range(0..cat.nouns.len());
    let prompt = encode_prompt(tokenizer, &["the", cat.nouns[ni].singular]);

    let allowed = &cat.nouns[ni].allowed_verbs;
    let correct_verb = cat.verbs[allowed[rng.gen_range(0..allowed.len())]].singular;
    let mut choices_words: Vec<&str> = Vec::with_capacity(4);
    choices_words.push(correct_verb);
    // Hard distractors: the same category's disallowed verbs.
    let disallowed = grammar.disallowed_verbs(ci, ni);
    for &v in disallowed.iter().take(2) {
        choices_words.push(cat.verbs[v].singular);
    }
    // Easy distractor: another category's verb.
    let oc = (ci + 1 + rng.gen_range(0..n_cat - 1)) % n_cat;
    let v = &grammar.categories[oc].verbs[rng.gen_range(0..grammar.categories[oc].verbs.len())];
    choices_words.push(v.singular);
    finish_choices(tokenizer, prompt, choices_words, rng)
}

/// HellaSwag-like: prompt "the NOUN1 VERB1 and the", choices are endings
/// "NOUN2 VERB2" — correct one keeps agreement and affordance; the
/// distractors break the affordance (mismatched noun/verb category) or
/// agreement.
fn continuation_item(grammar: &Grammar, tokenizer: &Tokenizer, rng: &mut StdRng) -> TaskItem {
    let n_cat = grammar.categories.len();
    let c1 = rng.gen_range(0..n_cat);
    let cat1 = &grammar.categories[c1];
    let n1 = rng.gen_range(0..cat1.nouns.len());
    let v1 = rng.gen_range(0..cat1.verbs.len());
    let prompt = encode_prompt(
        tokenizer,
        &[
            "the",
            cat1.nouns[n1].singular,
            cat1.verbs[v1].singular,
            "and",
            "the",
        ],
    );

    // Correct ending: noun + one of *its own* affordance verbs (singular).
    let c2 = rng.gen_range(0..n_cat);
    let cat2 = &grammar.categories[c2];
    let n2 = rng.gen_range(0..cat2.nouns.len());
    let allowed2 = &cat2.nouns[n2].allowed_verbs;
    let good_vi = allowed2[rng.gen_range(0..allowed2.len())];
    let good_verb = cat2.verbs[good_vi].singular;
    let correct: Vec<&str> = vec![cat2.nouns[n2].singular, good_verb];

    // Distractor A: same noun, same-category verb the noun does not
    // afford (the hard one).
    let disallowed2 = grammar.disallowed_verbs(c2, n2);
    let bad_verb = cat2.verbs[disallowed2[rng.gen_range(0..disallowed2.len())]].singular;
    let distractor_a: Vec<&str> = vec![cat2.nouns[n2].singular, bad_verb];

    // Distractor B: same noun, affordance kept but agreement broken.
    let plural_verb = cat2.verbs[good_vi].plural;
    let distractor_b: Vec<&str> = vec![cat2.nouns[n2].singular, plural_verb];

    // Distractor C: word-order violation (verb before noun).
    let distractor_c: Vec<&str> = vec![good_verb, cat2.nouns[n2].singular];

    let mut all = vec![correct, distractor_a, distractor_b, distractor_c];
    let correct_idx = shuffle_tagged(&mut all, rng);
    TaskItem {
        prompt,
        choices: all.iter().map(|w| tokenizer.encode_words(w)).collect(),
        correct: correct_idx,
    }
}

/// ARC-like: prompt "the NOUN is", choices are 4 attributes; the correct
/// one is the noun's fact attribute.
fn fact_item(
    grammar: &Grammar,
    tokenizer: &Tokenizer,
    freq: FactFrequency,
    rng: &mut StdRng,
) -> TaskItem {
    let candidates: Vec<usize> = grammar
        .facts
        .iter()
        .enumerate()
        .filter(|(_, f)| f.frequency == freq)
        .map(|(i, _)| i)
        .collect();
    let fact = &grammar.facts[candidates[rng.gen_range(0..candidates.len())]];
    let noun = grammar.categories[fact.category].nouns[fact.noun].singular;
    let prompt = encode_prompt(tokenizer, &["the", noun, "is"]);

    let mut choices_words = vec![fact.attribute];
    // Distractors are attributes carried by *other nouns of the same
    // category* — semantically adjacent in the corpus, so the item is
    // only solvable by knowing the specific noun's fact, not the
    // category's attribute neighbourhood.
    let mut pool: Vec<&str> = grammar
        .facts
        .iter()
        .filter(|f| f.category == fact.category && f.attribute != fact.attribute)
        .map(|f| f.attribute)
        .collect();
    pool.dedup();
    pool.sort_unstable();
    pool.dedup();
    shuffle(&mut pool, rng);
    choices_words.extend(pool.iter().copied().take(3));
    // Degenerate grammars (few same-category attributes) fall back to the
    // global pool.
    if choices_words.len() < 4 {
        let mut global: Vec<&str> = grammar
            .attributes
            .iter()
            .copied()
            .filter(|a| !choices_words.contains(a))
            .collect();
        shuffle(&mut global, rng);
        choices_words.extend(global.into_iter().take(4 - choices_words.len()));
    }
    finish_choices(tokenizer, prompt, choices_words, rng)
}

/// WinoGrande-like: prompt "the NOUNS(plural)" (or singular), choices are
/// the same verb in both number forms plus a wrong-category pair.
fn agreement_item(grammar: &Grammar, tokenizer: &Tokenizer, rng: &mut StdRng) -> TaskItem {
    let n_cat = grammar.categories.len();
    let ci = rng.gen_range(0..n_cat);
    let cat = &grammar.categories[ci];
    let ni = rng.gen_range(0..cat.nouns.len());
    let plural = rng.gen_bool(0.5);
    let noun = if plural {
        cat.nouns[ni].plural
    } else {
        cat.nouns[ni].singular
    };
    let prompt = encode_prompt(tokenizer, &["the", noun]);

    let vi = rng.gen_range(0..cat.verbs.len());
    let (correct_verb, wrong_number) = if plural {
        (cat.verbs[vi].plural, cat.verbs[vi].singular)
    } else {
        (cat.verbs[vi].singular, cat.verbs[vi].plural)
    };
    let choices_words = vec![correct_verb, wrong_number];
    finish_choices(tokenizer, prompt, choices_words, rng)
}

/// Shuffles choice word-lists (first entry is the correct one) and
/// returns the item.
fn finish_choices(
    tokenizer: &Tokenizer,
    prompt: Vec<u32>,
    choices_words: Vec<&str>,
    rng: &mut StdRng,
) -> TaskItem {
    let mut tagged: Vec<Vec<&str>> = choices_words.into_iter().map(|w| vec![w]).collect();
    let correct = shuffle_tagged(&mut tagged, rng);
    TaskItem {
        prompt,
        choices: tagged.iter().map(|w| tokenizer.encode_words(w)).collect(),
        correct,
    }
}

/// Fisher–Yates shuffle.
fn shuffle<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Shuffles a list whose first element is "correct"; returns the correct
/// element's post-shuffle index.
fn shuffle_tagged<T>(xs: &mut Vec<T>, rng: &mut StdRng) -> usize {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, rng);
    let mut slots: Vec<Option<T>> = xs.drain(..).map(Some).collect();
    let mut correct = 0;
    let mut out = Vec::with_capacity(n);
    for (new_pos, &old_pos) in order.iter().enumerate() {
        if old_pos == 0 {
            correct = new_pos;
        }
        out.push(slots[old_pos].take().expect("each slot moved once"));
    }
    *xs = out;
    correct
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Grammar, Tokenizer) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        (g, t)
    }

    #[test]
    fn all_suites_generate() {
        let (g, t) = setup();
        for task in ZeroShotTask::ALL {
            let suite = TaskSuite::generate(task, &g, &t, 50, 1);
            assert_eq!(suite.len(), 50);
            for item in &suite.items {
                assert!(item.correct < item.choices.len());
                assert!(!item.prompt.is_empty());
                assert_eq!(item.prompt[0], BOS);
                assert!(item.choices.iter().all(|c| !c.is_empty()));
            }
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let (g, t) = setup();
        let a = TaskSuite::generate(ZeroShotTask::FactEasy, &g, &t, 20, 5);
        let b = TaskSuite::generate(ZeroShotTask::FactEasy, &g, &t, 20, 5);
        assert_eq!(a, b);
        let c = TaskSuite::generate(ZeroShotTask::FactEasy, &g, &t, 20, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn correct_index_is_not_constant() {
        // The shuffle must distribute the correct answer across positions,
        // otherwise a position-biased model would score artificially well.
        let (g, t) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Affordance, &g, &t, 100, 2);
        let positions: std::collections::HashSet<usize> =
            suite.items.iter().map(|i| i.correct).collect();
        assert!(positions.len() >= 3, "correct index stuck at {positions:?}");
    }

    #[test]
    fn affordance_items_have_four_unique_choices() {
        let (g, t) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Affordance, &g, &t, 50, 3);
        for item in &suite.items {
            assert_eq!(item.choices.len(), 4);
            let set: std::collections::HashSet<_> = item.choices.iter().collect();
            assert_eq!(set.len(), 4, "duplicate choices");
        }
    }

    #[test]
    fn agreement_items_are_binary() {
        let (g, t) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Agreement, &g, &t, 30, 4);
        for item in &suite.items {
            assert_eq!(item.choices.len(), 2);
        }
        assert_eq!(suite.chance_accuracy(), 0.5);
    }

    #[test]
    fn fact_items_use_the_fact_table() {
        let (g, t) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::FactEasy, &g, &t, 40, 7);
        for item in &suite.items {
            // prompt = <bos> the NOUN is
            assert_eq!(item.prompt.len(), 4);
            let noun_word = t.word(item.prompt[2]).unwrap().to_string();
            // Find that noun's fact and check the correct choice matches.
            let mut found = false;
            for f in &g.facts {
                let n = &g.categories[f.category].nouns[f.noun];
                if n.singular == noun_word {
                    let attr_id = t.token_id(f.attribute).unwrap();
                    assert_eq!(item.choices[item.correct], vec![attr_id]);
                    assert_eq!(f.frequency, FactFrequency::Frequent);
                    found = true;
                }
            }
            assert!(found, "unknown noun {noun_word}");
        }
    }

    #[test]
    fn continuation_items_have_distinct_endings() {
        let (g, t) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Continuation, &g, &t, 40, 8);
        for item in &suite.items {
            assert_eq!(item.choices.len(), 4);
            assert!(item.choices.iter().all(|c| c.len() == 2));
        }
    }

    #[test]
    fn paper_names_match_table2() {
        assert_eq!(ZeroShotTask::Affordance.paper_name(), "PIQA");
        assert_eq!(ZeroShotTask::FactChallenge.paper_name(), "Arc-C");
        assert_eq!(ZeroShotTask::ALL.len(), 5);
    }
}
