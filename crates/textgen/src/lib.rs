//! # aptq-textgen
//!
//! Synthetic language substrate standing in for the paper's datasets.
//!
//! The APTQ paper calibrates on C4, evaluates perplexity on C4 and
//! WikiText-2, and measures zero-shot accuracy on five lm-eval-harness
//! suites (PIQA, HellaSwag, ARC-E, ARC-C, WinoGrande). None of those
//! assets are available here, so this crate generates a small synthetic
//! language with learnable structure that plays the same roles:
//!
//! - [`grammar::Grammar`]: word categories, number agreement,
//!   verb–category affordances, and a fact table with *frequent* and
//!   *rare* facts;
//! - [`corpus`]: two corpus styles — [`corpus::CorpusStyle::WebC4`]
//!   (diverse templates, noise tokens) and
//!   [`corpus::CorpusStyle::Wiki`] (formulaic, fact-heavy) — matching the
//!   calibration-distribution vs shifted-distribution relationship of
//!   C4 vs WikiText-2;
//! - [`tokenizer::Tokenizer`]: a word-level tokenizer over the closed
//!   vocabulary;
//! - [`tasks`]: five multiple-choice suites whose answers are derivable
//!   from corpus statistics (affordances → PIQA, continuations →
//!   HellaSwag, frequent facts → ARC-E, rare facts → ARC-C, number
//!   agreement → WinoGrande), scored by length-normalized likelihood
//!   exactly like the harness.
//!
//! Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use aptq_textgen::{Grammar, Tokenizer, corpus::{CorpusGenerator, CorpusStyle}};
//!
//! let grammar = Grammar::standard();
//! let tok = Tokenizer::from_grammar(&grammar);
//! let mut gen = CorpusGenerator::new(&grammar, &tok, CorpusStyle::WebC4, 1);
//! let seg = gen.segment(32);
//! assert_eq!(seg.len(), 32);
//! ```

pub mod corpus;
pub mod grammar;
pub mod tasks;
pub mod tokenizer;

pub use grammar::Grammar;
pub use tasks::{TaskItem, TaskSuite, ZeroShotTask};
pub use tokenizer::Tokenizer;
