//! Property-based tests for the synthetic language substrate.

use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq_textgen::tokenizer::{BOS, UNK};
use aptq_textgen::{Grammar, TaskSuite, Tokenizer, ZeroShotTask};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segments_always_well_formed(seed in 0u64..10_000, len in 2usize..200) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::WebC4, seed);
        let seg = gen.segment(len);
        prop_assert_eq!(seg.len(), len);
        prop_assert_eq!(seg[0], BOS);
        prop_assert!(seg.iter().all(|&id| (id as usize) < t.vocab_size()));
        prop_assert!(!seg.contains(&UNK));
    }

    #[test]
    fn wiki_segments_never_contain_noise(seed in 0u64..2_000) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        let noise_ids: Vec<u32> =
            g.noise_words.iter().map(|w| t.token_id(w).unwrap()).collect();
        let mut gen = CorpusGenerator::new(&g, &t, CorpusStyle::Wiki, seed);
        let seg = gen.segment(256);
        prop_assert!(seg.iter().all(|id| !noise_ids.contains(id)));
    }

    #[test]
    fn tokenizer_roundtrips_any_known_word_sequence(
        indices in proptest::collection::vec(0usize..90, 1..30),
    ) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        let words = g.word_list();
        let picked: Vec<&str> = indices.iter().map(|&i| words[i % words.len()]).collect();
        let text = picked.join(" ");
        let ids = t.encode(&text);
        prop_assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn task_items_are_internally_consistent(
        seed in 0u64..5_000,
        n in 1usize..30,
        task_idx in 0usize..5,
    ) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        let task = ZeroShotTask::ALL[task_idx];
        let suite = TaskSuite::generate(task, &g, &t, n, seed);
        prop_assert_eq!(suite.len(), n);
        for item in &suite.items {
            prop_assert!(item.correct < item.choices.len());
            prop_assert_eq!(item.prompt[0], BOS);
            prop_assert!(!item.choices[item.correct].is_empty());
            // No choice may equal another (items must be discriminable);
            // the correct answer must be among the choices by construction.
            for (i, a) in item.choices.iter().enumerate() {
                for b in item.choices.iter().skip(i + 1) {
                    prop_assert_ne!(a, b, "duplicate choices in {:?}", task);
                }
            }
        }
    }

    #[test]
    fn fact_suite_answers_come_from_fact_table(seed in 0u64..2_000) {
        let g = Grammar::standard();
        let t = Tokenizer::from_grammar(&g);
        let attr_ids: Vec<u32> =
            g.attributes.iter().map(|a| t.token_id(a).unwrap()).collect();
        for task in [ZeroShotTask::FactEasy, ZeroShotTask::FactChallenge] {
            let suite = TaskSuite::generate(task, &g, &t, 10, seed);
            for item in &suite.items {
                for choice in &item.choices {
                    prop_assert_eq!(choice.len(), 1);
                    prop_assert!(attr_ids.contains(&choice[0]));
                }
            }
        }
    }
}
