//! Cross-run determinism for the text substrate (audit rule D003).
//!
//! The tokenizer's reverse index and every corpus path must be free of
//! iteration-order dependence: two independent constructions — which is
//! exactly what two separate *process* runs perform, since nothing here
//! reads ambient state — must produce byte-identical output. A
//! `HashMap` in any observable path breaks this: its per-instance
//! `RandomState` seed reorders iteration (and hence serialization) on
//! every construction, which is why [`aptq_textgen::Tokenizer`] keys its
//! index with a `BTreeMap`.

use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq_textgen::{Grammar, Tokenizer};

/// One full independent construction: grammar → tokenizer → corpus
/// segments, everything serialized/flattened to bytes.
fn one_run() -> (String, Vec<u8>) {
    let grammar = Grammar::standard();
    let tokenizer = Tokenizer::from_grammar(&grammar);
    let tok_json = serde_json::to_string(&tokenizer).expect("tokenizer serializes");

    let mut bytes = Vec::new();
    for (style, seed) in [
        (CorpusStyle::WebC4, 7u64),
        (CorpusStyle::Wiki, 7),
        (CorpusStyle::WebC4, 1009),
    ] {
        let mut gen = CorpusGenerator::new(&grammar, &tokenizer, style, seed);
        for seg in gen.segments(4, 96) {
            bytes.extend(seg.iter().flat_map(|id| id.to_le_bytes()));
        }
    }
    (tok_json, bytes)
}

#[test]
fn tokenizer_and_corpus_are_byte_identical_across_runs() {
    let (tok_a, corpus_a) = one_run();
    let (tok_b, corpus_b) = one_run();
    assert_eq!(
        tok_a, tok_b,
        "tokenizer serialization must not depend on construction order"
    );
    assert_eq!(corpus_a, corpus_b, "corpus bytes must be reproducible");
}

#[test]
fn tokenizer_serialization_iterates_index_in_sorted_order() {
    let tokenizer = Tokenizer::from_grammar(&Grammar::standard());
    let json = serde_json::to_string(&tokenizer).expect("tokenizer serializes");
    // The serialized index must list its keys sorted — the observable
    // fingerprint of the BTreeMap conversion. Extract the key sequence
    // from the "index" object.
    // The vendored serde stub serializes maps as `[["key",id],...]`
    // pair arrays, so each key is the quoted string opening a pair.
    let at = json.find("\"index\":").expect("index field present");
    let pairs = &json[at + "\"index\":".len()..];
    let mut keys: Vec<&str> = Vec::new();
    let mut rest = pairs;
    while let Some(p) = rest.find("[\"") {
        let tail = &rest[p + 2..];
        let Some(end) = tail.find('"') else { break };
        keys.push(&tail[..end]);
        rest = &tail[end + 1..];
    }
    assert!(keys.len() > 100, "expected the full vocab, got {keys:?}");
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "index keys must serialize in sorted order");
}

#[test]
fn tokenizer_roundtrips_through_json() {
    let tokenizer = Tokenizer::from_grammar(&Grammar::standard());
    let json = serde_json::to_string(&tokenizer).expect("serialize");
    let back: Tokenizer = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(tokenizer, back);
}
