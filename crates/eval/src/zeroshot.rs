//! Zero-shot multiple-choice evaluation — the Table 2 metric.
//!
//! Items are scored exactly like the EleutherAI lm-eval-harness the
//! paper uses: each choice continuation's log-likelihood given the
//! prompt, normalized by continuation length; the highest-scoring choice
//! is the prediction.

use aptq_lm::{LinearOp, ModelOf};
use aptq_tensor::activation::log_sum_exp;
use aptq_textgen::{TaskItem, TaskSuite};
use serde::{Deserialize, Serialize};

use crate::EvalError;

/// Result of one suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Paper-facing suite name (`PIQA`, `Arc-E`, …).
    pub name: String,
    /// Fraction of items answered correctly.
    pub accuracy: f32,
    /// Number of items evaluated.
    pub n_items: usize,
}

/// Length-normalized log-likelihood of `choice` as a continuation of
/// `prompt`.
///
/// # Errors
///
/// Propagates inference errors.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn choice_loglik<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    choice: &[u32],
) -> Result<f32, EvalError> {
    debug_assert!(!prompt.is_empty() && !choice.is_empty());
    let mut seq = Vec::with_capacity(prompt.len() + choice.len());
    seq.extend_from_slice(prompt);
    seq.extend_from_slice(choice);
    let logits = model.try_forward(&seq)?;
    let mut ll = 0.0f64;
    for (k, &tok) in choice.iter().enumerate() {
        // Token at position prompt.len()+k is predicted by the previous
        // position's logits.
        let row = logits.row(prompt.len() + k - 1);
        ll += (row[tok as usize] - log_sum_exp(row)) as f64;
    }
    Ok((ll / choice.len() as f64) as f32)
}

/// Scores one item; returns the predicted choice index.
///
/// # Errors
///
/// Propagates inference errors.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn predict<L: LinearOp>(model: &ModelOf<L>, item: &TaskItem) -> Result<usize, EvalError> {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (i, choice) in item.choices.iter().enumerate() {
        let s = choice_loglik(model, &item.prompt, choice)?;
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    Ok(best)
}

/// Evaluates a whole suite.
///
/// # Errors
///
/// Returns [`EvalError::EmptyInput`] for an empty suite; propagates
/// inference errors.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn evaluate_suite<L: LinearOp>(
    model: &ModelOf<L>,
    suite: &TaskSuite,
) -> Result<SuiteResult, EvalError> {
    if suite.is_empty() {
        return Err(EvalError::EmptyInput("task suite"));
    }
    let mut correct = 0usize;
    for item in &suite.items {
        if predict(model, item)? == item.correct {
            correct += 1;
        }
    }
    Ok(SuiteResult {
        name: suite.task.paper_name().to_string(),
        accuracy: correct as f32 / suite.len() as f32,
        n_items: suite.len(),
    })
}

/// Evaluates several suites and appends the mean accuracy (the paper's
/// `Acc%` column).
///
/// # Errors
///
/// Propagates per-suite errors.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn evaluate_suites<L: LinearOp>(
    model: &ModelOf<L>,
    suites: &[TaskSuite],
) -> Result<Vec<SuiteResult>, EvalError> {
    let mut results = Vec::with_capacity(suites.len() + 1);
    for s in suites {
        results.push(evaluate_suite(model, s)?);
    }
    // audit:allow(accum): handful of suite accuracies; f32 mean is the reported metric
    let mean = results.iter().map(|r| r.accuracy).sum::<f32>() / results.len().max(1) as f32;
    results.push(SuiteResult {
        name: "Mean".to_string(),
        accuracy: mean,
        n_items: 0,
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::{Model, ModelConfig};
    use aptq_textgen::{Grammar, Tokenizer, ZeroShotTask};

    fn setup() -> (Model, Grammar, Tokenizer) {
        let grammar = Grammar::standard();
        let tok = Tokenizer::from_grammar(&grammar);
        let cfg = ModelConfig::test_tiny(tok.vocab_size());
        (Model::new(&cfg, 7), grammar, tok)
    }

    #[test]
    fn choice_loglik_is_negative_and_finite() {
        let (model, grammar, tok) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Affordance, &grammar, &tok, 5, 1);
        let item = &suite.items[0];
        let ll = choice_loglik(&model, &item.prompt, &item.choices[0]).unwrap();
        assert!(ll < 0.0 && ll.is_finite());
    }

    #[test]
    fn untrained_model_near_chance() {
        let (model, grammar, tok) = setup();
        let suite = TaskSuite::generate(ZeroShotTask::Affordance, &grammar, &tok, 100, 2);
        let res = evaluate_suite(&model, &suite).unwrap();
        // Chance is 0.25; an untrained model should be within noise of it.
        assert!(
            res.accuracy > 0.05 && res.accuracy < 0.55,
            "untrained accuracy {} should hover near chance",
            res.accuracy
        );
        assert_eq!(res.n_items, 100);
        assert_eq!(res.name, "PIQA");
    }

    #[test]
    fn perfect_model_on_rigged_item() {
        // Rig an item whose correct choice repeats a prompt token — with a
        // model biased to repeat, prediction must pick it. Instead of
        // training, we exploit determinism: whichever choice the model
        // scores highest is returned by predict(); feeding that as
        // `correct` yields accuracy 1.
        let (model, grammar, tok) = setup();
        let mut suite = TaskSuite::generate(ZeroShotTask::FactEasy, &grammar, &tok, 10, 3);
        for item in &mut suite.items {
            item.correct = predict(&model, item).unwrap();
        }
        let res = evaluate_suite(&model, &suite).unwrap();
        assert_eq!(res.accuracy, 1.0);
    }

    #[test]
    fn evaluate_suites_appends_mean() {
        let (model, grammar, tok) = setup();
        let suites: Vec<TaskSuite> = [ZeroShotTask::Affordance, ZeroShotTask::Agreement]
            .iter()
            .map(|&t| TaskSuite::generate(t, &grammar, &tok, 20, 4))
            .collect();
        let results = evaluate_suites(&model, &suites).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results.last().unwrap().name, "Mean");
        let mean = (results[0].accuracy + results[1].accuracy) / 2.0;
        assert!((results[2].accuracy - mean).abs() < 1e-6);
    }

    #[test]
    fn empty_suite_is_error() {
        let (model, grammar, tok) = setup();
        let mut suite = TaskSuite::generate(ZeroShotTask::Agreement, &grammar, &tok, 1, 5);
        suite.items.clear();
        assert!(matches!(
            evaluate_suite(&model, &suite),
            Err(EvalError::EmptyInput(_))
        ));
    }

    #[test]
    fn length_normalization_matters() {
        // Without normalization longer choices are penalized; verify the
        // score of a two-token choice is the mean of its per-token lls.
        let (model, _, _) = setup();
        let prompt = vec![0u32, 1];
        let choice = vec![2u32, 3];
        let ll2 = choice_loglik(&model, &prompt, &choice).unwrap();
        // Manually compute.
        let seq = [0u32, 1, 2, 3];
        let logits = model.forward(&seq);
        let mut manual = 0.0f32;
        for (k, &tok) in choice.iter().enumerate() {
            let row = logits.row(prompt.len() + k - 1);
            manual += row[tok as usize] - log_sum_exp(row);
        }
        manual /= 2.0;
        assert!((ll2 - manual).abs() < 1e-5);
    }
}
