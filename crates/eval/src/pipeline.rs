//! The quantize-then-evaluate driver: one [`Method`] value per row of
//! the paper's tables.

use aptq_core::grid::GridConfig;
use aptq_core::methods;
use aptq_core::methods::qat::QatConfig;
use aptq_core::mixed::AllocationPolicy;
use aptq_core::{QuantReport, QuantSession};
use aptq_lm::Model;
use serde::{Deserialize, Serialize};

use crate::EvalError;

/// Every quantization method appearing in Tables 1–3 and Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Full-precision reference (no quantization).
    Fp16,
    /// Round-to-nearest at `bits`.
    Rtn {
        /// Bit-width.
        bits: u8,
    },
    /// GPTQ at `bits`.
    Gptq {
        /// Bit-width.
        bits: u8,
    },
    /// OWQ: GPTQ at `bits` with fp16 outlier input dims.
    Owq {
        /// Bit-width of the quantized portion.
        bits: u8,
        /// Outlier input dimensions kept fp16 per layer.
        outlier_dims: usize,
    },
    /// SmoothQuant-style migration then RTN at `bits`.
    SmoothQuant {
        /// Bit-width.
        bits: u8,
    },
    /// FPQ (E2M1 4-bit float).
    Fpq,
    /// LLM-QAT-style data-free QAT then RTN at `bits`.
    LlmQat {
        /// Bit-width.
        bits: u8,
    },
    /// PB-LLM partial binarization with this salient fp16 fraction.
    PbLlm {
        /// Fraction of weights kept fp16.
        salient_ratio: f32,
    },
    /// APTQ at uniform `bits` (attention-aware Hessians).
    AptqUniform {
        /// Bit-width.
        bits: u8,
    },
    /// APTQ mixed 2/4-bit at 4-bit weight ratio `ratio` (Eq. 18).
    AptqMixed {
        /// 4-bit weight fraction `R`.
        ratio: f32,
    },
    /// The Table 3 ablation: mixed 2/4-bit with block-order allocation.
    ManualBlockwise {
        /// 4-bit weight fraction `R`.
        ratio: f32,
    },
}

impl Method {
    /// Paper-facing row label.
    pub fn label(&self) -> String {
        match self {
            Method::Fp16 => "FP16".to_string(),
            Method::Rtn { bits } => format!("RTN ({bits}-bit)"),
            Method::Gptq { bits } => format!("GPTQ ({bits}-bit)"),
            Method::Owq { bits, .. } => format!("OWQ ({bits}-bit+outliers)"),
            Method::SmoothQuant { bits } => format!("SmoothQuant ({bits}-bit)"),
            Method::Fpq => "FPQ (4-bit float)".to_string(),
            Method::LlmQat { bits } => format!("LLM-QAT ({bits}-bit)"),
            Method::PbLlm { salient_ratio } => {
                format!("PB-LLM-{:.0}%", salient_ratio * 100.0)
            }
            Method::AptqUniform { bits } => format!("APTQ ({bits}-bit)"),
            Method::AptqMixed { ratio } => format!("APTQ-{:.0}%", ratio * 100.0),
            Method::ManualBlockwise { ratio } => {
                format!("Manual Block-wise-{:.0}%", ratio * 100.0)
            }
        }
    }

    /// Applies the method to `model` in place, drawing calibration data,
    /// Hessians and sensitivity rankings from `session` so consecutive
    /// method rows over the same model share one activation-capture pass
    /// per [`aptq_core::HessianMode`].
    ///
    /// Returns the quantization report (`None` for [`Method::Fp16`]).
    ///
    /// Scheduler and cache telemetry accumulates in the session's
    /// [`aptq_obs::Recorder`] (see [`QuantSession::metrics`]).
    ///
    /// # Determinism
    ///
    /// Every method routes through index-ordered schedulers on the
    /// shared threadpool ([`aptq_tensor::parallel`]); reports, weights
    /// and counters are bit-identical at any `APTQ_THREADS` value.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn apply(
        &self,
        model: &mut Model,
        session: &mut QuantSession,
        cfg: &GridConfig,
    ) -> Result<Option<QuantReport>, EvalError> {
        let report = match *self {
            Method::Fp16 => None,
            Method::Rtn { bits } => Some(methods::rtn::quantize(model, bits, cfg)?),
            Method::Gptq { bits } => {
                Some(methods::gptq::quantize_session(model, session, bits, cfg)?)
            }
            Method::Owq { bits, outlier_dims } => Some(methods::owq::quantize_session(
                model,
                session,
                bits,
                outlier_dims,
                cfg,
            )?),
            Method::SmoothQuant { bits } => Some(methods::smoothquant::quantize(
                model,
                session.calibration(),
                bits,
                0.5,
                cfg,
            )?),
            Method::Fpq => Some(methods::fpq::quantize(model, cfg)?),
            Method::LlmQat { bits } => Some(methods::qat::quantize(
                model,
                bits,
                &QatConfig::default(),
                cfg,
            )?),
            Method::PbLlm { salient_ratio } => Some(methods::pbllm::quantize_session(
                model,
                session,
                salient_ratio,
                cfg,
            )?),
            Method::AptqUniform { bits } => Some(methods::aptq::quantize_uniform_session(
                model, session, bits, cfg,
            )?),
            Method::AptqMixed { ratio } => Some(
                methods::aptq::quantize_mixed_session(
                    model,
                    session,
                    ratio,
                    AllocationPolicy::HessianTrace,
                    cfg,
                )?
                .0,
            ),
            Method::ManualBlockwise { ratio } => Some(
                methods::aptq::quantize_mixed_session(
                    model,
                    session,
                    ratio,
                    AllocationPolicy::ManualBlockwise,
                    cfg,
                )?
                .0,
            ),
        };
        Ok(report)
    }

    /// [`apply`](Method::apply) with a raw calibration slice: builds a
    /// throwaway [`QuantSession`]. Kept for callers quantizing a single
    /// method where there is nothing to share.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`; see [`Method::apply`].
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn apply_with_calibration(
        &self,
        model: &mut Model,
        calibration: &[Vec<u32>],
        cfg: &GridConfig,
    ) -> Result<Option<QuantReport>, EvalError> {
        let mut session = QuantSession::new(calibration.to_vec());
        self.apply(model, &mut session, cfg)
    }

    /// Nominal average bit-width (the "Avg bit" table column; fp16 = 16).
    ///
    /// For [`Method::Owq`] the fp16 outlier overhead depends on the model
    /// shape — this model-free variant reports the base width; use
    /// [`nominal_avg_bits_for`](Method::nominal_avg_bits_for) where a
    /// model is available.
    pub fn nominal_avg_bits(&self) -> f32 {
        match *self {
            Method::Fp16 => 16.0,
            Method::Rtn { bits }
            | Method::Gptq { bits }
            | Method::SmoothQuant { bits }
            | Method::LlmQat { bits }
            | Method::AptqUniform { bits }
            | Method::Owq { bits, .. } => bits as f32,
            Method::Fpq => 4.0,
            Method::PbLlm { salient_ratio } => methods::pbllm::average_bits(salient_ratio),
            Method::AptqMixed { ratio } | Method::ManualBlockwise { ratio } => {
                aptq_core::plan::eq18_average_bits(ratio)
            }
        }
    }

    /// Nominal average bit-width including model-shape-dependent
    /// overheads: for [`Method::Owq`] the true fp16 outlier-row storage
    /// (`(16 − bits) · exempted/total`), matching what
    /// `QuantReport::avg_bits` measures after quantization.
    pub fn nominal_avg_bits_for(&self, model: &Model) -> f32 {
        match *self {
            Method::Owq { bits, outlier_dims } => {
                bits as f32 + methods::owq::extra_avg_bits(model, outlier_dims, bits)
            }
            _ => self.nominal_avg_bits(),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Outcome of applying a method and measuring it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// The method row label.
    pub method: String,
    /// Nominal average bits.
    pub avg_bits: f32,
    /// Measured average bits from the quantization report (fp16 = 16).
    pub measured_bits: f32,
    /// Metric values keyed by metric name (e.g. `"C4"`, `"PIQA"`).
    pub metrics: Vec<(String, f32)>,
}

/// Applies `method` to a clone of `model` and returns the quantized
/// clone plus its report metadata. Builds a throwaway [`QuantSession`];
/// use [`quantize_clone_session`] to share capture passes across rows.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`; see [`Method::apply`].
///
/// # Errors
///
/// Propagates quantization failures.
pub fn quantize_clone(
    model: &Model,
    method: Method,
    calibration: &[Vec<u32>],
    cfg: &GridConfig,
) -> Result<(Model, f32), EvalError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_clone_session(model, method, &mut session, cfg)
}

/// [`quantize_clone`] drawing shared state from `session`. Because the
/// base model is cloned before quantization, its fingerprint — and thus
/// the session's Hessian cache — stays valid across any number of rows.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`; see [`Method::apply`].
///
/// # Errors
///
/// Propagates quantization failures.
pub fn quantize_clone_session(
    model: &Model,
    method: Method,
    session: &mut QuantSession,
    cfg: &GridConfig,
) -> Result<(Model, f32), EvalError> {
    let mut m = model.clone();
    let report = method.apply(&mut m, session, cfg)?;
    let measured = report.as_ref().map(|r| r.avg_bits).unwrap_or(16.0);
    Ok((m, measured))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn all_methods_apply_cleanly() {
        let base = Model::new(&ModelConfig::test_tiny(16), 31);
        let cfg = GridConfig::default();
        let methods = [
            Method::Fp16,
            Method::Rtn { bits: 4 },
            Method::Gptq { bits: 4 },
            Method::Owq {
                bits: 4,
                outlier_dims: 1,
            },
            Method::SmoothQuant { bits: 4 },
            Method::Fpq,
            Method::PbLlm { salient_ratio: 0.2 },
            Method::AptqUniform { bits: 4 },
            Method::AptqMixed { ratio: 0.75 },
            Method::ManualBlockwise { ratio: 0.75 },
        ];
        for m in methods {
            let (quantized, bits) = quantize_clone(&base, m, &calib(), &cfg).unwrap();
            assert!(quantized.forward(&[1, 2, 3]).all_finite(), "{m}");
            assert!(bits > 0.0, "{m}");
            assert!(!m.label().is_empty());
            assert!(m.nominal_avg_bits() > 0.0);
        }
    }

    #[test]
    fn fp16_leaves_model_untouched() {
        let base = Model::new(&ModelConfig::test_tiny(16), 32);
        let (same, bits) =
            quantize_clone(&base, Method::Fp16, &calib(), &GridConfig::default()).unwrap();
        assert_eq!(base.forward(&[1, 2]), same.forward(&[1, 2]));
        assert_eq!(bits, 16.0);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Method::AptqMixed { ratio: 0.75 }.label(), "APTQ-75%");
        assert_eq!(Method::Fp16.label(), "FP16");
        assert!(Method::PbLlm { salient_ratio: 0.2 }
            .label()
            .contains("PB-LLM-20%"));
    }

    #[test]
    fn nominal_bits_follow_eq18() {
        assert_eq!(Method::AptqMixed { ratio: 1.0 }.nominal_avg_bits(), 4.0);
        assert_eq!(Method::AptqMixed { ratio: 0.5 }.nominal_avg_bits(), 3.0);
        assert!((Method::AptqMixed { ratio: 0.75 }.nominal_avg_bits() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn owq_nominal_bits_match_measured_storage() {
        let base = Model::new(&ModelConfig::test_tiny(16), 33);
        for outlier_dims in [1usize, 3] {
            let method = Method::Owq {
                bits: 4,
                outlier_dims,
            };
            let (_, measured) =
                quantize_clone(&base, method, &calib(), &GridConfig::default()).unwrap();
            let nominal = method.nominal_avg_bits_for(&base);
            assert!(
                (nominal - measured).abs() < 1e-3,
                "outlier_dims={outlier_dims}: nominal {nominal} vs measured {measured}"
            );
            assert!(nominal > 4.0, "fp16 rows must add storage");
        }
        // Model-free variant stays at the base width.
        assert_eq!(
            Method::Owq {
                bits: 4,
                outlier_dims: 1
            }
            .nominal_avg_bits(),
            4.0
        );
    }

    #[test]
    fn one_capture_pass_per_hessian_mode_across_methods() {
        let base = Model::new(&ModelConfig::test_tiny(16), 34);
        let cfg = GridConfig::default();
        let mut session = QuantSession::new(calib());
        // A Table-1-style multi-method sweep: three LayerInput consumers,
        // three AttentionAware consumers, plus methods needing neither.
        let rows = [
            Method::Fp16,
            Method::Gptq { bits: 4 },
            Method::Owq {
                bits: 4,
                outlier_dims: 1,
            },
            Method::PbLlm { salient_ratio: 0.2 },
            Method::AptqUniform { bits: 4 },
            Method::AptqMixed { ratio: 0.75 },
            Method::AptqMixed { ratio: 0.5 },
            Method::ManualBlockwise { ratio: 0.5 },
        ];
        for m in rows {
            quantize_clone_session(&base, m, &mut session, &cfg).unwrap();
        }
        assert_eq!(
            session.capture_passes(),
            2,
            "exactly one activation-capture pass per HessianMode"
        );
        assert_eq!(
            session.sensitivity_passes(),
            1,
            "mixed rows share one sensitivity probe"
        );
    }
}
