//! Markdown table rendering for the regenerated paper tables.

use crate::pipeline::EvalOutcome;

/// Renders outcomes as a markdown table with one column per metric.
///
/// Columns are taken from the first row's metric names; the header
/// matches the paper's layout (`Method | Avg bit | <metrics…>`).
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn render_markdown(title: &str, rows: &[EvalOutcome]) -> String {
    assert!(!rows.is_empty(), "render_markdown: no rows");
    let metric_names: Vec<&str> = rows[0].metrics.iter().map(|(n, _)| n.as_str()).collect();
    let mut s = format!("### {title}\n\n| Method | Avg bit |");
    for m in &metric_names {
        s.push_str(&format!(" {m} |"));
    }
    s.push_str("\n|---|---|");
    for _ in &metric_names {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push_str(&format!("| {} | {:.2} |", row.method, row.avg_bits));
        for name in &metric_names {
            let v = row
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(f32::NAN);
            s.push_str(&format!(" {v:.2} |"));
        }
        s.push('\n');
    }
    s
}

/// Renders a two-column series (x, y) as an ASCII line chart — used by
/// the Figure 2 regeneration to visualize perplexity vs 4-bit ratio in
/// the terminal.
pub fn render_ascii_chart(
    title: &str,
    series: &[(String, Vec<(f32, f32)>)],
    width: usize,
    height: usize,
) -> String {
    let mut all_points: Vec<(f32, f32)> = Vec::new();
    for (_, pts) in series {
        all_points.extend_from_slice(pts);
    }
    if all_points.is_empty() {
        return format!("{title}: (no data)\n");
    }
    let (mut x_lo, mut x_hi, mut y_lo, mut y_hi) = (
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::INFINITY,
        f32::NEG_INFINITY,
    );
    for &(x, y) in &all_points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if (x_hi - x_lo).abs() < 1e-9 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-9 {
        y_hi = y_lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    let markers = ['*', 'o', '+', 'x', '#', '@'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = markers[si % markers.len()];
        for &(x, y) in pts {
            let col = (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f32).round() as usize;
            let row = (((y_hi - y) / (y_hi - y_lo)) * (height - 1) as f32).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = mark;
        }
    }
    let mut s = format!("{title}\n  y: {y_hi:.2} (top) .. {y_lo:.2} (bottom)\n");
    for row in grid {
        s.push_str("  |");
        s.extend(row);
        s.push('\n');
    }
    s.push_str(&format!("   x: {x_lo:.2} .. {x_hi:.2}\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        s.push_str(&format!("   {} = {}\n", markers[si % markers.len()], name));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(method: &str, bits: f32, c4: f32, wiki: f32) -> EvalOutcome {
        EvalOutcome {
            method: method.to_string(),
            avg_bits: bits,
            measured_bits: bits,
            metrics: vec![("C4".to_string(), c4), ("WikiText-2".to_string(), wiki)],
        }
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let rows = vec![row("FP16", 16.0, 5.22, 5.68), row("APTQ", 4.0, 5.23, 6.45)];
        let md = render_markdown("Table 1", &rows);
        assert!(md.contains("### Table 1"));
        assert!(md.contains("| Method | Avg bit | C4 | WikiText-2 |"));
        assert!(md.contains("| FP16 | 16.00 | 5.22 | 5.68 |"));
        assert_eq!(md.lines().count(), 2 + 2 + 2);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn markdown_rejects_empty() {
        render_markdown("x", &[]);
    }

    #[test]
    fn ascii_chart_places_extremes() {
        let series = vec![(
            "APTQ".to_string(),
            vec![(3.0f32, 6.24f32), (3.5, 5.54), (4.0, 5.23)],
        )];
        let chart = render_ascii_chart("Figure 2", &series, 40, 10);
        assert!(chart.contains("Figure 2"));
        assert!(chart.contains('*'));
        assert!(chart.contains("APTQ"));
        assert!(chart.contains("3.00 .. 4.00"));
    }

    #[test]
    fn ascii_chart_handles_empty_and_flat() {
        assert!(render_ascii_chart("t", &[], 10, 5).contains("no data"));
        let flat = vec![("a".to_string(), vec![(1.0f32, 2.0f32), (2.0, 2.0)])];
        let chart = render_ascii_chart("flat", &flat, 20, 5);
        assert!(chart.contains('*'));
    }
}
