//! Corpus perplexity — the Table 1 / Figure 2 metric.

use aptq_lm::{LinearOp, ModelOf};
use aptq_obs::Recorder;
use aptq_tensor::activation::log_sum_exp;

use crate::EvalError;

/// Perplexity of a model over evaluation segments:
/// `exp(Σ NLL / Σ predicted tokens)`, each segment's position `i`
/// predicting token `i+1`.
///
/// # Determinism
///
/// Forward passes run on the shared matmul threadpool
/// ([`aptq_tensor::parallel`]); the result is bit-identical at any
/// `APTQ_THREADS` value.
///
/// # Errors
///
/// Returns [`EvalError::EmptyInput`] if no segment has ≥ 2 tokens, and
/// propagates token-range errors from the model.
pub fn perplexity<L: LinearOp>(
    model: &ModelOf<L>,
    segments: &[Vec<u32>],
) -> Result<f32, EvalError> {
    let mut scratch = Recorder::new();
    perplexity_recorded(model, segments, &mut scratch)
}

/// [`perplexity`] recording work into `rec` under `eval/ppl/…`:
/// segments scored (short segments are skipped and not counted) and
/// next-token predictions made.
///
/// # Determinism
///
/// Result *and counters* are bit-identical at any `APTQ_THREADS`
/// value; see [`perplexity`].
///
/// # Errors
///
/// Same as [`perplexity`]; on error `rec` may hold counters for the
/// segments scored before the failure.
pub fn perplexity_recorded<L: LinearOp>(
    model: &ModelOf<L>,
    segments: &[Vec<u32>],
    rec: &mut Recorder,
) -> Result<f32, EvalError> {
    let mut total_nll = 0.0f64;
    let mut total_tokens = 0usize;
    for seg in segments {
        if seg.len() < 2 {
            continue;
        }
        let logits = model.try_forward(seg)?;
        for i in 0..seg.len() - 1 {
            let row = logits.row(i);
            let target = seg[i + 1] as usize;
            total_nll += (log_sum_exp(row) - row[target]) as f64;
        }
        total_tokens += seg.len() - 1;
        rec.incr("eval/ppl/segments");
        rec.add("eval/ppl/tokens_predicted", (seg.len() - 1) as u64);
    }
    if total_tokens == 0 {
        return Err(EvalError::EmptyInput("perplexity segments"));
    }
    // audit:allow(range): mean NLL over a finite corpus is bounded, so exp cannot overflow
    Ok((total_nll / total_tokens as f64).exp() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::{Model, ModelConfig};
    use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
    use aptq_textgen::{Grammar, Tokenizer};

    #[test]
    fn random_model_ppl_near_vocab_size() {
        // An untrained model is roughly uniform: PPL ≈ |V|.
        let model = Model::new(&ModelConfig::test_tiny(16), 1);
        let segs: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..20).map(|i| ((i * 7 + k) % 16) as u32).collect())
            .collect();
        let ppl = perplexity(&model, &segs).unwrap();
        assert!(
            ppl > 8.0 && ppl < 40.0,
            "untrained PPL {ppl} should be near |V|=16"
        );
    }

    #[test]
    fn empty_input_is_error() {
        let model = Model::new(&ModelConfig::test_tiny(16), 1);
        assert!(matches!(
            perplexity(&model, &[]),
            Err(EvalError::EmptyInput(_))
        ));
        assert!(matches!(
            perplexity(&model, &[vec![3]]),
            Err(EvalError::EmptyInput(_))
        ));
    }

    #[test]
    fn recorded_variant_counts_scored_work() {
        let model = Model::new(&ModelConfig::test_tiny(16), 1);
        let mut rec = aptq_obs::Recorder::new();
        let segs = [vec![1, 2, 3, 4], vec![9], vec![5, 6]];
        let ppl = perplexity_recorded(&model, &segs, &mut rec).unwrap();
        assert!(ppl.is_finite());
        // The 1-token segment is skipped, not counted.
        assert_eq!(rec.get("eval/ppl/segments"), 2);
        assert_eq!(rec.get("eval/ppl/tokens_predicted"), 4);
    }

    #[test]
    fn short_segments_are_skipped() {
        let model = Model::new(&ModelConfig::test_tiny(16), 1);
        let ppl_a = perplexity(&model, &[vec![1, 2, 3, 4]]).unwrap();
        let ppl_b = perplexity(&model, &[vec![1, 2, 3, 4], vec![9]]).unwrap();
        assert_eq!(ppl_a, ppl_b);
    }

    #[test]
    fn training_reduces_corpus_perplexity() {
        // End-to-end smoke: a briefly trained model must beat uniform.
        let grammar = Grammar::standard();
        let tok = Tokenizer::from_grammar(&grammar);
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::test_tiny(tok.vocab_size())
        };
        let mut model = Model::new(&cfg, 5);
        let mut gen = CorpusGenerator::new(&grammar, &tok, CorpusStyle::WebC4, 2);
        let trainer = aptq_lm::Trainer::new(aptq_lm::TrainerConfig {
            steps: 80,
            batch_size: 8,
            adam: aptq_lm::adam::AdamConfig {
                lr: 4e-3,
                ..Default::default()
            },
            log_every: 0,
        });
        trainer.run(&mut model, |_| gen.segments(8, 24));

        let mut eval_gen = CorpusGenerator::new(&grammar, &tok, CorpusStyle::WebC4, 999);
        let eval_segs = eval_gen.segments(8, 24);
        let ppl = perplexity(&model, &eval_segs).unwrap();
        let uniform = tok.vocab_size() as f32;
        assert!(
            ppl < uniform * 0.5,
            "80 training steps should beat uniform: PPL {ppl} vs |V| {uniform}"
        );
    }
}
