//! The model zoo: pretraining and checkpoint caching for the paper's two
//! evaluation models.
//!
//! The paper quantizes pretrained LLaMA-7B/13B checkpoints. Our stand-ins
//! (`TinyLlama-S`, `TinyLlama-M` — see `DESIGN.md`) are pretrained here
//! on the synthetic C4-style corpus and cached as JSON checkpoints under
//! `assets/`, so experiments and benches load in milliseconds after the
//! first run.

use std::path::{Path, PathBuf};

use aptq_core::QuantSession;
use aptq_lm::adam::AdamConfig;
use aptq_lm::{Model, ModelConfig, Trainer, TrainerConfig};
use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq_textgen::{Grammar, Tokenizer};

use crate::EvalError;

/// Which evaluation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSize {
    /// TinyLlama-S — the LLaMA-7B stand-in.
    Small,
    /// TinyLlama-M — the LLaMA-13B stand-in.
    Medium,
}

impl ModelSize {
    /// Paper-facing display name.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelSize::Small => "LLaMa-7B (TinyLlama-S)",
            ModelSize::Medium => "LLaMa-13B (TinyLlama-M)",
        }
    }

    /// Checkpoint file name.
    fn file_name(self) -> &'static str {
        match self {
            ModelSize::Small => "tinyllama_s.json",
            ModelSize::Medium => "tinyllama_m.json",
        }
    }

    /// Model configuration for this size (vocab from the tokenizer).
    pub fn config(self, vocab: usize) -> ModelConfig {
        match self {
            ModelSize::Small => ModelConfig::tiny_llama_s(vocab),
            ModelSize::Medium => ModelConfig::tiny_llama_m(vocab),
        }
    }
}

/// Pretraining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainBudget {
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch_size: usize,
    /// Tokens per training sequence.
    pub seq_len: usize,
}

impl PretrainBudget {
    /// The budget used by the experiment harness (minutes of CPU).
    pub fn full() -> Self {
        PretrainBudget {
            steps: 800,
            batch_size: 12,
            seq_len: 44,
        }
    }

    /// A light budget for integration tests (seconds of CPU).
    pub fn quick() -> Self {
        PretrainBudget {
            steps: 120,
            batch_size: 8,
            seq_len: 32,
        }
    }
}

/// Everything the experiments need: grammar, tokenizer, and a trained
/// model.
#[derive(Debug)]
pub struct TrainedStack {
    /// The synthetic language definition.
    pub grammar: Grammar,
    /// The tokenizer over its vocabulary.
    pub tokenizer: Tokenizer,
    /// The pretrained model.
    pub model: Model,
    /// Final training loss (nats/token).
    pub final_loss: f32,
}

impl TrainedStack {
    /// Builds a [`QuantSession`] over fresh calibration segments drawn
    /// from the training distribution (C4-style corpus; the seed differs
    /// from training so the segments are unseen). Segment length is
    /// clamped to the model's maximum context.
    pub fn calibration_session(&self, n_segments: usize, seg_len: usize) -> QuantSession {
        let mut gen =
            CorpusGenerator::new(&self.grammar, &self.tokenizer, CorpusStyle::WebC4, 40_001);
        let len = seg_len.min(self.model.config().max_seq_len);
        QuantSession::new(gen.segments(n_segments, len))
    }
}

/// Trains (or loads from `cache_dir`) a model of the given size.
///
/// Checkpoints are invalidated by budget or vocabulary changes via a
/// content tag embedded in the file path.
///
/// # Errors
///
/// Propagates checkpoint I/O and parse failures (a corrupt cache file is
/// an error rather than a silent retrain, so experiments stay
/// reproducible).
///
/// # Determinism
///
/// A cache miss retrains from a fixed seed with all parallelism routed
/// through `aptq_tensor::parallel` (order-preserving reductions), so the
/// checkpoint bytes are identical at every `APTQ_THREADS`.
pub fn load_or_train(
    size: ModelSize,
    budget: PretrainBudget,
    cache_dir: Option<&Path>,
) -> Result<TrainedStack, EvalError> {
    let grammar = Grammar::standard();
    let tokenizer = Tokenizer::from_grammar(&grammar);
    let vocab = tokenizer.vocab_size();

    let cache_path = cache_dir.map(|d| {
        d.join(format!(
            "{}-s{}b{}l{}-v{vocab}-{}",
            "ckpt",
            budget.steps,
            budget.batch_size,
            budget.seq_len,
            size.file_name()
        ))
    });

    if let Some(path) = &cache_path {
        if path.exists() {
            let json = std::fs::read_to_string(path)?;
            let model = Model::from_json(&json)?;
            return Ok(TrainedStack {
                grammar,
                tokenizer,
                model,
                final_loss: f32::NAN,
            });
        }
    }

    let cfg = size.config(vocab);
    // The larger model gets proportionally more optimizer steps — it has
    // ~50% more parameters and converges slower at the same budget, and
    // the paper's 13B checkpoint is likewise the better-trained model.
    let (seed, steps) = match size {
        ModelSize::Small => (1007, budget.steps),
        ModelSize::Medium => (2013, budget.steps * 2),
    };
    let mut model = Model::new(&cfg, seed);
    let mut gen = CorpusGenerator::new(&grammar, &tokenizer, CorpusStyle::WebC4, seed ^ 0xC4);
    let trainer = Trainer::new(TrainerConfig {
        steps,
        batch_size: budget.batch_size,
        adam: AdamConfig {
            lr: 3e-3,
            ..AdamConfig::default()
        },
        log_every: 0,
    });
    let report = trainer.run(&mut model, |_| {
        gen.segments(budget.batch_size, budget.seq_len)
    });

    if let Some(path) = &cache_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, model.to_json()?)?;
    }

    Ok(TrainedStack {
        grammar,
        tokenizer,
        model,
        final_loss: report.final_loss,
    })
}

/// Default cache directory (`assets/` next to the workspace root when
/// run via cargo, else the current directory).
pub fn default_cache_dir() -> PathBuf {
    // audit:allow(env): CARGO_MANIFEST_DIR is a cargo-injected build constant, not runtime config
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/<name> → workspace root.
        let p = PathBuf::from(dir);
        let root = p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p);
        root.join("assets")
    } else {
        PathBuf::from("assets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_training_learns_something() {
        let stack = load_or_train(ModelSize::Small, PretrainBudget::quick(), None).unwrap();
        let uniform = (stack.tokenizer.vocab_size() as f32).ln();
        assert!(
            stack.final_loss < uniform * 0.75,
            "quick budget should beat uniform: {} vs ln|V| {uniform}",
            stack.final_loss
        );
    }

    #[test]
    fn checkpoint_cache_roundtrips() {
        let dir = std::env::temp_dir().join(format!("aptq-zoo-test-{}", std::process::id()));
        let budget = PretrainBudget {
            steps: 4,
            batch_size: 2,
            seq_len: 16,
        };
        let a = load_or_train(ModelSize::Small, budget, Some(&dir)).unwrap();
        let b = load_or_train(ModelSize::Small, budget, Some(&dir)).unwrap();
        assert_eq!(a.model.forward(&[1, 2, 3]), b.model.forward(&[1, 2, 3]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibration_session_clamps_to_context() {
        let budget = PretrainBudget {
            steps: 2,
            batch_size: 2,
            seq_len: 16,
        };
        let stack = load_or_train(ModelSize::Small, budget, None).unwrap();
        let session = stack.calibration_session(3, 10_000);
        assert_eq!(session.calibration().len(), 3);
        let max_seq = stack.model.config().max_seq_len;
        assert!(session
            .calibration()
            .iter()
            .all(|s| !s.is_empty() && s.len() <= max_seq));
        assert_eq!(session.capture_passes(), 0);
    }

    #[test]
    fn sizes_have_distinct_configs() {
        assert!(
            ModelSize::Medium.config(100).param_count()
                > ModelSize::Small.config(100).param_count()
        );
        assert_ne!(
            ModelSize::Small.paper_name(),
            ModelSize::Medium.paper_name()
        );
    }
}
