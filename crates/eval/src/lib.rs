//! # aptq-eval
//!
//! Evaluation harness for the APTQ reproduction: exactly the two metrics
//! the paper reports, plus the plumbing to run every method end-to-end.
//!
//! - [`perplexity`]: corpus perplexity (the paper's Table 1 / Figure 2
//!   metric) on the synthetic C4 and WikiText-2 stand-ins.
//! - [`zeroshot`]: multiple-choice accuracy by length-normalized
//!   log-likelihood — the lm-eval-harness scoring rule used by Table 2.
//! - [`pipeline`]: one enum over every method in the paper
//!   ([`pipeline::Method`]) and the quantize-then-evaluate driver.
//! - [`zoo`]: pretraining + checkpoint caching for the TinyLlama-S/M
//!   stand-ins (the paper's LLaMA-7B/13B).
//! - [`tables`]: markdown renderers for the regenerated tables.

pub mod perplexity;
pub mod pipeline;
pub mod tables;
pub mod zeroshot;
pub mod zoo;

pub use perplexity::{perplexity, perplexity_recorded};
pub use pipeline::{EvalOutcome, Method};
pub use zeroshot::{evaluate_suite, evaluate_suites, SuiteResult};

/// Errors surfaced by the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// Quantization failed.
    Quant(aptq_core::QuantError),
    /// Model inference failed.
    Lm(aptq_lm::LmError),
    /// Evaluation input was empty.
    EmptyInput(&'static str),
    /// Checkpoint I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Quant(e) => write!(f, "quantization failed: {e}"),
            EvalError::Lm(e) => write!(f, "model error: {e}"),
            EvalError::EmptyInput(what) => write!(f, "empty evaluation input: {what}"),
            EvalError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Quant(e) => Some(e),
            EvalError::Lm(e) => Some(e),
            EvalError::Io(e) => Some(e),
            EvalError::EmptyInput(_) => None,
        }
    }
}

impl From<aptq_core::QuantError> for EvalError {
    fn from(e: aptq_core::QuantError) -> Self {
        EvalError::Quant(e)
    }
}

impl From<aptq_lm::LmError> for EvalError {
    fn from(e: aptq_lm::LmError) -> Self {
        EvalError::Lm(e)
    }
}

impl From<std::io::Error> for EvalError {
    fn from(e: std::io::Error) -> Self {
        EvalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_and_chain() {
        use std::error::Error;
        let e = EvalError::Quant(aptq_core::QuantError::EmptyCalibration);
        assert!(e.to_string().contains("quantization"));
        assert!(e.source().is_some());
        assert!(EvalError::EmptyInput("segments")
            .to_string()
            .contains("segments"));
    }
}
