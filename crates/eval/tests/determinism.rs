//! Method-level determinism: every table method must produce
//! bit-identical weights regardless of the scheduler thread count.
//!
//! The scheduler reads `APTQ_THREADS` (see
//! `aptq_core::methods::scheduler_threads`); this test pins it per pass.
//! Thread count only affects scheduling, never results, so flipping the
//! variable mid-process cannot perturb concurrently running tests.

use aptq_core::grid::GridConfig;
use aptq_core::QuantSession;
use aptq_eval::pipeline::{quantize_clone_session, Method};
use aptq_lm::{Model, ModelConfig};

fn calib() -> Vec<Vec<u32>> {
    (0..8)
        .map(|k| (0..16).map(|i| ((i * 5 + k) % 16) as u32).collect())
        .collect()
}

const METHODS: [Method; 11] = [
    Method::Fp16,
    Method::Rtn { bits: 4 },
    Method::Gptq { bits: 4 },
    Method::Gptq { bits: 2 },
    Method::Owq {
        bits: 4,
        outlier_dims: 1,
    },
    Method::SmoothQuant { bits: 4 },
    Method::Fpq,
    Method::PbLlm { salient_ratio: 0.2 },
    Method::AptqUniform { bits: 4 },
    Method::AptqMixed { ratio: 0.75 },
    Method::ManualBlockwise { ratio: 0.5 },
];

fn run_all(base: &Model, cfg: &GridConfig, threads: &str) -> Vec<(Model, f32)> {
    std::env::set_var("APTQ_THREADS", threads);
    let mut session = QuantSession::new(calib());
    METHODS
        .iter()
        .map(|&m| quantize_clone_session(base, m, &mut session, cfg).unwrap())
        .collect()
}

#[test]
fn every_method_bit_identical_across_thread_counts() {
    let base = Model::new(&ModelConfig::test_tiny(16), 91);
    let cfg = GridConfig::default();
    let sequential = run_all(&base, &cfg, "1");
    for threads in ["2", "4"] {
        let parallel = run_all(&base, &cfg, threads);
        for ((method, (seq_model, seq_bits)), (par_model, par_bits)) in
            METHODS.iter().zip(&sequential).zip(&parallel)
        {
            assert_eq!(seq_bits, par_bits, "{method}: avg bits differ at {threads}");
            for layer in base.layer_refs() {
                assert_eq!(
                    seq_model.layer_weight(layer),
                    par_model.layer_weight(layer),
                    "{method}: weight {layer} differs at {threads} threads"
                );
            }
            assert_eq!(
                seq_model.embed(),
                par_model.embed(),
                "{method}: embedding differs at {threads} threads"
            );
        }
    }
    std::env::remove_var("APTQ_THREADS");
}
