//! Mixed-precision bit allocation (§3.3, Algorithm 1 Step 2).
//!
//! Given per-layer sensitivities and a target 4-bit ratio `R`, the
//! Hessian-trace policy sorts layers by descending average trace and
//! keeps the most sensitive layers at the high bit-width until `R` of
//! the weights are covered; everything else drops to the low width.
//! The manual block-wise policy of the Table 3 ablation instead assigns
//! whole transformer blocks front-to-back, ignoring sensitivity.

use aptq_lm::{LayerRef, Model};
use serde::{Deserialize, Serialize};

use crate::plan::QuantPlan;
use crate::trace::SensitivityReport;
use crate::QuantError;

/// How layers are chosen for the high bit-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// APTQ: rank layers by average Hessian trace, most sensitive first.
    HessianTrace,
    /// Ablation baseline: assign whole blocks, in block order, with no
    /// sensitivity information ("the most intuitive mixed-precision
    /// quantization strategy is to uniformly quantize all layers within
    /// each block").
    ManualBlockwise,
}

impl std::fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationPolicy::HessianTrace => f.write_str("hessian-trace"),
            AllocationPolicy::ManualBlockwise => f.write_str("manual-blockwise"),
        }
    }
}

/// Allocates high/low bit-widths to layers for a target high-bit weight
/// ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedPrecisionAllocator {
    /// Bit-width for sensitive layers (4 in the paper).
    pub high_bits: u8,
    /// Bit-width for robust layers (2 in the paper).
    pub low_bits: u8,
    /// Target fraction of weights at `high_bits` (the `R` of Eq. 18).
    pub ratio: f32,
}

impl MixedPrecisionAllocator {
    /// The paper's 2/4-bit scheme at ratio `r`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRatio`] if `r ∉ [0, 1]`.
    pub fn two_four(r: f32) -> Result<Self, QuantError> {
        if !(0.0..=1.0).contains(&r) {
            return Err(QuantError::InvalidRatio { ratio: r });
        }
        Ok(MixedPrecisionAllocator {
            high_bits: 4,
            low_bits: 2,
            ratio: r,
        })
    }

    /// Produces a [`QuantPlan`] under the given policy.
    ///
    /// The greedy cover stops as soon as the covered weight fraction
    /// reaches `ratio`, so the achieved ratio overshoots by at most one
    /// layer's weights — the granularity the paper's layer-wise scheme
    /// has too.
    pub fn allocate(
        &self,
        model: &Model,
        sensitivity: &SensitivityReport,
        policy: AllocationPolicy,
    ) -> QuantPlan {
        let mut plan = QuantPlan::uniform(model, self.low_bits);
        let total: usize = model
            .layer_refs()
            .iter()
            .map(|&r| model.layer_weight(r).len())
            .sum();
        let target = self.ratio as f64 * total as f64;
        if target <= 0.0 {
            return plan;
        }
        let order: Vec<LayerRef> = match policy {
            AllocationPolicy::HessianTrace => {
                sensitivity.entries().iter().map(|e| e.layer).collect()
            }
            AllocationPolicy::ManualBlockwise => model.layer_refs(),
        };
        let mut covered = 0f64;
        for r in order {
            if covered >= target {
                break;
            }
            plan.set_bits(r, self.high_bits);
            covered += model.layer_weight(r).len() as f64;
        }
        if crate::invariants::ENABLED && total > 0 {
            let max_share = model
                .layer_refs()
                .iter()
                .map(|&r| model.layer_weight(r).len())
                .fold(0usize, usize::max) as f64
                / total as f64;
            crate::invariants::budget_conserved(
                plan.avg_bits(model),
                self.high_bits,
                self.low_bits,
                self.ratio,
                max_share as f32,
                "MixedPrecisionAllocator::allocate",
            );
            if policy == AllocationPolicy::HessianTrace {
                crate::invariants::allocation_monotone(
                    &plan,
                    sensitivity,
                    self.high_bits,
                    "MixedPrecisionAllocator::allocate",
                );
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::HessianMode;
    use crate::plan::eq18_average_bits;
    use aptq_lm::{LayerKind, Model, ModelConfig};

    fn setup() -> (Model, SensitivityReport) {
        let model = Model::new(&ModelConfig::test_tiny(16), 5);
        let segs: Vec<Vec<u32>> = (0..3)
            .map(|k| (0..12).map(|i| ((i + 2 * k) % 16) as u32).collect())
            .collect();
        let hs = crate::collect_hessians(&model, &segs, HessianMode::AttentionAware).unwrap();
        (model, SensitivityReport::from_hessians(&hs))
    }

    #[test]
    fn ratio_one_gives_uniform_high() {
        let (model, sens) = setup();
        let alloc = MixedPrecisionAllocator::two_four(1.0).unwrap();
        let plan = alloc.allocate(&model, &sens, AllocationPolicy::HessianTrace);
        assert_eq!(plan.avg_bits(&model), 4.0);
    }

    #[test]
    fn ratio_zero_gives_uniform_low() {
        let (model, sens) = setup();
        let alloc = MixedPrecisionAllocator::two_four(0.0).unwrap();
        let plan = alloc.allocate(&model, &sens, AllocationPolicy::HessianTrace);
        assert_eq!(plan.avg_bits(&model), 2.0);
    }

    #[test]
    fn achieved_avg_bits_close_to_eq18() {
        let (model, sens) = setup();
        for r in [0.25f32, 0.5, 0.75, 0.9] {
            let alloc = MixedPrecisionAllocator::two_four(r).unwrap();
            let plan = alloc.allocate(&model, &sens, AllocationPolicy::HessianTrace);
            let avg = plan.avg_bits(&model);
            let want = eq18_average_bits(r);
            // One-layer granularity: tolerance = largest layer share × 2 bits.
            assert!(
                (avg - want).abs() < 0.5,
                "r={r}: avg {avg} too far from Eq18 {want}"
            );
            assert!(
                avg >= want - 1e-4,
                "greedy cover must reach the target ratio"
            );
        }
    }

    #[test]
    fn trace_policy_prefers_sensitive_layers() {
        let (model, sens) = setup();
        let alloc = MixedPrecisionAllocator::two_four(0.3).unwrap();
        let plan = alloc.allocate(&model, &sens, AllocationPolicy::HessianTrace);
        // The most sensitive layer must be high-bit, the least sensitive low-bit.
        let top = sens.entries().first().unwrap().layer;
        let bottom = sens.entries().last().unwrap().layer;
        assert_eq!(plan.bits_for(top), Some(4));
        assert_eq!(plan.bits_for(bottom), Some(2));
    }

    #[test]
    fn blockwise_policy_fills_front_blocks_first() {
        let (model, sens) = setup();
        let alloc = MixedPrecisionAllocator::two_four(0.5).unwrap();
        let plan = alloc.allocate(&model, &sens, AllocationPolicy::ManualBlockwise);
        // First block fully high-bit before any of the last block.
        for kind in LayerKind::ALL {
            assert_eq!(plan.bits_for(LayerRef { block: 0, kind }), Some(4));
        }
        let last = model.config().n_layers - 1;
        let low_in_last = LayerKind::ALL
            .iter()
            .filter(|&&kind| plan.bits_for(LayerRef { block: last, kind }) == Some(2))
            .count();
        assert!(
            low_in_last > 0,
            "half ratio must leave the last block partly low-bit"
        );
    }

    #[test]
    fn policies_differ_when_sensitivity_is_nonuniform() {
        let (model, sens) = setup();
        let alloc = MixedPrecisionAllocator::two_four(0.5).unwrap();
        let a = alloc.allocate(&model, &sens, AllocationPolicy::HessianTrace);
        let b = alloc.allocate(&model, &sens, AllocationPolicy::ManualBlockwise);
        assert_ne!(a, b, "trace-ranked and block-order plans should differ");
    }

    #[test]
    fn invalid_ratio_rejected() {
        assert!(matches!(
            MixedPrecisionAllocator::two_four(1.2),
            Err(QuantError::InvalidRatio { .. })
        ));
        assert!(matches!(
            MixedPrecisionAllocator::two_four(-0.1),
            Err(QuantError::InvalidRatio { .. })
        ));
    }
}
