//! Hessian-trace layer sensitivity (§3.3 of the paper).
//!
//! "By computing the average trace of the Hessian matrix, the method
//! determines the appropriate level of precision for the quantization of
//! each layer. Layers with higher Hessian Trace values […] require
//! higher bit precision."

use std::collections::BTreeMap;

use aptq_lm::{LayerRef, Model};
use serde::{Deserialize, Serialize};

use crate::grid::{GridConfig, QuantGrid};
use crate::hessian::LayerHessian;
use crate::QuantError;

/// How layer sensitivity is scored from the Hessian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitivityMetric {
    /// The paper's literal statement: the average Hessian trace alone.
    ///
    /// Comparable only between layers with similar input scales; kept
    /// for the ablation benches.
    MeanTrace,
    /// HAWQ-V2-style trace-weighted perturbation:
    /// `mean_trace · E[(W − Q₂(W))²]`, where `Q₂` is low-bit RTN.
    ///
    /// §3.3 builds on HAWQ-V2 [3], whose criterion is
    /// `Tr(H)·‖ΔW‖²` — the expected second-order loss increase under
    /// the layer-local quadratic model.
    TraceTimesPerturbation,
    /// Empirical end-to-end sensitivity: the increase in calibration
    /// cross-entropy when *only this layer* is RTN-quantized at the low
    /// bit-width.
    ///
    /// The two Hessian statistics above are layer-local: they cannot see
    /// that an early layer's error **compounds** through every
    /// downstream block while a late layer's error passes only through
    /// the final norm. On shallow models that compounding dominates (we
    /// measure it directly in the `probe_sensitivity` diagnostic), so
    /// this metric — still pure PTQ, still computed from the same
    /// calibration set — is the default allocation signal for the
    /// experiments. The trace variants are retained and compared in the
    /// ablation bench; see DESIGN.md §3 for the full deviation note.
    EmpiricalLoss,
}

/// One layer's sensitivity entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSensitivity {
    /// The layer.
    pub layer: LayerRef,
    /// Average Hessian trace (per dimension, per calibration token).
    pub mean_trace: f32,
}

/// Per-layer sensitivity ranking derived from calibration Hessians.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    entries: Vec<LayerSensitivity>,
}

impl SensitivityReport {
    /// Builds a report from collected Hessians using the raw
    /// [`SensitivityMetric::MeanTrace`] statistic, sorted by descending
    /// sensitivity (ties broken by canonical layer order).
    pub fn from_hessians(hessians: &BTreeMap<LayerRef, LayerHessian>) -> Self {
        let entries = hessians
            .iter()
            .map(|(&layer, lh)| LayerSensitivity {
                layer,
                mean_trace: lh.mean_trace,
            })
            .collect();
        Self::sorted(entries)
    }

    /// Builds a report with an explicit metric.
    ///
    /// For [`SensitivityMetric::TraceTimesPerturbation`] the trace is
    /// weighted by the layer's expected low-bit quantization
    /// perturbation `E[(W − Q(W))²]` under `low_bits` RTN — the
    /// HAWQ-V2 criterion `Tr(H)·‖ΔW‖²` that §3.3 builds on.
    ///
    /// # Panics
    ///
    /// Panics for [`SensitivityMetric::EmpiricalLoss`], which needs
    /// probe data — use [`empirical_sensitivity`] instead.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`: trace and perturbation are
    /// per-layer sequential reductions over fixed-order weights.
    pub fn with_metric(
        hessians: &BTreeMap<LayerRef, LayerHessian>,
        model: &Model,
        metric: SensitivityMetric,
        low_bits: u8,
        cfg: &GridConfig,
    ) -> Self {
        let entries = hessians
            .iter()
            .map(|(&layer, lh)| {
                let score = match metric {
                    SensitivityMetric::MeanTrace => lh.mean_trace,
                    SensitivityMetric::TraceTimesPerturbation => {
                        let w = model.layer_weight(layer);
                        lh.mean_trace * rtn_mean_sq_error(w, low_bits, cfg)
                    }
                    SensitivityMetric::EmpiricalLoss => {
                        // audit:allow(panic): documented under `# Panics`; callers route this variant to empirical_sensitivity()
                        panic!("EmpiricalLoss needs probe data; call empirical_sensitivity()")
                    }
                };
                LayerSensitivity {
                    layer,
                    mean_trace: score,
                }
            })
            .collect();
        Self::sorted(entries)
    }

    fn sorted(mut entries: Vec<LayerSensitivity>) -> Self {
        entries.sort_by(|a, b| {
            b.mean_trace
                .partial_cmp(&a.mean_trace)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.layer.cmp(&b.layer))
        });
        SensitivityReport { entries }
    }

    /// Entries in descending-sensitivity order.
    pub fn entries(&self) -> &[LayerSensitivity] {
        &self.entries
    }

    /// Number of ranked layers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The trace value for one layer, if ranked.
    pub fn trace_for(&self, layer: LayerRef) -> Option<f32> {
        self.entries
            .iter()
            .find(|e| e.layer == layer)
            .map(|e| e.mean_trace)
    }

    /// Mean squared per-weight sensitivity score over all entries.
    pub fn mean_score(&self) -> f32 {
        if self.entries.is_empty() {
            return 0.0;
        }
        // audit:allow(accum): short per-layer list; f32 sum keeps reported scores bit-stable
        self.entries.iter().map(|e| e.mean_trace).sum::<f32>() / self.entries.len() as f32
    }

    /// Renders a small markdown table (used by the sensitivity example
    /// and the reports in `EXPERIMENTS.md`).
    pub fn to_markdown(&self) -> String {
        let mut s = String::from("| rank | layer | avg Hessian trace |\n|---|---|---|\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "| {} | {} | {:.6} |\n",
                i + 1,
                e.layer,
                e.mean_trace
            ));
        }
        s
    }
}

/// Builds an [`SensitivityMetric::EmpiricalLoss`] report: for each
/// layer, quantize only that layer at `low_bits` (RTN — the cheap proxy;
/// only the *ranking* matters) and measure the mean cross-entropy
/// increase over `probe` segments.
///
/// The probe should be a small slice of the calibration set (8 segments
/// is plenty); cost is `n_layers × (RTN + probe forward passes)`,
/// spread across [`crate::methods::scheduler_threads`] workers.
///
/// # Determinism
///
/// Bit-identical for every `APTQ_THREADS` value; see
/// [`empirical_sensitivity_threads`] for the contract.
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] when no probe segment has at
/// least two tokens (a shorter segment yields no next-token targets, so
/// the loss signal would be vacuous).
pub fn empirical_sensitivity(
    model: &Model,
    probe: &[Vec<u32>],
    low_bits: u8,
    cfg: &GridConfig,
) -> Result<SensitivityReport, QuantError> {
    empirical_sensitivity_threads(
        model,
        probe,
        low_bits,
        cfg,
        crate::methods::scheduler_threads(),
    )
}

/// [`empirical_sensitivity`] with an explicit worker-thread count.
///
/// Each worker owns a single scratch clone of the model and swaps the
/// one perturbed layer weight in and out around its probe passes, so
/// memory stays at `threads + 1` model copies instead of one clone per
/// layer.
///
/// # Determinism
///
/// Results are bit-identical for every `threads` value: each layer's
/// probe reads only the pristine reference model plus its own restored
/// scratch state, and entries are collected in layer order via
/// [`aptq_tensor::parallel::run_indexed_with`].
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] when no probe segment has at
/// least two tokens.
pub fn empirical_sensitivity_threads(
    model: &Model,
    probe: &[Vec<u32>],
    low_bits: u8,
    cfg: &GridConfig,
    threads: usize,
) -> Result<SensitivityReport, QuantError> {
    if probe.iter().all(|s| s.len() < 2) {
        return Err(QuantError::EmptyCalibration);
    }
    let base = probe_loss(model, probe);
    let layers = model.layer_refs();
    let threads = threads.clamp(1, layers.len().max(1));

    let entries: Vec<LayerSensitivity> = aptq_tensor::parallel::run_indexed_with(
        layers.len(),
        threads,
        || model.clone(),
        |scratch, i| probe_one_layer(scratch, model, layers[i], base, probe, low_bits, cfg),
    );
    Ok(SensitivityReport::sorted(entries))
}

/// RTN-perturbs one layer inside `scratch` (taking the pristine weight
/// from `reference`), measures the probe loss increase, and restores the
/// original weight before returning.
fn probe_one_layer(
    scratch: &mut Model,
    reference: &Model,
    layer: LayerRef,
    base: f32,
    probe: &[Vec<u32>],
    low_bits: u8,
    cfg: &GridConfig,
) -> LayerSensitivity {
    let res = crate::engine::quantize_layer_rtn(
        reference.layer_weight(layer),
        QuantGrid::int(low_bits, cfg.asymmetric),
        cfg,
    );
    let original = std::mem::replace(scratch.layer_weight_mut(layer), res.dequantized);
    let loss = probe_loss(scratch, probe);
    *scratch.layer_weight_mut(layer) = original;
    LayerSensitivity {
        layer,
        mean_trace: loss - base,
    }
}

/// Hutchinson stochastic trace estimator: `tr(H) ≈ mean(zᵀHz)` over
/// Rademacher probe vectors `z ∈ {−1,+1}ⁿ`.
///
/// HAWQ-V2 (the paper's reference [3]) uses this because CNN/LLM
/// Hessians are too large to materialize. Our calibration Hessians are
/// explicit, so the estimator serves as a cross-check — the
/// `hutchinson` ablation bench compares it against the exact trace and
/// measures its convergence.
///
/// # Panics
///
/// Panics if `h` is not square or `n_probes == 0`.
pub fn hutchinson_trace(h: &aptq_tensor::Matrix, n_probes: usize, seed: u64) -> f32 {
    assert_eq!(
        h.rows(),
        h.cols(),
        "hutchinson_trace: square matrix required"
    );
    assert!(n_probes > 0, "hutchinson_trace: need at least one probe");
    use rand::Rng;
    let mut rng = aptq_tensor::init::rng(seed);
    let n = h.rows();
    let mut acc = 0.0f64;
    for _ in 0..n_probes {
        let z: Vec<f32> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let hz = h.matvec(&z);
        acc +=
            aptq_tensor::stats::kahan_sum(z.iter().zip(hz.iter()).map(|(&a, &b)| (a * b) as f64));
    }
    (acc / n_probes as f64) as f32
}

/// Mean next-token cross-entropy over probe segments.
fn probe_loss(model: &Model, probe: &[Vec<u32>]) -> f32 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for seg in probe.iter().filter(|s| s.len() >= 2) {
        total += model.sequence_loss(seg) as f64 * (seg.len() - 1) as f64;
        n += seg.len() - 1;
    }
    if n == 0 {
        0.0
    } else {
        (total / n as f64) as f32
    }
}

/// Mean squared RTN quantization error of a weight matrix at `bits`.
fn rtn_mean_sq_error(w: &aptq_tensor::Matrix, bits: u8, cfg: &GridConfig) -> f32 {
    let grid = match QuantGrid::try_int(bits, cfg.asymmetric) {
        Ok(g) => g,
        Err(_) => return 0.0,
    };
    let d_in = w.rows();
    let d_out = w.cols();
    let group = cfg.group_size.min(d_in).max(1);
    let mut err = 0.0f64;
    for g0 in (0..d_in).step_by(group) {
        let g1 = (g0 + group).min(d_in);
        for c in 0..d_out {
            let col: Vec<f32> = (g0..g1).map(|r| w[(r, c)]).collect();
            let p = grid.fit_params(&col);
            for &v in &col {
                let (_, d) = grid.quantize(v, p);
                err += ((v - d) as f64).powi(2);
            }
        }
    }
    (err / (d_in * d_out) as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::HessianMode;
    use aptq_lm::{LayerKind, Model, ModelConfig};

    #[test]
    fn ranking_is_descending_and_complete() {
        let model = Model::new(&ModelConfig::test_tiny(16), 2);
        let segs: Vec<Vec<u32>> = (0..3)
            .map(|k| (0..12).map(|i| ((i + k) % 16) as u32).collect())
            .collect();
        let hs = crate::collect_hessians(&model, &segs, HessianMode::AttentionAware).unwrap();
        let report = SensitivityReport::from_hessians(&hs);
        assert_eq!(report.len(), model.layer_refs().len());
        for w in report.entries().windows(2) {
            assert!(w[0].mean_trace >= w[1].mean_trace);
        }
        // Every layer looked up by ref resolves.
        for r in model.layer_refs() {
            assert!(report.trace_for(r).is_some());
        }
    }

    #[test]
    fn traces_vary_across_layers() {
        // If every layer had the same sensitivity the mixed-precision
        // allocator would be meaningless.
        let model = Model::new(&ModelConfig::test_tiny(16), 3);
        let segs: Vec<Vec<u32>> = (0..3)
            .map(|k| (0..12).map(|i| ((i * 2 + k) % 16) as u32).collect())
            .collect();
        let hs = crate::collect_hessians(&model, &segs, HessianMode::AttentionAware).unwrap();
        let report = SensitivityReport::from_hessians(&hs);
        let hi = report.entries().first().unwrap().mean_trace;
        let lo = report.entries().last().unwrap().mean_trace;
        assert!(hi > lo * 1.2, "sensitivities too uniform: {hi} vs {lo}");
    }

    #[test]
    fn trace_times_perturbation_differs_from_raw_trace() {
        let model = Model::new(&ModelConfig::test_tiny(16), 6);
        let segs = vec![(0..12).map(|i| (i % 16) as u32).collect::<Vec<u32>>()];
        let hs = crate::collect_hessians(&model, &segs, HessianMode::AttentionAware).unwrap();
        let cfg = GridConfig::default();
        let raw =
            SensitivityReport::with_metric(&hs, &model, SensitivityMetric::MeanTrace, 2, &cfg);
        let weighted = SensitivityReport::with_metric(
            &hs,
            &model,
            SensitivityMetric::TraceTimesPerturbation,
            2,
            &cfg,
        );
        assert_eq!(raw.len(), weighted.len());
        // Rankings generally differ because weight magnitudes vary.
        let raw_order: Vec<_> = raw.entries().iter().map(|e| e.layer).collect();
        let weighted_order: Vec<_> = weighted.entries().iter().map(|e| e.layer).collect();
        assert_ne!(
            raw_order, weighted_order,
            "weighting should reshuffle at least one layer"
        );
        assert!(weighted.mean_score() > 0.0);
        // Raw metric must agree with from_hessians.
        let legacy = SensitivityReport::from_hessians(&hs);
        assert_eq!(raw, legacy);
    }

    #[test]
    fn hutchinson_converges_to_exact_trace() {
        let g = aptq_tensor::init::normal(12, 12, 1.0, &mut aptq_tensor::init::rng(1));
        let h = g.matmul(&g.transpose()); // SPD-ish, nontrivial trace
        let exact = h.trace();
        let est = hutchinson_trace(&h, 2000, 7);
        assert!(
            (est - exact).abs() / exact.abs() < 0.15,
            "hutchinson {est} vs exact {exact}"
        );
        // More probes should not be wildly worse than few.
        let rough = hutchinson_trace(&h, 4, 7);
        assert!(rough.is_finite());
    }

    #[test]
    fn empirical_sensitivity_ranks_all_layers() {
        let model = Model::new(&ModelConfig::test_tiny(16), 8);
        let probe: Vec<Vec<u32>> = (0..3)
            .map(|k| (0..10).map(|i| ((i + k) % 16) as u32).collect())
            .collect();
        let report = empirical_sensitivity(&model, &probe, 2, &GridConfig::default()).unwrap();
        assert_eq!(report.len(), model.layer_refs().len());
        // Entries are finite and sorted descending.
        for w in report.entries().windows(2) {
            assert!(w[0].mean_trace >= w[1].mean_trace);
            assert!(w[0].mean_trace.is_finite());
        }
    }

    #[test]
    fn empirical_sensitivity_rejects_degenerate_probes() {
        let model = Model::new(&ModelConfig::test_tiny(16), 8);
        let cases: [Vec<Vec<u32>>; 3] = [
            Vec::new(),       // empty probe set
            vec![Vec::new()], // single empty segment
            vec![vec![3u32]], // one-token segment: no next-token target
        ];
        for probe in cases {
            assert!(
                matches!(
                    empirical_sensitivity(&model, &probe, 2, &GridConfig::default()),
                    Err(QuantError::EmptyCalibration)
                ),
                "probe {probe:?} must be rejected"
            );
        }
    }

    #[test]
    fn empirical_sensitivity_is_thread_count_invariant() {
        let model = Model::new(&ModelConfig::test_tiny(16), 9);
        let probe: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect();
        let cfg = GridConfig::default();
        let seq = empirical_sensitivity_threads(&model, &probe, 2, &cfg, 1).unwrap();
        for threads in [2usize, 4] {
            let par = empirical_sensitivity_threads(&model, &probe, 2, &cfg, threads).unwrap();
            assert_eq!(seq, par, "{threads}-thread probe must be bit-identical");
        }
    }

    #[test]
    fn markdown_render_contains_all_layers() {
        let model = Model::new(&ModelConfig::test_tiny(16), 4);
        let segs = vec![(0..10).map(|i| (i % 16) as u32).collect::<Vec<u32>>()];
        let hs = crate::collect_hessians(&model, &segs, HessianMode::LayerInput).unwrap();
        let report = SensitivityReport::from_hessians(&hs);
        let md = report.to_markdown();
        assert!(md.contains("self_attn.q_proj"));
        assert!(md.contains("mlp.down_proj"));
        assert_eq!(md.lines().count(), 2 + report.len());
        let _ = LayerKind::ALL;
    }
}
