//! Attention-aware effective inputs — the heart of APTQ (§3.2).
//!
//! The paper replaces GPTQ's per-layer objective `‖WX − ŴX‖²` with the
//! attention-block objective `‖F(W) − F(Ŵ)‖²` (Eq. 5) and takes the
//! Levenberg–Marquardt Hessian `H = 2·F′(Ŵ)F′(Ŵ)ᵀ` (Eq. 7), with
//! per-projection Jacobians given by Eqs. (9), (10), (12), (13).
//!
//! The GPTQ update machinery needs one `d_in × d_in` Hessian shared
//! across output rows, i.e. a Kronecker factorization `JᵀJ ≈ R ⊗ H_in`.
//! This module therefore reduces each Jacobian to an **effective input**
//! whose Gram matrix is that input-side factor (see `DESIGN.md` §3 for
//! the full derivation and the approximations taken):
//!
//! - **`o_proj`** (Eq. 9): the Jacobian w.r.t. `W^O` is exactly
//!   `Concat(head₁..head_H)ᵀ·∂F/∂X`; with `F` the attention output,
//!   `∂F/∂X = I`, so the effective input is the concatenated heads —
//!   identical to GPTQ's input for this layer.
//! - **`v_proj`** (Eqs. 10–11): the Jacobian routes through the
//!   softmax-probability mixing `M = P·X` and the output projection
//!   `W^O`. Effective input per head: `P_h·X`, weighted by
//!   `s_h = ‖W^O_h‖²_F / d_head` (diagonal approximation of the
//!   output-side factor `W^O_h·W^O_hᵀ`); Hessians summed over heads.
//! - **`q_proj` / `k_proj`** (Eqs. 12–14): the Jacobian passes through
//!   the per-row softmax Jacobian `diag(p) − p·pᵀ`. We keep the exact
//!   per-token softmax sensitivity (`Σⱼ pᵢⱼ(1−pᵢⱼ)`, the Jacobian's
//!   trace) and fold the `K`/`Q` and `V·W^O` factors in as mean-field
//!   scales, giving a token-reweighted effective input
//!   `X̃ = diag(√w)·X`. Queries are weighted by their row sensitivity
//!   (Eq. 12); keys by their column sensitivity — how much probability
//!   mass flows *through* that key across all queries (Eq. 13).
//!
//! The net effect matches the paper's qualitative claim: tokens whose
//! attention distributions are sharp (softmax near one-hot: low
//! sensitivity) contribute less curvature, diffuse rows contribute more,
//! and value vectors are weighted by how much attention actually mixes
//! them — none of which plain GPTQ sees.

use aptq_lm::capture::BlockCapture;
use aptq_tensor::Matrix;

/// Scale factors derived from a head's downstream path, used by the Q/K
/// mean-field weights.
#[derive(Debug, Clone, Copy)]
struct HeadScales {
    /// `‖V_h·W^O_h‖²_F / (T·d_model)` — mean-square downstream map.
    downstream: f32,
    /// `1/d_k` score scaling (squared in the Hessian).
    inv_dk: f32,
}

/// Builds the effective input for `q_proj` (Eq. 12): the raw attention
/// input with per-**query**-token √weights from the softmax Jacobian.
///
/// `wo` is the block's output projection (`d_model × d_model`).
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn effective_input_q(cap: &BlockCapture, wo: &Matrix) -> Matrix {
    let weights = query_weights(cap, wo);
    reweight_rows(&cap.attn_input, &weights)
}

/// Builds the effective input for `k_proj` (Eq. 13): the raw attention
/// input with per-**key**-token √weights (probability mass routed through
/// each key, softmax-Jacobian weighted).
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn effective_input_k(cap: &BlockCapture, wo: &Matrix) -> Matrix {
    let weights = key_weights(cap, wo);
    reweight_rows(&cap.attn_input, &weights)
}

/// Builds the per-head effective inputs for `v_proj` (Eqs. 10–11):
/// `(s_h, P_h·X)` pairs whose weighted Grams sum to the value Hessian.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn effective_inputs_v(cap: &BlockCapture, wo: &Matrix) -> Vec<(f32, Matrix)> {
    let n_heads = cap.probs.len();
    let d_model = cap.attn_input.cols();
    // audit:allow(div): a capture always holds at least one attention head
    let d_head = d_model / n_heads;
    let mut out = Vec::with_capacity(n_heads);
    for (h, p) in cap.probs.iter().enumerate() {
        // s_h = ‖W^O_h‖²_F / d_head  (rows h·d_head.. of W^O).
        let wo_h = wo.slice_rows(h * d_head, (h + 1) * d_head);
        // audit:allow(div): d_head ≥ 1 — d_model is a positive multiple of n_heads
        let s_h = wo_h.frobenius_norm_sq() / d_head as f32;
        let mixed = p.matmul(&cap.attn_input); // P_h·X, T×d_model
        out.push((s_h, mixed));
    }
    out
}

/// Effective input for `o_proj` (Eq. 9): exactly the concatenated heads.
pub fn effective_input_o(cap: &BlockCapture) -> Matrix {
    cap.concat.clone()
}

/// Per-query-token weights for the Q Hessian.
///
/// `w[i] = Σ_h sens_h(i) · downstream_h · kscale_h / d_k` where
/// `sens_h(i) = Σ_j p_ij(1−p_ij)` is the trace of the softmax Jacobian
/// at query row `i`.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn query_weights(cap: &BlockCapture, wo: &Matrix) -> Vec<f32> {
    let t = cap.attn_input.rows();
    let n_heads = cap.probs.len();
    let d_model = cap.attn_input.cols();
    let d_head = d_model / n_heads;
    let mut w = vec![0.0f32; t];
    for h in 0..n_heads {
        let scales = head_scales(cap, wo, h);
        let kscale = slice_mean_sq(&cap.k_rot, h, d_head);
        let p = &cap.probs[h];
        for (i, wi) in w.iter_mut().enumerate() {
            let sens: f32 = p.row(i).iter().map(|&pp| pp * (1.0 - pp)).sum();
            *wi += sens * scales.downstream * kscale * scales.inv_dk;
        }
    }
    w
}

/// Per-key-token weights for the K Hessian: probability-Jacobian mass
/// arriving at key `j` summed over queries.
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
/// the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn key_weights(cap: &BlockCapture, wo: &Matrix) -> Vec<f32> {
    let t = cap.attn_input.rows();
    let n_heads = cap.probs.len();
    let d_model = cap.attn_input.cols();
    let d_head = d_model / n_heads;
    let mut w = vec![0.0f32; t];
    for h in 0..n_heads {
        let scales = head_scales(cap, wo, h);
        let qscale = slice_mean_sq(&cap.q_rot, h, d_head);
        let p = &cap.probs[h];
        for i in 0..t {
            for (j, &pij) in p.row(i).iter().enumerate() {
                w[j] += pij * (1.0 - pij) * scales.downstream * qscale * scales.inv_dk;
            }
        }
    }
    w
}

fn head_scales(cap: &BlockCapture, wo: &Matrix, h: usize) -> HeadScales {
    let n_heads = cap.probs.len();
    let d_model = cap.attn_input.cols();
    // audit:allow(div): a capture always holds at least one attention head
    let d_head = d_model / n_heads;
    let t = cap.attn_input.rows();
    let vh = cap.v.slice_cols(h * d_head, (h + 1) * d_head);
    let wo_h = wo.slice_rows(h * d_head, (h + 1) * d_head);
    let vo = vh.matmul(&wo_h); // T × d_model
    HeadScales {
        downstream: vo.frobenius_norm_sq() / (t * d_model) as f32,
        // audit:allow(div): d_head ≥ 1 — d_model is a positive multiple of n_heads
        inv_dk: 1.0 / d_head as f32,
    }
}

/// Mean squared entry of one head's slice of a `T × d_model` matrix.
fn slice_mean_sq(m: &Matrix, h: usize, d_head: usize) -> f32 {
    let s = m.slice_cols(h * d_head, (h + 1) * d_head);
    s.frobenius_norm_sq() / s.len().max(1) as f32
}

/// Returns `diag(√w)·X` (rows scaled by the square roots of `w`).
///
/// Weights are floored at a small positive value so no token is erased
/// entirely (a zero row would remove its curvature information and can
/// make the Hessian singular).
fn reweight_rows(x: &Matrix, weights: &[f32]) -> Matrix {
    assert_eq!(x.rows(), weights.len(), "reweight: row count mismatch");
    // Normalize so the average weight is 1: keeps Hessian magnitude (and
    // therefore trace sensitivity) comparable with the unweighted case.
    // audit:allow(accum): switching to f64 would change packed outputs bitwise
    let mean = weights.iter().sum::<f32>() / weights.len().max(1) as f32;
    let mean = if mean > 0.0 { mean } else { 1.0 };
    let mut out = x.clone();
    for (i, &w) in weights.iter().enumerate() {
        let scaled = ((w / mean).max(1e-4)).sqrt();
        for v in out.row_mut(i) {
            *v *= scaled;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::{Model, ModelConfig};

    fn capture() -> (BlockCapture, Matrix) {
        let cfg = ModelConfig::test_tiny(16);
        let model = Model::new(&cfg, 3);
        let (_, mut cap) = model.forward_capture(&[1, 2, 3, 4, 5, 6, 7]);
        let wo = model
            .layer_weight(aptq_lm::LayerRef {
                block: 0,
                kind: aptq_lm::LayerKind::O,
            })
            .clone();
        (cap.blocks.remove(0), wo)
    }

    #[test]
    fn effective_inputs_have_right_shapes() {
        let (cap, wo) = capture();
        let t = cap.attn_input.rows();
        let d = cap.attn_input.cols();
        assert_eq!(effective_input_q(&cap, &wo).shape(), (t, d));
        assert_eq!(effective_input_k(&cap, &wo).shape(), (t, d));
        assert_eq!(effective_input_o(&cap).shape(), (t, d));
        let vs = effective_inputs_v(&cap, &wo);
        assert_eq!(vs.len(), cap.probs.len());
        for (s, m) in &vs {
            assert!(*s > 0.0);
            assert_eq!(m.shape(), (t, d));
        }
    }

    #[test]
    fn o_effective_input_is_gptq_input() {
        // Eq. 9 reduces to the concat-heads input — identical to GPTQ.
        let (cap, _) = capture();
        assert_eq!(effective_input_o(&cap), cap.concat);
    }

    #[test]
    fn q_weights_differ_across_tokens() {
        // The whole point: tokens are weighted unequally by their softmax
        // sensitivity, unlike GPTQ's uniform weighting.
        let (cap, wo) = capture();
        let w = query_weights(&cap, &wo);
        let (lo, hi) = w
            .iter()
            .fold((f32::INFINITY, 0.0f32), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(hi > lo * 1.01, "weights should vary: {w:?}");
        assert!(w.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn first_token_has_zero_query_sensitivity() {
        // Token 0 attends only to itself: p = [1, 0, ...] → p(1−p) = 0.
        let (cap, wo) = capture();
        let w = query_weights(&cap, &wo);
        assert!(
            w[0].abs() < 1e-6,
            "one-hot softmax row has zero Jacobian trace"
        );
        // Later tokens have positive sensitivity.
        assert!(w[1..].iter().any(|&v| v > 0.0));
    }

    #[test]
    fn key_weights_concentrate_on_attended_tokens() {
        let (cap, wo) = capture();
        let w = key_weights(&cap, &wo);
        // The last key can only be attended by the last query; it should
        // typically carry less routed mass than early keys.
        assert!(w.iter().all(|&v| v >= 0.0));
        let total: f32 = w.iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn v_effective_input_mixes_tokens() {
        // P·X differs from X because attention mixes rows.
        let (cap, wo) = capture();
        let vs = effective_inputs_v(&cap, &wo);
        let (_, mixed) = &vs[0];
        assert_ne!(mixed, &cap.attn_input);
        // Row 0 attends only to itself: P[0,:] = e₀ → mixed row 0 == X row 0.
        for (a, b) in mixed.row(0).iter().zip(cap.attn_input.row(0)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn reweighting_preserves_average_scale() {
        let (cap, wo) = capture();
        let xq = effective_input_q(&cap, &wo);
        let ratio = xq.frobenius_norm_sq() / cap.attn_input.frobenius_norm_sq();
        // Normalized weights keep the overall energy within an order of
        // magnitude of the raw input.
        assert!(ratio > 0.05 && ratio < 20.0, "ratio {ratio}");
    }
}
