//! Bit-packing of quantization codes and the packed-tensor container.
//!
//! The deployment story of mixed 2/4-bit quantization is storage: packed
//! codes plus per-group parameters. [`PackedTensor`] is that storage
//! format; [`PackedTensor::dequantize`] reconstructs the dense matrix the
//! simulated-quantization evaluation uses.

use aptq_tensor::num::usize_f32;
use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::grid::{GroupParams, QuantGrid};

/// Packs sub-byte codes little-endian into a byte buffer.
///
/// # Panics
///
/// Panics if `bits` is 0, above 8, or any code exceeds the bit-width.
pub fn pack_codes(codes: &[u8], bits: u8) -> Vec<u8> {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let mask = ((1u16 << bits) - 1) as u8;
    let mut buf = Vec::with_capacity((codes.len() * bits as usize).div_ceil(8));
    let mut acc: u16 = 0;
    let mut nbits = 0u8;
    for &c in codes {
        assert!(c <= mask, "code {c} exceeds {bits}-bit range");
        acc |= u16::from(c) << nbits;
        nbits += bits;
        while nbits >= 8 {
            buf.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        buf.push((acc & 0xFF) as u8);
    }
    buf
}

/// Unpacks `count` codes of width `bits` from a buffer produced by
/// [`pack_codes`].
///
/// # Panics
///
/// Panics if the buffer is too short for `count` codes.
pub fn unpack_codes(data: &[u8], bits: u8, count: usize) -> Vec<u8> {
    unpack_codes_at(data, bits, 0, count)
}

/// Unpacks `count` codes starting at code index `start` (i.e. bit
/// offset `start * bits`) from a buffer produced by [`pack_codes`].
///
/// This is the random-access variant the packed-weight forward pass
/// needs: a group whose first code does not land on a byte boundary is
/// decoded directly from its bit offset instead of re-unpacking the
/// whole stream (which would turn a per-group O(group) walk into
/// O(d_in · d_out) *per group*).
///
/// # Panics
///
/// Panics if the buffer is too short for `start + count` codes.
pub fn unpack_codes_at(data: &[u8], bits: u8, start: usize, count: usize) -> Vec<u8> {
    let mut out = vec![0u8; count];
    unpack_codes_at_into(data, bits, start, &mut out);
    out
}

/// [`unpack_codes_at`] writing into a caller-provided buffer — the
/// allocation-free variant the packed forward pass uses so its per-group
/// scratch is reused across the whole matmul instead of reallocated per
/// group. Decodes exactly `out.len()` codes starting at code index
/// `start`.
///
/// # Panics
///
/// Panics if the buffer is too short for `start + out.len()` codes.
pub fn unpack_codes_at_into(data: &[u8], bits: u8, start: usize, out: &mut [u8]) {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let count = out.len();
    let start_bit = start * bits as usize;
    let needed = (start_bit + count * bits as usize).div_ceil(8);
    assert!(
        data.len() >= needed,
        "buffer too short: {} < {needed}",
        data.len()
    );
    let mask = (1u16 << bits) - 1;
    let mut idx = start_bit / 8;
    let skip = (start_bit % 8) as u8;
    let mut acc: u32 = 0;
    let mut nbits = 0u8;
    if count > 0 && skip > 0 {
        // Prime the accumulator with the tail of the straddled byte.
        acc = u32::from(data[idx]) >> skip;
        nbits = 8 - skip;
        idx += 1;
    }
    for slot in out.iter_mut() {
        while nbits < bits {
            acc |= u32::from(data[idx]) << nbits;
            idx += 1;
            nbits += 8;
        }
        *slot = (acc as u16 & mask) as u8;
        acc >>= bits;
        nbits -= bits;
    }
}

/// A quantized weight matrix in storage form: packed codes + per-group
/// parameters + the grid that interprets them.
///
/// Codes are stored row-major over the `d_in × d_out` layout used by the
/// model's [`aptq_lm::linear::Linear`]; groups run along the input
/// (row) dimension, with one [`GroupParams`] per `(group, column)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedTensor {
    /// Input dimension (rows).
    pub d_in: usize,
    /// Output dimension (columns).
    pub d_out: usize,
    /// Group size along the input dimension.
    pub group_size: usize,
    /// The grid codes were produced with.
    pub grid: QuantGrid,
    /// Packed codes (row-major).
    pub data: Vec<u8>,
    /// `(n_groups × d_out)` parameters, group-major.
    pub params: Vec<GroupParams>,
}

impl PackedTensor {
    /// Packs a full code matrix (`d_in × d_out`, row-major).
    ///
    /// # Panics
    ///
    /// Panics if sizes are inconsistent.
    pub fn from_codes(
        codes: &[u8],
        d_in: usize,
        d_out: usize,
        group_size: usize,
        grid: QuantGrid,
        params: Vec<GroupParams>,
    ) -> Self {
        assert_eq!(codes.len(), d_in * d_out, "code count mismatch");
        let n_groups = d_in.div_ceil(group_size);
        assert_eq!(params.len(), n_groups * d_out, "params count mismatch");
        let data = pack_codes(codes, grid.bits());
        crate::invariants::pack_roundtrip(codes, &data, grid.bits(), "PackedTensor::from_codes");
        PackedTensor {
            d_in,
            d_out,
            group_size,
            grid,
            data,
            params,
        }
    }

    /// Number of groups along the input dimension.
    pub fn n_groups(&self) -> usize {
        self.d_in.div_ceil(self.group_size)
    }

    /// Storage size in bytes: packed codes + fp16-equivalent parameters
    /// (scale as 2 bytes, zero as 1 byte per group entry).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + self.params.len() * 3
    }

    /// Effective bits per weight including group metadata.
    pub fn effective_bits(&self) -> f32 {
        usize_f32(self.storage_bytes()) * 8.0 / usize_f32(self.d_in * self.d_out)
    }

    /// Reconstructs the dense dequantized matrix.
    pub fn dequantize(&self) -> Matrix {
        let codes = unpack_codes(&self.data, self.grid.bits(), self.d_in * self.d_out);
        let mut m = Matrix::zeros(self.d_in, self.d_out);
        for i in 0..self.d_in {
            let g = i / self.group_size;
            for j in 0..self.d_out {
                let p = self.params[g * self.d_out + j];
                m[(i, j)] = self.grid.dequantize(codes[i * self.d_out + j], p);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip_all_widths() {
        for bits in 1..=8u8 {
            let max = 1usize << bits;
            let codes: Vec<u8> = (0..57).map(|i| (i * 7 % max) as u8).collect();
            let packed = pack_codes(&codes, bits);
            let back = unpack_codes(&packed, bits, codes.len());
            assert_eq!(back, codes, "bits={bits}");
        }
    }

    #[test]
    fn unpack_at_matches_full_unpack_every_offset() {
        // Every (bits, start) combination — including starts whose bit
        // offset straddles a byte — must agree with the full unpack.
        for bits in 1..=8u8 {
            let max = 1usize << bits;
            let codes: Vec<u8> = (0..61).map(|i| (i * 5 % max) as u8).collect();
            let packed = pack_codes(&codes, bits);
            for start in 0..codes.len() {
                let rest = codes.len() - start;
                for count in [0, 1.min(rest), 3.min(rest), rest] {
                    let got = unpack_codes_at(&packed, bits, start, count);
                    assert_eq!(
                        got,
                        &codes[start..start + count],
                        "bits={bits} start={start} count={count}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn unpack_at_rejects_out_of_range() {
        let packed = pack_codes(&[1, 2, 3], 4);
        let _ = unpack_codes_at(&packed, 4, 3, 2);
    }

    #[test]
    fn packing_is_compact() {
        let codes = vec![3u8; 100];
        assert_eq!(pack_codes(&codes, 2).len(), 25);
        assert_eq!(pack_codes(&codes, 4).len(), 50);
        let codes = vec![1u8; 9];
        assert_eq!(pack_codes(&codes, 1).len(), 2); // 9 bits → 2 bytes
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_oversized_codes() {
        pack_codes(&[4], 2);
    }

    #[test]
    fn packed_tensor_roundtrip() {
        let grid = QuantGrid::int(4, true);
        let d_in = 8;
        let d_out = 3;
        let group_size = 4;
        // Build a weight matrix, quantize per (group, column).
        let w = Matrix::from_fn(d_in, d_out, |i, j| ((i * 3 + j) as f32 * 0.37).sin());
        let n_groups = d_in / group_size;
        let mut codes = vec![0u8; d_in * d_out];
        let mut params = vec![
            GroupParams {
                scale: 1.0,
                zero: 0
            };
            n_groups * d_out
        ];
        let mut expect = Matrix::zeros(d_in, d_out);
        for g in 0..n_groups {
            for j in 0..d_out {
                let col: Vec<f32> = (0..group_size)
                    .map(|r| w[(g * group_size + r, j)])
                    .collect();
                let p = grid.fit_params(&col);
                params[g * d_out + j] = p;
                for r in 0..group_size {
                    let (c, d) = grid.quantize(col[r], p);
                    codes[(g * group_size + r) * d_out + j] = c;
                    expect[(g * group_size + r, j)] = d;
                }
            }
        }
        let packed = PackedTensor::from_codes(&codes, d_in, d_out, group_size, grid, params);
        assert_eq!(packed.dequantize(), expect);
        assert_eq!(packed.n_groups(), 2);
    }

    #[test]
    fn effective_bits_accounts_for_metadata() {
        let grid = QuantGrid::int(4, true);
        let d_in = 64;
        let d_out = 64;
        let codes = vec![0u8; d_in * d_out];
        let params = vec![
            GroupParams {
                scale: 1.0,
                zero: 0
            };
            (d_in / 32) * d_out
        ];
        let packed = PackedTensor::from_codes(&codes, d_in, d_out, 32, grid, params);
        let eff = packed.effective_bits();
        assert!(eff > 4.0, "metadata adds overhead: {eff}");
        assert!(eff < 5.5, "overhead should be small: {eff}");
    }

    #[test]
    fn storage_shrinks_with_fewer_bits() {
        let d_in = 32;
        let d_out = 32;
        let params4 = vec![
            GroupParams {
                scale: 1.0,
                zero: 0
            };
            d_out
        ];
        let p4 = PackedTensor::from_codes(
            &vec![0u8; d_in * d_out],
            d_in,
            d_out,
            32,
            QuantGrid::int(4, true),
            params4.clone(),
        );
        let p2 = PackedTensor::from_codes(
            &vec![0u8; d_in * d_out],
            d_in,
            d_out,
            32,
            QuantGrid::int(2, true),
            params4,
        );
        assert!(p2.storage_bytes() < p4.storage_bytes());
    }

    #[test]
    fn serde_roundtrip() {
        let grid = QuantGrid::int(2, true);
        let packed = PackedTensor::from_codes(
            &[0, 1, 2, 3],
            2,
            2,
            2,
            grid,
            vec![
                GroupParams {
                    scale: 0.5,
                    zero: 1
                };
                2
            ],
        );
        let json = serde_json::to_string(&packed).unwrap();
        let back: PackedTensor = serde_json::from_str(&json).unwrap();
        assert_eq!(packed, back);
    }
}
