//! Quantization grids: uniform integer (asymmetric/symmetric), binary,
//! and FP4 (E2M1) — everything the paper's methods and baselines need.

use serde::{Deserialize, Serialize};

use aptq_tensor::num::{round_i32, round_i64, small_i32_f32, usize_f32};

use crate::QuantError;

/// Per-group quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupParams {
    /// Step size.
    pub scale: f32,
    /// Integer zero point (0 for symmetric grids).
    pub zero: i32,
}

/// Grid family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridKind {
    /// Uniform integer grid (GPTQ/APTQ/RTN/OWQ).
    Int {
        /// Bit-width (1..=8).
        bits: u8,
        /// Asymmetric grids fit `[min, max]`; symmetric fit `[-a, a]`.
        asymmetric: bool,
    },
    /// Sign × per-group mean magnitude (PB-LLM's binarized portion).
    Binary,
    /// 4-bit float E2M1 (FPQ baseline): ±{0, .5, 1, 1.5, 2, 3, 4, 6}·scale.
    Fp4,
}

/// A quantization grid: maps a group of weights to codes and back.
///
/// # Example
///
/// ```
/// use aptq_core::grid::QuantGrid;
///
/// let grid = QuantGrid::int(2, true);
/// let (codes, deq, _) = grid.quantize_group(&[-1.0, -0.3, 0.3, 1.0]);
/// assert!(codes.iter().all(|&c| c < 4)); // 2-bit codes
/// assert_eq!(deq.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantGrid {
    kind: GridKind,
}

/// FP4 E2M1 positive magnitude levels.
const FP4_LEVELS: [f32; 8] = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];

impl QuantGrid {
    /// Uniform integer grid.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8` (use [`QuantGrid::try_int`]
    /// for a fallible path).
    pub fn int(bits: u8, asymmetric: bool) -> Self {
        Self::try_int(bits, asymmetric).expect("bits must be in 1..=8")
    }

    /// Fallible constructor for integer grids.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] outside `1..=8`.
    pub fn try_int(bits: u8, asymmetric: bool) -> Result<Self, QuantError> {
        if !(1..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits { bits });
        }
        Ok(QuantGrid {
            kind: GridKind::Int { bits, asymmetric },
        })
    }

    /// Binary (sign) grid.
    pub fn binary() -> Self {
        QuantGrid {
            kind: GridKind::Binary,
        }
    }

    /// FP4 E2M1 grid.
    pub fn fp4() -> Self {
        QuantGrid {
            kind: GridKind::Fp4,
        }
    }

    /// The grid family.
    pub fn kind(&self) -> GridKind {
        self.kind
    }

    /// Effective storage bits per weight (excluding group metadata).
    pub fn bits(&self) -> u8 {
        match self.kind {
            GridKind::Int { bits, .. } => bits,
            GridKind::Binary => 1,
            GridKind::Fp4 => 4,
        }
    }

    /// Fits group parameters to a weight group.
    ///
    /// For int grids this is min/max (asymmetric) or abs-max (symmetric)
    /// calibration; degenerate all-equal groups produce a tiny positive
    /// scale so quantization never divides by zero.
    pub fn fit_params(&self, group: &[f32]) -> GroupParams {
        match self.kind {
            GridKind::Int { bits, asymmetric } => {
                let levels = (1u32 << bits) - 1;
                if asymmetric {
                    let (mut lo, mut hi) = min_max(group);
                    // Grid must contain zero so that zero weights stay zero.
                    lo = lo.min(0.0);
                    hi = hi.max(0.0);
                    let range = (hi - lo).max(1e-8);
                    let scale = range / small_i32_f32(levels as i32);
                    let zero = round_i32(-lo / scale);
                    GroupParams { scale, zero }
                } else {
                    let amax = group.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
                    // Symmetric signed range: codes −2^(b−1)..2^(b−1)−1
                    let half = small_i32_f32(1i32 << (bits - 1)) - 1.0;
                    let scale = amax / half.max(1.0);
                    GroupParams {
                        scale,
                        zero: (1i32 << (bits - 1)) - 1,
                    }
                }
            }
            GridKind::Binary => {
                let mean_abs = if group.is_empty() {
                    1e-8
                } else {
                    // audit:allow(accum): bounded group (≤ group_size); f32 sum is the packed-scale contract
                    group.iter().map(|v| v.abs()).sum::<f32>() / usize_f32(group.len())
                };
                GroupParams {
                    scale: mean_abs.max(1e-8),
                    zero: 0,
                }
            }
            GridKind::Fp4 => {
                let amax = group.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
                GroupParams {
                    scale: amax / FP4_LEVELS[7],
                    zero: 0,
                }
            }
        }
    }

    /// Quantizes one value under fixed params; returns `(code, dequant)`.
    pub fn quantize(&self, w: f32, p: GroupParams) -> (u8, f32) {
        match self.kind {
            GridKind::Int { bits, .. } => {
                // Asymmetric and symmetric grids share the clamp; they
                // differ only in the params fit by `fit_params`.
                let levels = (1i64 << bits) - 1;
                let q = (round_i64(w / p.scale) + i64::from(p.zero)).clamp(0, levels);
                (q as u8, small_i32_f32(q as i32 - p.zero) * p.scale)
            }
            GridKind::Binary => {
                if w >= 0.0 {
                    (1, p.scale)
                } else {
                    (0, -p.scale)
                }
            }
            GridKind::Fp4 => {
                let mag = w.abs() / p.scale;
                // Nearest E2M1 level.
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (i, &l) in FP4_LEVELS.iter().enumerate() {
                    let d = (mag - l).abs();
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                let sign = if w < 0.0 { 1u8 } else { 0u8 };
                let code = (sign << 3) | best as u8;
                let val = FP4_LEVELS[best] * p.scale * if w < 0.0 { -1.0 } else { 1.0 };
                (code, val)
            }
        }
    }

    /// Dequantizes a code under fixed params.
    pub fn dequantize(&self, code: u8, p: GroupParams) -> f32 {
        match self.kind {
            GridKind::Int { .. } => small_i32_f32(i32::from(code) - p.zero) * p.scale,
            GridKind::Binary => {
                if code == 1 {
                    p.scale
                } else {
                    -p.scale
                }
            }
            GridKind::Fp4 => {
                let mag = FP4_LEVELS[(code & 0b111) as usize] * p.scale;
                if code & 0b1000 != 0 {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    /// Quantizes a whole group: fits params, then quantizes every value.
    ///
    /// Returns `(codes, dequantized, params)`.
    ///
    /// # Determinism
    ///
    /// Pure arithmetic over the group plus `aptq_tensor::parallel` matmuls
    /// (order-preserving row bands); bit-identical at every `APTQ_THREADS`.
    pub fn quantize_group(&self, group: &[f32]) -> (Vec<u8>, Vec<f32>, GroupParams) {
        let p = self.fit_params(group);
        let mut codes = Vec::with_capacity(group.len());
        let mut deq = Vec::with_capacity(group.len());
        for &w in group {
            let (c, d) = self.quantize(w, p);
            codes.push(c);
            deq.push(d);
        }
        (codes, deq, p)
    }
}

/// Grid + group-size configuration shared by the quantization methods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Whether int grids fit `[min,max]` (true) or `[-a,a]` (false).
    pub asymmetric: bool,
    /// Weights per quantization group along the input dimension.
    ///
    /// The paper uses 128 on LLaMA-7B (d=4096). Our models have
    /// `d_model ∈ {32, 36}`, so the default of 32 is one group per
    /// attention column (two per FFN column) — deliberately coarse, the
    /// regime where 2-bit quantization visibly hurts and second-order
    /// methods have something to recover (the `ablations` bench §A
    /// sweeps this).
    pub group_size: usize,
    /// GPTQ lazy-update block size.
    pub block_size: usize,
    /// Relative Hessian damping (`λ = damp · mean(diag H)`).
    pub damp: f32,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            asymmetric: true,
            group_size: 32,
            block_size: 32,
            damp: 0.01,
        }
    }
}

fn min_max(xs: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_grid_roundtrip_error_bounded() {
        for bits in [2u8, 3, 4, 8] {
            let grid = QuantGrid::int(bits, true);
            let group: Vec<f32> = (0..64)
                .map(|i| ((i * 37 % 101) as f32) * 0.01 - 0.5)
                .collect();
            let (_, deq, p) = grid.quantize_group(&group);
            for (w, d) in group.iter().zip(deq.iter()) {
                assert!(
                    (w - d).abs() <= p.scale * 0.5 + 1e-6,
                    "bits={bits}: |{w} - {d}| > step/2 = {}",
                    p.scale * 0.5
                );
            }
        }
    }

    #[test]
    fn more_bits_less_error() {
        let group: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.7).sin()).collect();
        let err = |bits: u8| {
            let (_, deq, _) = QuantGrid::int(bits, true).quantize_group(&group);
            group
                .iter()
                .zip(deq.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(2) > err(3));
        assert!(err(3) > err(4));
        assert!(err(4) > err(8));
    }

    #[test]
    fn codes_fit_bit_width() {
        for bits in 1..=8u8 {
            let grid = QuantGrid::int(bits, true);
            let group: Vec<f32> = (0..40).map(|i| (i as f32 - 20.0) * 0.1).collect();
            let (codes, _, _) = grid.quantize_group(&group);
            let max_code = (1u32 << bits) - 1;
            assert!(codes.iter().all(|&c| (c as u32) <= max_code), "bits={bits}");
        }
    }

    #[test]
    fn zero_weight_stays_near_zero() {
        // Asymmetric grids include zero in the range; quantizing 0 must
        // give back ~0 (within a step) even for skewed groups.
        let grid = QuantGrid::int(4, true);
        let group = [0.0f32, 5.0, 6.0, 7.0];
        let (_, deq, p) = grid.quantize_group(&group);
        assert!(deq[0].abs() <= p.scale * 0.5 + 1e-6);
    }

    #[test]
    fn symmetric_grid_is_signed() {
        let grid = QuantGrid::int(4, false);
        let (_, deq, _) = grid.quantize_group(&[-1.0, 1.0]);
        assert!(deq[0] < 0.0);
        assert!(deq[1] > 0.0);
        assert!(
            (deq[0] + deq[1]).abs() < 0.2,
            "symmetric grid should be ~balanced"
        );
    }

    #[test]
    fn degenerate_group_is_safe() {
        for grid in [
            QuantGrid::int(4, true),
            QuantGrid::int(2, false),
            QuantGrid::fp4(),
        ] {
            let (_, deq, p) = grid.quantize_group(&[0.0, 0.0, 0.0]);
            assert!(p.scale > 0.0);
            assert!(deq.iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    fn try_int_rejects_bad_bits() {
        assert!(matches!(
            QuantGrid::try_int(0, true),
            Err(QuantError::UnsupportedBits { bits: 0 })
        ));
        assert!(matches!(
            QuantGrid::try_int(9, true),
            Err(QuantError::UnsupportedBits { bits: 9 })
        ));
        assert!(QuantGrid::try_int(8, false).is_ok());
    }

    #[test]
    fn binary_grid_uses_sign_and_mean_magnitude() {
        let grid = QuantGrid::binary();
        let group = [0.4f32, -0.2, 0.6, -0.8];
        let (codes, deq, p) = grid.quantize_group(&group);
        let mean_abs = (0.4 + 0.2 + 0.6 + 0.8) / 4.0;
        assert!((p.scale - mean_abs).abs() < 1e-6);
        assert_eq!(codes, vec![1, 0, 1, 0]);
        assert_eq!(deq, vec![p.scale, -p.scale, p.scale, -p.scale]);
        assert_eq!(grid.bits(), 1);
    }

    #[test]
    fn fp4_grid_hits_levels_exactly() {
        let grid = QuantGrid::fp4();
        // Max magnitude 6.0 → scale 1.0; all level values exact.
        let group = [6.0f32, 3.0, 1.5, 0.5, -2.0, -6.0, 0.0, 4.0];
        let (codes, deq, _) = grid.quantize_group(&group);
        assert_eq!(deq, vec![6.0, 3.0, 1.5, 0.5, -2.0, -6.0, 0.0, 4.0]);
        assert!(codes.iter().all(|&c| c < 16));
        assert_eq!(grid.bits(), 4);
    }

    #[test]
    fn fp4_relative_precision_beats_int4_for_heavy_tails() {
        // A group with one large outlier and a body of mid-scale values:
        // FP4's denser levels near zero (0.5 steps vs INT4's ~0.86 step
        // at this range) should win.
        let mut group = vec![6.0f32];
        group.extend((0..31).map(|i| {
            let mag = 0.4 + 0.1 * ((i % 4) as f32);
            if i % 2 == 0 {
                mag
            } else {
                -mag
            }
        }));
        let err = |grid: QuantGrid| {
            let (_, deq, _) = grid.quantize_group(&group);
            group
                .iter()
                .zip(deq.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(QuantGrid::fp4()) < err(QuantGrid::int(4, false)));
    }

    #[test]
    fn dequantize_matches_quantize_output() {
        for grid in [
            QuantGrid::int(4, true),
            QuantGrid::int(2, false),
            QuantGrid::fp4(),
            QuantGrid::binary(),
        ] {
            let group: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.23).collect();
            let p = grid.fit_params(&group);
            for &w in &group {
                let (c, d) = grid.quantize(w, p);
                assert_eq!(grid.dequantize(c, p), d);
            }
        }
    }

    #[test]
    fn grid_config_default_is_sane() {
        let cfg = GridConfig::default();
        assert!(cfg.group_size > 0);
        assert!(cfg.block_size > 0);
        assert!(cfg.damp > 0.0);
    }
}
