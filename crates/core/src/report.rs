//! Quantization run reports: per-layer outcomes, size accounting and
//! rendering helpers used by `EXPERIMENTS.md` and the bench harness.

use aptq_lm::{LayerRef, Model};
use serde::{Deserialize, Serialize};

/// Per-layer quantization outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerOutcome {
    /// Which layer.
    pub layer: LayerRef,
    /// Assigned bit-width (16 = kept in float).
    pub bits: u8,
    /// Hessian-weighted reconstruction error (0 for float-kept layers).
    pub recon_error: f32,
    /// Packed storage bytes for this layer.
    pub storage_bytes: usize,
}

/// Summary of one quantization run over a whole model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Method name, e.g. `"APTQ-75%"`.
    pub method: String,
    /// Weight-averaged bit-width over quantized layers.
    pub avg_bits: f32,
    /// Per-layer outcomes in canonical order.
    pub layers: Vec<LayerOutcome>,
    /// Total packed storage (codes + group metadata), bytes.
    pub quantized_bytes: usize,
    /// The fp16 baseline size of the same layers, bytes.
    pub fp16_bytes: usize,
}

impl QuantReport {
    /// Assembles a report; average bits are weighted by layer weight
    /// counts taken from `model`.
    pub fn new(method: impl Into<String>, model: &Model, layers: Vec<LayerOutcome>) -> Self {
        let mut weighted = 0.0f64;
        // Integer weight count so the emptiness guard below is exact.
        let mut total_weights = 0usize;
        let mut quantized_bytes = 0usize;
        let mut fp16_bytes = 0usize;
        for o in &layers {
            let n = model.layer_weight(o.layer).len();
            weighted += o.bits as f64 * n as f64;
            total_weights += n;
            quantized_bytes += o.storage_bytes;
            fp16_bytes += n * 2;
        }
        let avg_bits = if total_weights == 0 {
            0.0
        } else {
            (weighted / total_weights as f64) as f32
        };
        QuantReport {
            method: method.into(),
            avg_bits,
            layers,
            quantized_bytes,
            fp16_bytes,
        }
    }

    /// Compression ratio vs fp16 (>1 means smaller).
    pub fn compression_ratio(&self) -> f32 {
        if self.quantized_bytes == 0 {
            0.0
        } else {
            self.fp16_bytes as f32 / self.quantized_bytes as f32
        }
    }

    /// Sum of per-layer reconstruction errors.
    pub fn total_recon_error(&self) -> f32 {
        self.layers.iter().map(|l| l.recon_error).sum()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: avg {:.2} bits, {:.2}x smaller than fp16, Σrecon {:.4}",
            self.method,
            self.avg_bits,
            self.compression_ratio(),
            self.total_recon_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::{LayerKind, ModelConfig};

    #[test]
    fn report_accounts_bits_and_bytes() {
        let model = Model::new(&ModelConfig::test_tiny(16), 0);
        let refs = model.layer_refs();
        let layers: Vec<LayerOutcome> = refs
            .iter()
            .map(|&layer| LayerOutcome {
                layer,
                bits: 4,
                recon_error: 0.1,
                storage_bytes: model.layer_weight(layer).len() / 2,
            })
            .collect();
        let report = QuantReport::new("GPTQ", &model, layers);
        assert_eq!(report.avg_bits, 4.0);
        assert!((report.compression_ratio() - 4.0).abs() < 1e-5);
        assert!(report.summary().contains("GPTQ"));
        assert!(report.total_recon_error() > 0.0);
    }

    #[test]
    fn mixed_bits_average_correctly() {
        let model = Model::new(&ModelConfig::test_tiny(16), 0);
        let refs = model.layer_refs();
        // Q layers (d×d) at 4 bits, everything else at 2.
        let layers: Vec<LayerOutcome> = refs
            .iter()
            .map(|&layer| LayerOutcome {
                layer,
                bits: if layer.kind == LayerKind::Q { 4 } else { 2 },
                recon_error: 0.0,
                storage_bytes: 1,
            })
            .collect();
        let report = QuantReport::new("mix", &model, layers);
        assert!(report.avg_bits > 2.0 && report.avg_bits < 4.0);
    }

    #[test]
    fn empty_report_is_benign() {
        let model = Model::new(&ModelConfig::test_tiny(16), 0);
        let report = QuantReport::new("none", &model, vec![]);
        assert_eq!(report.avg_bits, 0.0);
        assert_eq!(report.compression_ratio(), 0.0);
    }
}
