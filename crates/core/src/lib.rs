//! # aptq-core
//!
//! The quantization library of the APTQ reproduction — the paper's
//! primary contribution plus every baseline it compares against.
//!
//! ## What the paper proposes (and where it lives here)
//!
//! 1. **Attention-aware Hessian quantization** (§3.2, Eqs. 5–17).
//!    GPTQ minimizes `‖WX − ŴX‖²` per layer with Hessian `H = 2XXᵀ`.
//!    APTQ minimizes `‖F(W) − F(Ŵ)‖²` where `F` is the whole attention
//!    output — including the softmax — and takes the Levenberg–Marquardt
//!    Hessian `H = 2·F′F′ᵀ` (Eq. 7). Module [`attn`] builds those
//!    Hessians from the per-projection Jacobians of Eqs. (9)–(15);
//!    module [`engine`] runs the shared OBQ/GPTQ column-update machinery
//!    (Eqs. 16–17, Cholesky form) under whichever Hessian it is given.
//! 2. **Hessian-trace mixed precision** (§3.3, Eq. 18). Module [`trace`]
//!    computes the average-trace sensitivity per layer; module [`mixed`]
//!    allocates 4-bit vs 2-bit layer budgets for a target 4-bit ratio
//!    `R`, against the manual block-wise baseline of the Table 3
//!    ablation.
//!
//! ## Baselines
//!
//! [`methods`] implements every comparator in Tables 1–2: RTN, GPTQ,
//! OWQ-style outlier-kept quantization, PB-LLM-style partial
//! binarization, SmoothQuant-style scale migration, FPQ-style 4-bit
//! floats, and an LLM-QAT-style data-free quantization-aware finetune.
//!
//! ## Example
//!
//! ```
//! use aptq_core::grid::{GridConfig, QuantGrid};
//!
//! let grid = QuantGrid::int(4, true);
//! let w = [0.31f32, -0.77, 0.02, 0.55];
//! let (codes, deq, params) = grid.quantize_group(&w);
//! assert_eq!(codes.len(), 4);
//! // Round-trip error is bounded by half a step.
//! let step = params.scale;
//! for (orig, back) in w.iter().zip(deq.iter()) {
//!     assert!((orig - back).abs() <= step * 0.5 + 1e-6);
//! }
//! # let _ = GridConfig::default();
//! ```

pub mod attn;
pub mod calib;
pub mod engine;
pub mod grid;
pub mod hessian;
pub mod invariants;
pub mod methods;
pub mod mixed;
pub mod pack;
pub mod plan;
pub mod report;
pub mod session;
pub mod trace;

pub use calib::collect_hessians;
pub use hessian::{HessianMode, LayerHessian};
pub use mixed::{AllocationPolicy, MixedPrecisionAllocator};
pub use plan::QuantPlan;
pub use report::QuantReport;
pub use session::QuantSession;

/// Errors surfaced by the quantization pipelines.
#[derive(Debug)]
pub enum QuantError {
    /// The Hessian could not be factorized even after damping escalation.
    HessianNotInvertible {
        /// Display name of the offending layer.
        layer: String,
    },
    /// Calibration data was empty or produced no tokens.
    EmptyCalibration,
    /// A plan referenced a layer that does not exist in the model.
    UnknownLayer {
        /// Display name of the missing layer.
        layer: String,
    },
    /// Requested bit-width is unsupported.
    UnsupportedBits {
        /// The requested width.
        bits: u8,
    },
    /// A ratio parameter was outside `[0, 1]`.
    InvalidRatio {
        /// The offending value.
        ratio: f32,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::HessianNotInvertible { layer } => {
                write!(
                    f,
                    "hessian for layer {layer} is not invertible even after damping"
                )
            }
            QuantError::EmptyCalibration => {
                write!(f, "calibration set is empty")
            }
            QuantError::UnknownLayer { layer } => {
                write!(f, "plan references unknown layer {layer}")
            }
            QuantError::UnsupportedBits { bits } => {
                write!(f, "unsupported bit-width {bits} (expected 1..=8)")
            }
            QuantError::InvalidRatio { ratio } => {
                write!(f, "ratio {ratio} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format() {
        let e = QuantError::HessianNotInvertible {
            layer: "layers.0.self_attn.q_proj".into(),
        };
        assert!(e.to_string().contains("q_proj"));
        assert!(QuantError::EmptyCalibration.to_string().contains("empty"));
        assert!(QuantError::UnsupportedBits { bits: 9 }
            .to_string()
            .contains('9'));
        assert!(QuantError::InvalidRatio { ratio: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(QuantError::UnknownLayer { layer: "x".into() }
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
