//! Quantization plans: the per-layer bit-width assignment and the
//! average-bits accounting of Eq. (18).

use std::collections::BTreeMap;

use aptq_artifact::{ArtifactError, ArtifactKind, Fnv64};
use aptq_lm::{LayerRef, LmError, Model};
use serde::{Deserialize, Serialize};

/// A per-layer bit-width assignment over a model's quantizable layers.
///
/// # Example
///
/// ```
/// use aptq_core::plan::QuantPlan;
/// use aptq_lm::{Model, ModelConfig};
///
/// let model = Model::new(&ModelConfig::test_tiny(16), 0);
/// let plan = QuantPlan::uniform(&model, 4);
/// assert_eq!(plan.avg_bits(&model), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantPlan {
    bits: BTreeMap<LayerRef, u8>,
}

impl QuantPlan {
    /// A plan assigning the same bit-width to every layer.
    pub fn uniform(model: &Model, bits: u8) -> Self {
        QuantPlan {
            bits: model.layer_refs().into_iter().map(|r| (r, bits)).collect(),
        }
    }

    /// Builds a plan from explicit assignments.
    pub fn from_assignments(bits: BTreeMap<LayerRef, u8>) -> Self {
        QuantPlan { bits }
    }

    /// Bit-width for a layer (if assigned).
    pub fn bits_for(&self, r: LayerRef) -> Option<u8> {
        self.bits.get(&r).copied()
    }

    /// Overrides one layer's assignment.
    pub fn set_bits(&mut self, r: LayerRef, bits: u8) {
        self.bits.insert(r, bits);
    }

    /// Iterates `(layer, bits)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerRef, u8)> + '_ {
        self.bits.iter().map(|(&r, &b)| (r, b))
    }

    /// Number of assigned layers.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Weight-count-weighted average bit-width over the plan.
    ///
    /// This is the observable the paper's Eq. (18)
    /// (`avg = 4R + 2(1−R)`) predicts when layers are split between
    /// 4-bit and 2-bit.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a layer missing from `model`.
    pub fn avg_bits(&self, model: &Model) -> f32 {
        let mut weighted = 0.0f64;
        // Integer weight count: the emptiness guard below is exact, not
        // a float comparison.
        let mut total = 0usize;
        for (&r, &b) in &self.bits {
            let n = model.layer_weight(r).len();
            weighted += b as f64 * n as f64;
            total += n;
        }
        if total == 0 {
            0.0
        } else {
            (weighted / total as f64) as f32
        }
    }

    /// Serializes the plan into a checksummed [`aptq_artifact`]
    /// envelope (kind `plan`, one `bits` section hashing every
    /// `(layer, bits)` assignment in canonical order).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] on serialization failure.
    pub fn to_envelope_json(&self) -> Result<String, LmError> {
        let payload = serde_json::to_string(self)
            .map_err(|e| LmError::Checkpoint(ArtifactError::Malformed(e.to_string())))?;
        let text = aptq_artifact::seal(ArtifactKind::Plan, &self.section_checksums(), &payload)?;
        Ok(text)
    }

    /// Restores a plan from a [`QuantPlan::to_envelope_json`]
    /// artifact, validating the header, the payload checksum, and the
    /// `bits` section against the decoded assignments.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] wrapping the structured
    /// [`ArtifactError`] — never panics, even on truncated or
    /// bit-flipped input.
    pub fn from_envelope_json(text: &str) -> Result<QuantPlan, LmError> {
        let opened = aptq_artifact::open(ArtifactKind::Plan, text)?;
        let plan: QuantPlan = serde_json::from_str(opened.payload)
            .map_err(|e| LmError::Checkpoint(ArtifactError::Malformed(e.to_string())))?;
        aptq_artifact::verify_sections(&opened.sections, &plan.section_checksums())?;
        Ok(plan)
    }

    /// The envelope's section checksums: one `bits` digest over every
    /// assignment in canonical (BTreeMap) order.
    fn section_checksums(&self) -> BTreeMap<String, u64> {
        let mut h = Fnv64::new();
        for (r, b) in self.iter() {
            h.eat_bytes(r.to_string().as_bytes());
            h.eat_u64(u64::from(b));
        }
        BTreeMap::from([("bits".to_string(), h.finish())])
    }

    /// The fraction of weights assigned at least `high_bits` (the `R` of
    /// Eq. 18).
    pub fn high_bit_ratio(&self, model: &Model, high_bits: u8) -> f32 {
        let mut high = 0usize;
        let mut total = 0usize;
        for (&r, &b) in &self.bits {
            let n = model.layer_weight(r).len();
            if b >= high_bits {
                high += n;
            }
            total += n;
        }
        if total == 0 {
            0.0
        } else {
            (high as f64 / total as f64) as f32
        }
    }
}

/// Eq. (18): the average bits of a 2/4 mixed plan with 4-bit ratio `R`.
pub fn eq18_average_bits(r: f32) -> f32 {
    4.0 * r + 2.0 * (1.0 - r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::{LayerKind, ModelConfig};

    fn model() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 0)
    }

    #[test]
    fn uniform_plan_covers_all_layers() {
        let m = model();
        let plan = QuantPlan::uniform(&m, 4);
        assert_eq!(plan.len(), m.layer_refs().len());
        assert_eq!(plan.avg_bits(&m), 4.0);
        assert_eq!(plan.high_bit_ratio(&m, 4), 1.0);
    }

    #[test]
    fn eq18_endpoints() {
        assert_eq!(eq18_average_bits(1.0), 4.0);
        assert_eq!(eq18_average_bits(0.0), 2.0);
        assert_eq!(eq18_average_bits(0.5), 3.0);
        assert!((eq18_average_bits(0.75) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn avg_bits_matches_eq18_for_weight_balanced_split() {
        let m = model();
        let mut plan = QuantPlan::uniform(&m, 2);
        // Assign 4 bits to layers until half the weights are covered.
        let refs = m.layer_refs();
        let total: usize = refs.iter().map(|&r| m.layer_weight(r).len()).sum();
        let mut covered = 0usize;
        for &r in &refs {
            if covered * 2 >= total {
                break;
            }
            plan.set_bits(r, 4);
            covered += m.layer_weight(r).len();
        }
        let ratio = plan.high_bit_ratio(&m, 4);
        let avg = plan.avg_bits(&m);
        assert!(
            (avg - eq18_average_bits(ratio)).abs() < 1e-4,
            "{avg} vs Eq18({ratio})"
        );
    }

    #[test]
    fn set_bits_overrides() {
        let m = model();
        let mut plan = QuantPlan::uniform(&m, 4);
        let r = LayerRef {
            block: 0,
            kind: LayerKind::Q,
        };
        plan.set_bits(r, 2);
        assert_eq!(plan.bits_for(r), Some(2));
        assert!(plan.avg_bits(&m) < 4.0);
    }

    #[test]
    fn plan_envelope_roundtrip() {
        let m = model();
        let mut plan = QuantPlan::uniform(&m, 4);
        plan.set_bits(
            LayerRef {
                block: 0,
                kind: LayerKind::Q,
            },
            2,
        );
        let text = plan.to_envelope_json().unwrap();
        assert!(aptq_artifact::is_envelope(&text));
        let restored = QuantPlan::from_envelope_json(&text).unwrap();
        assert_eq!(restored, plan);
    }

    #[test]
    fn plan_envelope_detects_tampering() {
        let m = model();
        let plan = QuantPlan::uniform(&m, 4);
        let text = plan.to_envelope_json().unwrap();
        // Flip one payload digit: 4-bit assignments become 3-bit.
        let body = text.find('\n').unwrap();
        let tampered = format!("{}{}", &text[..body], text[body..].replace("},4]", "},3]"));
        assert_ne!(tampered, text, "tamper must change the payload");
        let err = QuantPlan::from_envelope_json(&tampered).unwrap_err();
        assert!(matches!(err, LmError::Checkpoint(_)), "{err:?}");
        // Garbage input errors rather than panicking.
        assert!(QuantPlan::from_envelope_json("not an envelope").is_err());
    }

    #[test]
    fn iter_is_canonical_order() {
        let m = model();
        let plan = QuantPlan::uniform(&m, 4);
        let order: Vec<LayerRef> = plan.iter().map(|(r, _)| r).collect();
        assert_eq!(order, m.layer_refs());
    }
}
