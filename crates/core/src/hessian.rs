//! Hessian accumulation for layer-wise quantization.
//!
//! Both GPTQ and APTQ drive the same OBQ update machinery with a
//! `d_in × d_in` Hessian `H = 2·Σ X̃ᵀX̃` accumulated over calibration
//! samples. For GPTQ the effective input `X̃` is the raw layer input
//! (`H_F = 2X_FX_Fᵀ`, §3.2 of the paper); for APTQ it is the
//! attention-transformed effective input built in [`crate::attn`].

use aptq_tensor::{linalg, Matrix};
use serde::{Deserialize, Serialize};

/// Which Hessian family a pipeline collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HessianMode {
    /// GPTQ: `H = 2XXᵀ` with `X` the raw layer input.
    LayerInput,
    /// APTQ: attention-aware Hessians (Eqs. 9–15) for `q/k/v/o_proj`,
    /// layer-input Hessians for the feed-forward projections.
    AttentionAware,
}

impl std::fmt::Display for HessianMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HessianMode::LayerInput => f.write_str("layer-input (GPTQ)"),
            HessianMode::AttentionAware => f.write_str("attention-aware (APTQ)"),
        }
    }
}

/// Accumulates `H = 2·Σ X̃ᵀX̃` sample by sample.
#[derive(Debug, Clone)]
pub struct HessianAccumulator {
    h: Matrix,
    n_tokens: usize,
}

impl HessianAccumulator {
    /// Creates an accumulator for a `dim`-dimensional input space.
    pub fn new(dim: usize) -> Self {
        HessianAccumulator {
            h: Matrix::zeros(dim, dim),
            n_tokens: 0,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.h.rows()
    }

    /// Accumulates one sample's effective input (`T × dim`), optionally
    /// pre-weighted per token.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn update(&mut self, x: &Matrix) {
        assert_eq!(x.cols(), self.h.rows(), "hessian update: width mismatch");
        let gram = x.matmul_tn(x); // XᵀX
        self.h.axpy(2.0, &gram);
        self.n_tokens += x.rows();
    }

    /// Accumulates with a scalar weight (used by per-head sums).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn update_weighted(&mut self, x: &Matrix, weight: f32) {
        assert_eq!(x.cols(), self.h.rows(), "hessian update: width mismatch");
        let gram = x.matmul_tn(x);
        self.h.axpy(2.0 * weight, &gram);
        self.n_tokens += x.rows();
    }

    /// Like [`update_weighted`] but does **not** advance the token
    /// counter — for contributions that re-view tokens already counted
    /// (e.g. the per-head terms of the APTQ value Hessian, which all
    /// describe the same calibration tokens). Keeping the counter honest
    /// keeps the trace sensitivity comparable across layers.
    ///
    /// [`update_weighted`]: HessianAccumulator::update_weighted
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn update_weighted_uncounted(&mut self, x: &Matrix, weight: f32) {
        assert_eq!(x.cols(), self.h.rows(), "hessian update: width mismatch");
        let gram = x.matmul_tn(x);
        self.h.axpy(2.0 * weight, &gram);
    }

    /// Finalizes into a [`LayerHessian`].
    ///
    /// The sensitivity statistic (mean diagonal, the paper's "average
    /// Hessian trace") is taken **before** damping and normalized by the
    /// token count so layers are comparable.
    pub fn finish(self) -> LayerHessian {
        crate::invariants::hessian_well_formed(&self.h, "HessianAccumulator::finish");
        let dim = self.h.rows();
        let mean_trace = if dim == 0 || self.n_tokens == 0 {
            0.0
        } else {
            linalg::mean_diagonal(&self.h) / self.n_tokens as f32
        };
        LayerHessian {
            h: self.h,
            n_tokens: self.n_tokens,
            mean_trace,
        }
    }
}

/// A finalized per-layer Hessian plus its sensitivity statistic.
#[derive(Debug, Clone)]
pub struct LayerHessian {
    /// The (undamped) Hessian `2·Σ X̃ᵀX̃`.
    pub h: Matrix,
    /// Total calibration tokens accumulated.
    pub n_tokens: usize,
    /// Average Hessian trace per dimension per token — APTQ's layer
    /// sensitivity metric (§3.3).
    pub mean_trace: f32,
}

impl LayerHessian {
    /// A damped copy of the Hessian: `H + λ·mean(diag H)·I`, the
    /// Levenberg–Marquardt-style regularization GPTQ uses (`λ = damp`,
    /// typically 0.01).
    ///
    /// Degenerate all-zero Hessians receive an absolute floor so the
    /// Cholesky factorization always has a path to succeed.
    pub fn damped(&self, damp: f32) -> Matrix {
        let mut h = self.h.clone();
        let mean_diag = if h.rows() == 0 {
            0.0
        } else {
            linalg::mean_diagonal(&h)
        };
        let lambda = (damp * mean_diag).max(1e-6);
        linalg::damp_diagonal(&mut h, lambda);
        crate::invariants::hessian_well_formed(&h, "LayerHessian::damped");
        crate::invariants::damped_diagonal_positive(&h, "LayerHessian::damped");
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init;

    #[test]
    fn accumulator_matches_direct_formula() {
        let mut acc = HessianAccumulator::new(4);
        let x1 = init::normal(5, 4, 1.0, &mut init::rng(0));
        let x2 = init::normal(3, 4, 1.0, &mut init::rng(1));
        acc.update(&x1);
        acc.update(&x2);
        let lh = acc.finish();
        let direct = x1.matmul_tn(&x1).add(&x2.matmul_tn(&x2)).scale(2.0);
        for (a, b) in lh.h.as_slice().iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(lh.n_tokens, 8);
    }

    #[test]
    fn hessian_is_symmetric_psd() {
        let mut acc = HessianAccumulator::new(6);
        acc.update(&init::normal(20, 6, 1.0, &mut init::rng(2)));
        let lh = acc.finish();
        for i in 0..6 {
            for j in 0..6 {
                assert!((lh.h[(i, j)] - lh.h[(j, i)]).abs() < 1e-4);
            }
            assert!(lh.h[(i, i)] >= 0.0);
        }
        // Damped version must be Cholesky-factorizable.
        assert!(linalg::cholesky(&lh.damped(0.01)).is_ok());
    }

    #[test]
    fn weighted_update_scales_contribution() {
        let x = init::normal(4, 3, 1.0, &mut init::rng(3));
        let mut a = HessianAccumulator::new(3);
        a.update_weighted(&x, 2.0);
        let mut b = HessianAccumulator::new(3);
        b.update(&x);
        b.update(&x);
        let (ha, hb) = (a.finish(), b.finish());
        for (x, y) in ha.h.as_slice().iter().zip(hb.h.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mean_trace_is_token_normalized() {
        let x = init::normal(10, 4, 1.0, &mut init::rng(4));
        let mut a = HessianAccumulator::new(4);
        a.update(&x);
        let ta = a.finish().mean_trace;
        // Accumulating the same data twice must not change the statistic.
        let mut b = HessianAccumulator::new(4);
        b.update(&x);
        b.update(&x);
        let tb = b.finish().mean_trace;
        assert!((ta - tb).abs() < 1e-5, "{ta} vs {tb}");
        assert!(ta > 0.0);
    }

    #[test]
    fn zero_hessian_damping_still_invertible() {
        let acc = HessianAccumulator::new(3);
        let lh = acc.finish();
        assert_eq!(lh.mean_trace, 0.0);
        let damped = lh.damped(0.01);
        assert!(
            linalg::cholesky(&damped).is_ok(),
            "floor damping must rescue zero Hessian"
        );
    }

    #[test]
    fn mode_display() {
        assert!(HessianMode::LayerInput.to_string().contains("GPTQ"));
        assert!(HessianMode::AttentionAware.to_string().contains("APTQ"));
    }
}
