//! LLM-QAT-style data-free quantization-aware finetuning
//! [Liu et al., 2023].
//!
//! LLM-QAT's two defining ideas, reproduced at our scale:
//!
//! 1. **Data-free**: training sequences are *sampled from the
//!    full-precision model itself*, so no external corpus is needed.
//! 2. **Quantization-aware training** with a straight-through estimator:
//!    each step evaluates loss/gradients at the RTN-quantized weights and
//!    applies the update to the full-precision master weights.
//!
//! After the finetune the master weights are RTN-quantized one final
//! time. As in the paper's tables, this QAT point is *worse* than good
//! PTQ at 4 bits when the budget is small — QAT needs far more compute
//! to pay off, which is exactly the paper's argument for PTQ.

use aptq_lm::adam::{Adam, AdamConfig};
use aptq_lm::generate::{generate_sampled, SampleConfig};
use aptq_lm::train::batch_grads;
use aptq_lm::Model;
use aptq_tensor::init;

use crate::grid::GridConfig;
use crate::methods::rtn;
use crate::report::QuantReport;
use crate::QuantError;

/// QAT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QatConfig {
    /// Finetune steps.
    pub steps: usize,
    /// Self-generated sequences per step.
    pub batch_size: usize,
    /// Length of each self-generated sequence.
    pub seq_len: usize,
    /// Sampling temperature for data generation.
    pub temperature: f32,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for data generation.
    pub seed: u64,
}

impl Default for QatConfig {
    fn default() -> Self {
        QatConfig {
            steps: 30,
            batch_size: 8,
            seq_len: 24,
            temperature: 1.0,
            lr: 1e-4,
            seed: 77,
        }
    }
}

/// Runs the data-free QAT finetune, then RTN-quantizes to `bits`.
///
/// # Errors
///
/// Propagates grid errors from the final quantization step.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: the fine-tuning loop is seeded
/// and every matmul routes through `aptq_tensor::parallel`, which keeps
/// the sequential accumulation order.
pub fn quantize(
    model: &mut Model,
    bits: u8,
    qat: &QatConfig,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let mut rng = init::rng(qat.seed);
    let teacher = model.clone();
    let mut adam = Adam::new(
        model,
        AdamConfig {
            lr: qat.lr,
            ..AdamConfig::default()
        },
    );

    for _ in 0..qat.steps {
        // 1. Self-generate a batch from the fp teacher (data-free).
        let batch: Vec<Vec<u32>> = (0..qat.batch_size)
            .map(|i| {
                let prompt = vec![(i as u32) % teacher.config().vocab_size as u32];
                generate_sampled(
                    &teacher,
                    &prompt,
                    qat.seq_len,
                    SampleConfig {
                        temperature: qat.temperature,
                        top_k: 0,
                    },
                    &mut rng,
                )
                .expect("teacher generation cannot fail on valid prompts")
            })
            .collect();

        // 2. STE: evaluate gradients at the quantized point.
        let mut shadow = model.clone();
        rtn::quantize(&mut shadow, bits, cfg)?;
        let (_, mut grads) = batch_grads(&shadow, &batch);
        grads.scale_assign(1.0 / qat.batch_size as f32);

        // 3. Update the full-precision master weights.
        adam.step(model, &grads);
    }

    // Final quantization of the adapted master weights.
    let mut report = rtn::quantize(model, bits, cfg)?;
    report.method = format!("LLM-QAT-{bits}bit");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    #[test]
    fn qat_runs_and_produces_finite_model() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 28);
        let qat = QatConfig {
            steps: 3,
            batch_size: 2,
            seq_len: 8,
            ..QatConfig::default()
        };
        let report = quantize(&mut model, 4, &qat, &GridConfig::default()).unwrap();
        assert!(report.method.contains("QAT"));
        assert_eq!(report.avg_bits, 4.0);
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn qat_is_deterministic_for_fixed_seed() {
        let cfg = GridConfig::default();
        let qat = QatConfig {
            steps: 2,
            batch_size: 2,
            seq_len: 8,
            ..QatConfig::default()
        };
        let mut a = Model::new(&ModelConfig::test_tiny(16), 29);
        let mut b = a.clone();
        quantize(&mut a, 4, &qat, &cfg).unwrap();
        quantize(&mut b, 4, &qat, &cfg).unwrap();
        assert_eq!(a.forward(&[1, 2]), b.forward(&[1, 2]));
    }

    #[test]
    fn qat_improves_quantized_loss_on_teacher_data() {
        // After STE finetuning, the quantized model should fit the
        // teacher's distribution at least as well as naive RTN.
        let base = Model::new(&ModelConfig::test_tiny(16), 30);
        let cfg = GridConfig::default();
        let probe: Vec<Vec<u32>> = (0..4)
            .map(|i| {
                generate_sampled(
                    &base,
                    &[i as u32],
                    12,
                    SampleConfig {
                        temperature: 1.0,
                        top_k: 0,
                    },
                    &mut init::rng(123),
                )
                .unwrap()
            })
            .collect();
        let loss = |m: &Model| probe.iter().map(|s| m.sequence_loss(s)).sum::<f32>();

        let mut rtn_m = base.clone();
        rtn::quantize(&mut rtn_m, 2, &cfg).unwrap();
        let mut qat_m = base.clone();
        let qat = QatConfig {
            steps: 12,
            batch_size: 4,
            seq_len: 12,
            lr: 3e-4,
            ..QatConfig::default()
        };
        quantize(&mut qat_m, 2, &qat, &cfg).unwrap();

        let (lr_, lq) = (loss(&rtn_m), loss(&qat_m));
        assert!(
            lq < lr_ * 1.1,
            "QAT should not be much worse than RTN: {lq} vs {lr_}"
        );
    }
}
