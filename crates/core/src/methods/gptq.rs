//! GPTQ [Frantar et al., ICLR 2023] — the method APTQ extends.
//!
//! Layer-input Hessians (`H = 2XXᵀ`) drive the shared OBQ update engine
//! at a uniform bit-width.

use aptq_lm::Model;

use crate::grid::GridConfig;
use crate::hessian::HessianMode;
use crate::methods::apply_plan_obq_recorded;
use crate::plan::QuantPlan;
use crate::report::QuantReport;
use crate::session::QuantSession;
use crate::QuantError;

/// Quantizes the model with GPTQ at a uniform bit-width.
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: calibration and the solver
/// parallelize only through `aptq_tensor::parallel`, which fixes the
/// floating-point accumulation order.
pub fn quantize(
    model: &mut Model,
    calibration: &[Vec<u32>],
    bits: u8,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_session(model, &mut session, bits, cfg)
}

/// [`quantize`] drawing Hessians from a shared [`QuantSession`].
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Same contract as [`quantize`]: bit-identical at every
/// `APTQ_THREADS`.
pub fn quantize_session(
    model: &mut Model,
    session: &mut QuantSession,
    bits: u8,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let hessians = session.hessians(model, HessianMode::LayerInput)?;
    let plan = QuantPlan::uniform(model, bits);
    apply_plan_obq_recorded(
        &format!("GPTQ-{bits}bit"),
        model,
        &plan,
        &hessians,
        cfg,
        session.metrics_mut(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..6)
            .map(|k| (0..16).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn gptq_runs_and_reports() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 10);
        let report = quantize(&mut model, calib().as_slice(), 4, &GridConfig::default()).unwrap();
        assert_eq!(report.avg_bits, 4.0);
        assert!(report.method.contains("GPTQ"));
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn gptq_empty_calibration_fails() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 10);
        assert!(matches!(
            quantize(&mut model, &[], 4, &GridConfig::default()),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn gptq_preserves_outputs_better_than_rtn_at_low_bits() {
        // The headline GPTQ property, on a *trained-ish* signal: compare
        // output drift on the calibration distribution.
        let base = Model::new(&ModelConfig::test_tiny(16), 11);
        let probe: Vec<u32> = (0..14).map(|i| ((i * 3) % 16) as u32).collect();
        let ref_logits = base.forward(&probe);

        let cfg = GridConfig {
            group_size: 16,
            ..GridConfig::default()
        };
        let mut gptq_model = base.clone();
        quantize(&mut gptq_model, calib().as_slice(), 3, &cfg).unwrap();
        let mut rtn_model = base.clone();
        crate::methods::rtn::quantize(&mut rtn_model, 3, &cfg).unwrap();

        let drift = |m: &Model| m.forward(&probe).sub(&ref_logits).frobenius_norm();
        let (dg, dr) = (drift(&gptq_model), drift(&rtn_model));
        assert!(
            dg < dr,
            "GPTQ drift {dg} should be below RTN drift {dr} at 3 bits"
        );
    }
}
