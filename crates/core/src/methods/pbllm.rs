//! PB-LLM-style partial binarization [Shang et al., 2023].
//!
//! A fraction `salient_ratio` of each layer's weights — chosen by
//! Hessian-diagonal-weighted magnitude, PB-LLM's salience criterion —
//! stays in fp16; the rest is binarized to sign × per-group mean
//! magnitude. `PB-LLM r%` in the tables is this method with
//! `salient_ratio = r`.

use aptq_lm::Model;
use aptq_tensor::Matrix;

use crate::grid::{GridConfig, QuantGrid};
use crate::hessian::HessianMode;
use crate::report::{LayerOutcome, QuantReport};
use crate::session::QuantSession;
use crate::QuantError;

/// Quantizes the model PB-LLM style.
///
/// # Errors
///
/// Returns [`QuantError::InvalidRatio`] for a salient ratio outside
/// `[0, 1]`; propagates calibration errors.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: salience ranking and the binary
/// residual both run on `aptq_tensor::parallel`'s order-preserving
/// kernels.
pub fn quantize(
    model: &mut Model,
    calibration: &[Vec<u32>],
    salient_ratio: f32,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_session(model, &mut session, salient_ratio, cfg)
}

/// [`quantize`] drawing Hessians from a shared [`QuantSession`].
///
/// # Errors
///
/// Returns [`QuantError::InvalidRatio`] for a salient ratio outside
/// `[0, 1]`; propagates calibration errors.
///
/// # Determinism
///
/// Same contract as [`quantize`]: bit-identical at every
/// `APTQ_THREADS`.
pub fn quantize_session(
    model: &mut Model,
    session: &mut QuantSession,
    salient_ratio: f32,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    if !(0.0..=1.0).contains(&salient_ratio) {
        return Err(QuantError::InvalidRatio {
            ratio: salient_ratio,
        });
    }
    let hessians = session.hessians(model, HessianMode::LayerInput)?;
    let grid = QuantGrid::binary();
    let mut outcomes = Vec::new();

    for layer in model.layer_refs() {
        let w = model.layer_weight(layer).clone();
        let (d_in, d_out) = w.shape();
        let h_diag = hessians[&layer].h.diag();

        // Salience: Hessian-weighted squared magnitude per weight.
        let mut salience: Vec<(usize, f32)> = (0..d_in * d_out)
            .map(|idx| {
                let (i, j) = (idx / d_out, idx % d_out);
                (idx, h_diag[i] * w[(i, j)] * w[(i, j)])
            })
            .collect();
        salience.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_salient = ((d_in * d_out) as f32 * salient_ratio).round() as usize;
        let mut keep = vec![false; d_in * d_out];
        for &(idx, _) in salience.iter().take(n_salient) {
            keep[idx] = true;
        }

        // Binarize the rest per input-group (keeping salient weights
        // exact), group scale from the binarized portion only.
        let group = cfg.group_size.min(d_in).max(1);
        let mut deq = w.clone();
        let mut err = 0.0f64;
        for g0 in (0..d_in).step_by(group) {
            let g1 = (g0 + group).min(d_in);
            for c in 0..d_out {
                let vals: Vec<f32> = (g0..g1)
                    .filter(|&r| !keep[r * d_out + c])
                    .map(|r| w[(r, c)])
                    .collect();
                if vals.is_empty() {
                    continue;
                }
                let p = grid.fit_params(&vals);
                for r in g0..g1 {
                    if keep[r * d_out + c] {
                        continue;
                    }
                    let (_, d) = grid.quantize(w[(r, c)], p);
                    err += ((w[(r, c)] - d) as f64).powi(2);
                    deq[(r, c)] = d;
                }
            }
        }

        // Storage: 1 bit per binarized weight + 2 bytes per salient
        // weight + index overhead (2 bytes per salient index) + group scales.
        session.metrics_mut().incr("quant/pbllm/layers_binarized");
        session
            .metrics_mut()
            .add("quant/pbllm/salient_weights", n_salient as u64);
        let n_bin = d_in * d_out - n_salient;
        let storage = n_bin.div_ceil(8) + n_salient * 4 + d_in.div_ceil(group) * d_out * 2;
        let eff_bits = (storage * 8) as f32 / (d_in * d_out) as f32;
        *model.layer_weight_mut(layer) = deq;
        outcomes.push(LayerOutcome {
            layer,
            bits: eff_bits.round().clamp(1.0, 16.0) as u8,
            recon_error: (err / (d_in * d_out) as f64) as f32,
            storage_bytes: storage,
        });
    }
    Ok(QuantReport::new(
        format!("PB-LLM-{:.0}%", salient_ratio * 100.0),
        model,
        outcomes,
    ))
}

/// Nominal average bits of a PB-LLM configuration: salient weights in
/// fp16, the rest binarized to 1 bit (index/metadata overhead excluded,
/// as in the paper's "Avg bit" column).
pub fn average_bits(salient_ratio: f32) -> f32 {
    salient_ratio * 16.0 + (1.0 - salient_ratio) * 1.0
}

/// Helper exposing the per-layer salient mask computation for tests.
pub fn salient_mask(w: &Matrix, h_diag: &[f32], ratio: f32) -> Vec<bool> {
    let (d_in, d_out) = w.shape();
    let mut salience: Vec<(usize, f32)> = (0..d_in * d_out)
        .map(|idx| {
            // audit:allow(div): the 0..d_in*d_out range is empty when d_out is 0
            let (i, j) = (idx / d_out, idx % d_out);
            (idx, h_diag[i] * w[(i, j)] * w[(i, j)])
        })
        .collect();
    salience.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let n = ((d_in * d_out) as f32 * ratio).round() as usize;
    let mut keep = vec![false; d_in * d_out];
    for &(idx, _) in salience.iter().take(n) {
        keep[idx] = true;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..4)
            .map(|k| (0..12).map(|i| ((i * 7 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn pbllm_runs_and_binarizes_majority() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 15);
        let report = quantize(&mut model, &calib(), 0.2, &GridConfig::default()).unwrap();
        assert!(report.method.contains("PB-LLM"));
        // Most weights are 1-bit → far below 4-bit storage.
        assert!(report.avg_bits < 16.0);
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn higher_salient_ratio_less_error() {
        let base = Model::new(&ModelConfig::test_tiny(16), 16);
        let err = |r: f32| {
            let mut m = base.clone();
            quantize(&mut m, &calib(), r, &GridConfig::default())
                .unwrap()
                .total_recon_error()
        };
        assert!(err(0.3) < err(0.1));
        assert!(err(0.1) < err(0.0) + 1e-9);
    }

    #[test]
    fn salient_mask_selects_requested_fraction() {
        let w = Matrix::from_fn(8, 4, |i, j| (i as f32 - 4.0) * 0.1 + j as f32 * 0.01);
        let h = vec![1.0f32; 8];
        let mask = salient_mask(&w, &h, 0.25);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 8);
        // The largest |w| entries must be kept.
        let kept_mags: Vec<f32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(idx, _)| w[(idx / 4, idx % 4)].abs())
            .collect();
        let dropped_max = mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| !b)
            .map(|(idx, _)| w[(idx / 4, idx % 4)].abs())
            .fold(0.0f32, f32::max);
        assert!(kept_mags.iter().all(|&m| m >= dropped_max - 1e-6));
    }

    #[test]
    fn invalid_ratio_rejected() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 17);
        assert!(matches!(
            quantize(&mut model, &calib(), 1.5, &GridConfig::default()),
            Err(QuantError::InvalidRatio { .. })
        ));
    }

    #[test]
    fn average_bits_formula() {
        assert!((average_bits(0.0) - 1.0).abs() < 1e-6);
        assert!(average_bits(0.3) > average_bits(0.1));
    }
}
