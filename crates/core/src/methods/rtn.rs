//! Round-to-nearest baseline (the "RTN" rows of the paper's tables).

use aptq_lm::Model;

use crate::engine;
use crate::grid::{GridConfig, QuantGrid};
use crate::report::{LayerOutcome, QuantReport};
use crate::QuantError;

/// Quantizes every projection of the model with per-group
/// round-to-nearest at the given bit-width. No calibration data is used.
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedBits`] for invalid bit-widths.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: round-to-nearest is elementwise
/// and the only parallelism is `aptq_tensor::parallel`'s
/// order-preserving kernels.
pub fn quantize(model: &mut Model, bits: u8, cfg: &GridConfig) -> Result<QuantReport, QuantError> {
    let grid = QuantGrid::try_int(bits, cfg.asymmetric)?;
    let mut outcomes = Vec::new();
    for layer in model.layer_refs() {
        let w = model.layer_weight(layer).clone();
        let res = engine::quantize_layer_rtn(&w, grid, cfg);
        let storage = res.packed.storage_bytes();
        *model.layer_weight_mut(layer) = res.dequantized;
        outcomes.push(LayerOutcome {
            layer,
            bits,
            recon_error: res.recon_error,
            storage_bytes: storage,
        });
    }
    Ok(QuantReport::new(format!("RTN-{bits}bit"), model, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    #[test]
    fn rtn_quantizes_all_layers() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 7);
        let report = quantize(&mut model, 4, &GridConfig::default()).unwrap();
        assert_eq!(report.layers.len(), model.layer_refs().len());
        assert_eq!(report.avg_bits, 4.0);
        // Model still produces finite logits.
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn lower_bits_more_error() {
        let cfg = GridConfig::default();
        let mut m4 = Model::new(&ModelConfig::test_tiny(16), 8);
        let mut m2 = m4.clone();
        let r4 = quantize(&mut m4, 4, &cfg).unwrap();
        let r2 = quantize(&mut m2, 2, &cfg).unwrap();
        assert!(r2.total_recon_error() > r4.total_recon_error());
        assert!(r2.quantized_bytes < r4.quantized_bytes);
    }

    #[test]
    fn rejects_invalid_bits() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 9);
        assert!(matches!(
            quantize(&mut model, 0, &GridConfig::default()),
            Err(QuantError::UnsupportedBits { .. })
        ));
    }
}
