//! OWQ-style outlier-aware weight quantization [Lee et al., 2023].
//!
//! Activation outliers make some input dimensions disproportionately
//! important. OWQ keeps the weight rows of the top-k outlier input
//! dimensions (ranked by Hessian diagonal × row norm) in fp16 and
//! GPTQ-quantizes the rest at the base width — landing at ~4.01 average
//! bits in the paper's Table 1.

use std::collections::BTreeMap;

use aptq_lm::{LayerRef, Model};

use crate::engine;
use crate::grid::{GridConfig, QuantGrid};
use crate::hessian::{HessianMode, LayerHessian};
use crate::report::{LayerOutcome, QuantReport};
use crate::session::QuantSession;
use crate::QuantError;

/// Quantizes the model OWQ-style: `outlier_dims` input dimensions per
/// layer stay fp16, the rest get GPTQ at `bits`.
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: outlier selection is a
/// deterministic sort over scores computed via `aptq_tensor::parallel`'s
/// order-preserving kernels.
pub fn quantize(
    model: &mut Model,
    calibration: &[Vec<u32>],
    bits: u8,
    outlier_dims: usize,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_session(model, &mut session, bits, outlier_dims, cfg)
}

/// [`quantize`] drawing Hessians from a shared [`QuantSession`].
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Same contract as [`quantize`]: bit-identical at every
/// `APTQ_THREADS`.
pub fn quantize_session(
    model: &mut Model,
    session: &mut QuantSession,
    bits: u8,
    outlier_dims: usize,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let hessians = session.hessians(model, HessianMode::LayerInput)?;
    let grid = QuantGrid::try_int(bits, cfg.asymmetric)?;
    let mut outcomes = Vec::new();

    for layer in model.layer_refs() {
        let w = model.layer_weight(layer).clone();
        let (d_in, d_out) = w.shape();
        let lh = &hessians[&layer];
        let keep = outlier_rows(&w, lh, outlier_dims.min(d_in));

        // Quantize with the OBQ engine, then restore the outlier rows to
        // their original fp16 values. (Restoring after the engine run
        // keeps the error-compensation of the quantized rows intact; the
        // outlier rows contribute no quantization error to compensate.)
        let res = engine::quantize_layer_obq(&layer.to_string(), &w, lh, grid, cfg)?;
        let mut deq = res.dequantized;
        for &r in &keep {
            for c in 0..d_out {
                deq[(r, c)] = w[(r, c)];
            }
        }
        let storage = res.packed.storage_bytes() + keep.len() * d_out * 2;
        session.metrics_mut().incr("quant/owq/layers_solved");
        session
            .metrics_mut()
            .add("quant/owq/outlier_rows_kept", keep.len() as u64);
        *model.layer_weight_mut(layer) = deq;
        outcomes.push(LayerOutcome {
            layer,
            bits,
            recon_error: res.recon_error,
            storage_bytes: storage,
        });
    }

    let mut report = QuantReport::new(format!("OWQ-{bits}bit"), model, outcomes);
    // Account for the fp16 outlier rows in the average bit-width.
    report.avg_bits += extra_avg_bits(model, outlier_dims, bits);
    Ok(report)
}

/// Extra average bits contributed by keeping `outlier_dims` fp16 rows
/// per layer: each exempted weight stores 16 bits where the report has
/// already counted the `bits`-wide base grid, so the overhead per
/// exempted weight is `16 − bits`, averaged over all layer weights.
///
/// This is the true storage overhead behind the paper's "~4.01 bit" OWQ
/// row; [`quantize`] folds it into `QuantReport::avg_bits` and the eval
/// pipeline uses it for the nominal "Avg bit" column.
pub fn extra_avg_bits(model: &Model, outlier_dims: usize, bits: u8) -> f32 {
    let mut extra_weights = 0usize;
    let mut total = 0usize;
    for r in model.layer_refs() {
        let w = model.layer_weight(r);
        extra_weights += outlier_dims.min(w.rows()) * w.cols();
        total += w.len();
    }
    if total == 0 {
        return 0.0;
    }
    extra_weights as f32 * f32::from(16u8.saturating_sub(bits)) / total as f32
}

/// Ranks input dimensions by `diag(H)ᵢ · ‖wᵢ‖²` and returns the top-k.
fn outlier_rows(w: &aptq_tensor::Matrix, lh: &LayerHessian, k: usize) -> Vec<usize> {
    let d_in = w.rows();
    let diag = lh.h.diag();
    let mut scored: Vec<(usize, f32)> = (0..d_in)
        .map(|i| {
            let row_norm: f32 = w.row(i).iter().map(|&v| v * v).sum();
            (i, diag[i] * row_norm)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// Exposed for tests and analysis: which rows would OWQ keep?
pub fn outlier_rows_for(
    model: &Model,
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    layer: LayerRef,
    k: usize,
) -> Vec<usize> {
    outlier_rows(model.layer_weight(layer), &hessians[&layer], k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::collect_hessians;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn extra_avg_bits_uses_fp16_minus_base_width() {
        let model = Model::new(&ModelConfig::test_tiny(16), 18);
        // Doubling the exempted dims doubles the overhead; a wider base
        // grid shrinks it (16-bits replaces fewer already-counted bits).
        let one = extra_avg_bits(&model, 1, 4);
        assert!(one > 0.0);
        assert!((extra_avg_bits(&model, 2, 4) - 2.0 * one).abs() < 1e-6);
        assert!(extra_avg_bits(&model, 1, 2) > one);
        assert_eq!(extra_avg_bits(&model, 0, 4), 0.0);
    }

    #[test]
    fn owq_runs_and_costs_slightly_more_than_base() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 18);
        let report = quantize(&mut model, &calib(), 4, 1, &GridConfig::default()).unwrap();
        assert!(
            report.avg_bits > 4.0,
            "outlier rows add storage: {}",
            report.avg_bits
        );
        assert!(
            report.avg_bits < 5.0,
            "one outlier dim is cheap: {}",
            report.avg_bits
        );
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn owq_with_zero_outliers_is_gptq() {
        let base = Model::new(&ModelConfig::test_tiny(16), 19);
        let cfg = GridConfig::default();
        let mut a = base.clone();
        quantize(&mut a, &calib(), 4, 0, &cfg).unwrap();
        let mut b = base.clone();
        crate::methods::gptq::quantize(&mut b, &calib(), 4, &cfg).unwrap();
        let r = base.layer_refs()[0];
        assert_eq!(a.layer_weight(r), b.layer_weight(r));
    }

    #[test]
    fn outlier_rows_pick_high_energy_dims() {
        let model = Model::new(&ModelConfig::test_tiny(16), 20);
        let hs = collect_hessians(&model, &calib(), HessianMode::LayerInput).unwrap();
        let layer = model.layer_refs()[0];
        let rows = outlier_rows_for(&model, &hs, layer, 3);
        assert_eq!(rows.len(), 3);
        // Scores of chosen rows dominate a random other row.
        let diag = hs[&layer].h.diag();
        let w = model.layer_weight(layer);
        let score = |i: usize| diag[i] * w.row(i).iter().map(|&v| v * v).sum::<f32>();
        let min_kept = rows.iter().map(|&i| score(i)).fold(f32::INFINITY, f32::min);
        let others_max = (0..w.rows())
            .filter(|i| !rows.contains(i))
            .map(score)
            .fold(0.0f32, f32::max);
        assert!(min_kept >= others_max);
    }

    #[test]
    fn more_outliers_preserve_output_better() {
        // Plant genuine activation outliers (huge embedding channels) so
        // the OWQ criterion has a real signal, then check that exempting
        // half the input dims reduces 2-bit drift.
        let mut base = Model::new(&ModelConfig::test_tiny(16), 21);
        for r in 0..16 {
            base.embed_mut()[(r, 2)] *= 10.0;
            base.embed_mut()[(r, 9)] *= 10.0;
        }
        let probe: Vec<u32> = (0..12).map(|i| ((i * 3) % 16) as u32).collect();
        let ref_logits = base.forward(&probe);
        let drift = |k: usize| {
            let mut m = base.clone();
            quantize(&mut m, &calib(), 2, k, &GridConfig::default()).unwrap();
            m.forward(&probe).sub(&ref_logits).frobenius_norm()
        };
        assert!(
            drift(8) < drift(0),
            "outlier rows should reduce 2-bit drift"
        );
    }
}
