//! The quantization methods evaluated in the paper's tables.
//!
//! | Module | Paper row | Idea |
//! |---|---|---|
//! | [`rtn`] | RTN | per-group round-to-nearest, no second-order info |
//! | [`gptq`] | GPTQ [4] | layer-input Hessian + OBQ updates |
//! | [`aptq`] | **APTQ (ours)** | attention-aware Hessians + trace-ranked 2/4-bit mixing |
//! | [`owq`] | OWQ [9] | keep activation-outlier input dims in fp16 |
//! | [`pbllm`] | PB-LLM [15] | binarize non-salient weights, keep salient fp16 |
//! | [`smoothquant`] | SmoothQuant [17] | per-channel scale migration, then RTN |
//! | [`fpq`] | FPQ [10] | 4-bit float (E2M1) grids |
//! | [`qat`] | LLM-QAT [11] | data-free quantization-aware finetune (STE) |

pub mod aptq;
pub mod fpq;
pub mod gptq;
pub mod owq;
pub mod pbllm;
pub mod qat;
pub mod rtn;
pub mod smoothquant;

use std::collections::BTreeMap;

use aptq_lm::{LayerRef, Model};
use aptq_obs::Recorder;

use crate::engine;
use crate::engine::LayerQuantResult;
use crate::grid::{GridConfig, QuantGrid};
use crate::hessian::LayerHessian;
use crate::plan::QuantPlan;
use crate::report::{LayerOutcome, QuantReport};
use crate::QuantError;

/// Worker threads for the layer-job scheduler. Thread configuration is
/// centralized in [`aptq_tensor::parallel::thread_count`] (the
/// `APTQ_THREADS` override with a hardware-cap fallback); this is a
/// thin alias kept for call-site readability.
///
/// # Determinism
///
/// The count varies with the environment, but every scheduler fed by it
/// is bit-identical across thread counts.
pub fn scheduler_threads() -> usize {
    aptq_tensor::parallel::thread_count()
}

/// Quantizes every layer of `plan` with the OBQ engine under the given
/// Hessians, installing dequantized weights into the model in place.
///
/// This is the shared backbone of GPTQ, APTQ and OWQ; they differ only
/// in the Hessians, the plan, and (for OWQ) which rows are exempted.
/// Per-layer solves run on [`scheduler_threads`] worker threads.
///
/// # Determinism
///
/// Bit-identical for every `APTQ_THREADS` value; see
/// [`apply_plan_obq_threads`] for the contract.
///
/// # Errors
///
/// Propagates engine failures; returns [`QuantError::UnknownLayer`] if
/// the Hessian map is missing a planned layer.
pub fn apply_plan_obq(
    method: &str,
    model: &mut Model,
    plan: &QuantPlan,
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    apply_plan_obq_threads(method, model, plan, hessians, cfg, scheduler_threads())
}

/// [`apply_plan_obq`] recording scheduler work into `rec` under
/// `quant/obq/…`: layer solves, column updates (one per input
/// dimension of each solved layer), quantized weights and packed
/// storage bytes. Counters are accumulated in canonical plan order
/// during the sequential install phase, so the recorder never crosses
/// a thread boundary.
///
/// # Determinism
///
/// Bit-identical reports, installed weights *and counters* at any
/// `APTQ_THREADS` value; see [`apply_plan_obq_threads`].
///
/// # Errors
///
/// Propagates engine failures; returns [`QuantError::UnknownLayer`] if
/// the Hessian map is missing a planned layer. On failure `rec` is
/// left untouched.
pub fn apply_plan_obq_recorded(
    method: &str,
    model: &mut Model,
    plan: &QuantPlan,
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    cfg: &GridConfig,
    rec: &mut Recorder,
) -> Result<QuantReport, QuantError> {
    apply_plan_obq_threads_recorded(method, model, plan, hessians, cfg, scheduler_threads(), rec)
}

/// [`apply_plan_obq`] with an explicit worker-thread count.
///
/// # Determinism
///
/// Each layer's OBQ solve depends only on its own (pre-quantization)
/// weight and Hessian, so the solves fan out across scoped threads while
/// the model is borrowed immutably; dequantized weights are then
/// installed sequentially in canonical plan order. Reports and installed
/// weights are bit-identical for every `threads` value, including 1.
///
/// On failure the model is left unmodified and the error of the earliest
/// plan entry is returned, independent of thread count.
///
/// # Errors
///
/// Propagates engine failures; returns [`QuantError::UnknownLayer`] if
/// the Hessian map is missing a planned layer.
pub fn apply_plan_obq_threads(
    method: &str,
    model: &mut Model,
    plan: &QuantPlan,
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    cfg: &GridConfig,
    threads: usize,
) -> Result<QuantReport, QuantError> {
    let mut scratch = Recorder::new();
    apply_plan_obq_threads_recorded(method, model, plan, hessians, cfg, threads, &mut scratch)
}

/// [`apply_plan_obq_threads`] recording into `rec` (see
/// [`apply_plan_obq_recorded`] for the counter set).
///
/// # Determinism
///
/// Each layer's OBQ solve depends only on its own (pre-quantization)
/// weight and Hessian, so the solves fan out across scoped threads
/// while the model is borrowed immutably; dequantized weights are then
/// installed — and counters accumulated — sequentially in canonical
/// plan order. Reports, installed weights and counters are
/// bit-identical for every `threads` value, including 1.
///
/// On failure the model and `rec` are left unmodified and the error of
/// the earliest plan entry is returned, independent of thread count.
///
/// # Errors
///
/// Propagates engine failures; returns [`QuantError::UnknownLayer`] if
/// the Hessian map is missing a planned layer.
pub fn apply_plan_obq_threads_recorded(
    method: &str,
    model: &mut Model,
    plan: &QuantPlan,
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    cfg: &GridConfig,
    threads: usize,
    rec: &mut Recorder,
) -> Result<QuantReport, QuantError> {
    // Validate every job up front so errors are deterministic.
    let mut jobs = Vec::with_capacity(plan.len());
    for (layer, bits) in plan.iter() {
        if !hessians.contains_key(&layer) {
            return Err(QuantError::UnknownLayer {
                layer: layer.to_string(),
            });
        }
        jobs.push((layer, bits, QuantGrid::try_int(bits, cfg.asymmetric)?));
    }

    let solved = solve_jobs(model, &jobs, hessians, cfg, threads);
    let mut results = Vec::with_capacity(jobs.len());
    for res in solved {
        results.push(res?);
    }

    let mut outcomes = Vec::with_capacity(jobs.len());
    for (&(layer, bits, _), res) in jobs.iter().zip(results) {
        let storage = res.packed.storage_bytes();
        let (d_in, d_out) = (res.packed.d_in, res.packed.d_out);
        rec.incr("quant/obq/layers_solved");
        rec.add("quant/obq/column_updates", d_in as u64);
        rec.add("quant/obq/weights_quantized", (d_in * d_out) as u64);
        rec.add("quant/obq/packed_bytes", storage as u64);
        *model.layer_weight_mut(layer) = res.dequantized;
        outcomes.push(LayerOutcome {
            layer,
            bits,
            recon_error: res.recon_error,
            storage_bytes: storage,
        });
    }
    Ok(QuantReport::new(method, model, outcomes))
}

/// Runs the read-only per-layer solves, returning results in job order.
fn solve_jobs(
    model: &Model,
    jobs: &[(LayerRef, u8, QuantGrid)],
    hessians: &BTreeMap<LayerRef, LayerHessian>,
    cfg: &GridConfig,
    threads: usize,
) -> Vec<Result<LayerQuantResult, QuantError>> {
    let solve = |&(layer, _, grid): &(LayerRef, u8, QuantGrid)| {
        engine::quantize_layer_obq(
            &layer.to_string(),
            model.layer_weight(layer),
            &hessians[&layer],
            grid,
            cfg,
        )
    };
    aptq_tensor::parallel::run_indexed(jobs.len(), threads, |i| solve(&jobs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::HessianMode;
    use aptq_lm::ModelConfig;

    #[test]
    fn apply_plan_installs_weights() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 6);
        let segs = vec![(0..12).map(|i| (i % 16) as u32).collect::<Vec<u32>>()];
        let hs = crate::collect_hessians(&model, &segs, HessianMode::LayerInput).unwrap();
        let plan = QuantPlan::uniform(&model, 4);
        let before = model.layer_weight(model.layer_refs()[0]).clone();
        let report =
            apply_plan_obq("GPTQ", &mut model, &plan, &hs, &GridConfig::default()).unwrap();
        let after = model.layer_weight(model.layer_refs()[0]).clone();
        assert_ne!(before, after, "weights must change");
        assert_eq!(report.avg_bits, 4.0);
        assert_eq!(report.layers.len(), model.layer_refs().len());
    }

    #[test]
    fn missing_hessian_is_unknown_layer() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 6);
        let plan = QuantPlan::uniform(&model, 4);
        let empty = BTreeMap::new();
        assert!(matches!(
            apply_plan_obq("x", &mut model, &plan, &empty, &GridConfig::default()),
            Err(QuantError::UnknownLayer { .. })
        ));
    }
}
