//! FPQ-style 4-bit floating-point quantization [Liu et al., 2023].
//!
//! Uses the E2M1 FP4 grid per group instead of a uniform integer grid —
//! denser levels near zero, matching the heavy-tailed distribution of
//! trained weights.

use aptq_lm::Model;

use crate::engine;
use crate::grid::{GridConfig, QuantGrid};
use crate::report::{LayerOutcome, QuantReport};
use crate::QuantError;

/// Quantizes every projection to FP4 (E2M1) per group, RTN-style.
///
/// # Errors
///
/// Currently infallible but returns `Result` for interface parity with
/// the other methods.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: per-group rounding is pure and
/// the only parallelism is `aptq_tensor::parallel`'s order-preserving
/// kernels.
pub fn quantize(model: &mut Model, cfg: &GridConfig) -> Result<QuantReport, QuantError> {
    let grid = QuantGrid::fp4();
    let mut outcomes = Vec::new();
    for layer in model.layer_refs() {
        let w = model.layer_weight(layer).clone();
        let res = engine::quantize_layer_rtn(&w, grid, cfg);
        let storage = res.packed.storage_bytes();
        *model.layer_weight_mut(layer) = res.dequantized;
        outcomes.push(LayerOutcome {
            layer,
            bits: 4,
            recon_error: res.recon_error,
            storage_bytes: storage,
        });
    }
    Ok(QuantReport::new("FPQ-4bit", model, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    #[test]
    fn fpq_runs() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 26);
        let report = quantize(&mut model, &GridConfig::default()).unwrap();
        assert_eq!(report.avg_bits, 4.0);
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn fpq_error_between_int4_and_int3_typically() {
        // On roughly Gaussian weights FP4's 16 levels are competitive
        // with INT4's; sanity: FPQ is far better than 2-bit RTN.
        let base = Model::new(&ModelConfig::test_tiny(16), 27);
        let cfg = GridConfig::default();
        let mut fpq_m = base.clone();
        let fpq_err = quantize(&mut fpq_m, &cfg).unwrap().total_recon_error();
        let mut rtn2 = base.clone();
        let rtn2_err = crate::methods::rtn::quantize(&mut rtn2, 2, &cfg)
            .unwrap()
            .total_recon_error();
        assert!(fpq_err < rtn2_err);
    }
}
