//! SmoothQuant-style scale migration [Xiao et al., ICML 2023].
//!
//! SmoothQuant moves quantization difficulty from activations to weights
//! with a per-input-channel scale `sⱼ = max|Xⱼ|^α / max|Wⱼ|^(1−α)`:
//! `Y = (X·diag(s)⁻¹)·(diag(s)·W)`. In deployment the activation-side
//! scale is folded into the *previous* op; here that is the preceding
//! RMSNorm gain, exactly as in the reference implementation. Projections
//! whose inputs are not produced by a norm (`o_proj`, `down_proj`) are
//! quantized without smoothing.
//!
//! After migration, weights are quantized with per-group RTN at the base
//! width — reproducing SmoothQuant's role in Table 2 as a
//! calibration-light 4-bit comparator.

use aptq_lm::{LayerKind, LayerRef, Model};

use crate::engine;
use crate::grid::{GridConfig, QuantGrid};
use crate::report::{LayerOutcome, QuantReport};
use crate::QuantError;

/// Per-channel absolute maxima of the inputs feeding each block's two
/// norm-fed projection families.
struct BlockActStats {
    /// `max|x|` per channel of the attention input (post-norm1).
    attn: Vec<f32>,
    /// `max|x|` per channel of the FFN input (post-norm2).
    ffn: Vec<f32>,
}

/// Quantizes the model SmoothQuant-style: scale migration with strength
/// `alpha` (0.5 in the paper), then per-group RTN at `bits`.
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] without calibration data,
/// [`QuantError::InvalidRatio`] for `alpha ∉ [0,1]`, and propagates grid
/// errors.
///
/// # Determinism
///
/// Bit-identical across `APTQ_THREADS`: scale migration is elementwise
/// over statistics computed via `aptq_tensor::parallel`'s
/// order-preserving kernels.
pub fn quantize(
    model: &mut Model,
    calibration: &[Vec<u32>],
    bits: u8,
    alpha: f32,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    if calibration.iter().all(|s| s.is_empty()) {
        return Err(QuantError::EmptyCalibration);
    }
    if !(0.0..=1.0).contains(&alpha) {
        return Err(QuantError::InvalidRatio { ratio: alpha });
    }
    let grid = QuantGrid::try_int(bits, cfg.asymmetric)?;

    // Pass 1: activation statistics.
    let stats = collect_act_stats(model, calibration);

    // Pass 2: fold scales into (norm gain, weights), then RTN.
    let mut outcomes = Vec::new();
    for (b, block_stats) in stats.iter().enumerate() {
        // Attention family: q/k/v read the norm1 output.
        apply_family(
            model,
            b,
            &[LayerKind::Q, LayerKind::K, LayerKind::V],
            &block_stats.attn,
            alpha,
            true,
        );
        // FFN family: gate/up read the norm2 output.
        apply_family(
            model,
            b,
            &[LayerKind::Gate, LayerKind::Up],
            &block_stats.ffn,
            alpha,
            false,
        );
        for kind in LayerKind::ALL {
            let layer = LayerRef { block: b, kind };
            let w = model.layer_weight(layer).clone();
            let res = engine::quantize_layer_rtn(&w, grid, cfg);
            let storage = res.packed.storage_bytes();
            *model.layer_weight_mut(layer) = res.dequantized;
            outcomes.push(LayerOutcome {
                layer,
                bits,
                recon_error: res.recon_error,
                storage_bytes: storage,
            });
        }
    }
    Ok(QuantReport::new(
        format!("SmoothQuant-{bits}bit"),
        model,
        outcomes,
    ))
}

/// Computes `s`, folds `1/s` into the norm gain and `s` into the family's
/// weight rows.
fn apply_family(
    model: &mut Model,
    block: usize,
    kinds: &[LayerKind],
    act_max: &[f32],
    alpha: f32,
    is_attn: bool,
) {
    let d = act_max.len();
    // Per-channel weight maxima across the family.
    let mut w_max = vec![1e-8f32; d];
    for &kind in kinds {
        let w = model.layer_weight(LayerRef { block, kind });
        for (i, wm) in w_max.iter_mut().enumerate() {
            for &v in w.row(i) {
                *wm = wm.max(v.abs());
            }
        }
    }
    let s: Vec<f32> = (0..d)
        .map(|i| {
            let a = act_max[i].max(1e-8).powf(alpha);
            let b = w_max[i].powf(1.0 - alpha);
            (a / b).clamp(1e-4, 1e4)
        })
        .collect();
    // Fold into weights: W ← diag(s)·W.
    for &kind in kinds {
        let w = model.layer_weight_mut(LayerRef { block, kind });
        for (i, &si) in s.iter().enumerate() {
            for v in w.row_mut(i) {
                *v *= si;
            }
        }
    }
    // Fold into the producing norm: gain ← gain / s.
    let blk = &mut model.blocks_mut()[block];
    let gain = if is_attn {
        blk.norm1.gain_mut()
    } else {
        blk.norm2.gain_mut()
    };
    for (g, &si) in gain.iter_mut().zip(s.iter()) {
        *g /= si;
    }
}

fn collect_act_stats(model: &Model, calibration: &[Vec<u32>]) -> Vec<BlockActStats> {
    let d = model.config().d_model;
    let mut stats: Vec<BlockActStats> = (0..model.config().n_layers)
        .map(|_| BlockActStats {
            attn: vec![0.0; d],
            ffn: vec![0.0; d],
        })
        .collect();
    for seg in calibration.iter().filter(|s| !s.is_empty()) {
        let (_, cap) = model.forward_capture(seg);
        for (b, bc) in cap.blocks.iter().enumerate() {
            for i in 0..bc.attn_input.rows() {
                for (j, &v) in bc.attn_input.row(i).iter().enumerate() {
                    stats[b].attn[j] = stats[b].attn[j].max(v.abs());
                }
                for (j, &v) in bc.ffn_input.row(i).iter().enumerate() {
                    stats[b].ffn[j] = stats[b].ffn[j].max(v.abs());
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..4)
            .map(|k| (0..12).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn smoothing_preserves_function_before_quantization() {
        // Fold s into weights and 1/s into norms with 16-bit "quantization"
        // (bits=8 is closest we can do; instead check the folding alone by
        // comparing outputs after folding but before RTN).
        let base = Model::new(&ModelConfig::test_tiny(16), 22);
        let mut folded = base.clone();
        let stats = collect_act_stats(&base, &calib());
        for (b, block_stats) in stats.iter().enumerate() {
            apply_family(
                &mut folded,
                b,
                &[LayerKind::Q, LayerKind::K, LayerKind::V],
                &block_stats.attn,
                0.5,
                true,
            );
            apply_family(
                &mut folded,
                b,
                &[LayerKind::Gate, LayerKind::Up],
                &block_stats.ffn,
                0.5,
                false,
            );
        }
        let probe = [1u32, 5, 9, 13];
        let a = base.forward(&probe);
        let b = folded.forward(&probe);
        let rel = a.sub(&b).frobenius_norm() / a.frobenius_norm();
        assert!(
            rel < 1e-3,
            "scale folding must be function-preserving: {rel}"
        );
    }

    #[test]
    fn smoothquant_runs_and_reports() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 23);
        let report = quantize(&mut model, &calib(), 4, 0.5, &GridConfig::default()).unwrap();
        assert!(report.method.contains("SmoothQuant"));
        assert_eq!(report.avg_bits, 4.0);
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn rejects_bad_alpha_and_empty_calibration() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 24);
        assert!(matches!(
            quantize(&mut model, &calib(), 4, 1.5, &GridConfig::default()),
            Err(QuantError::InvalidRatio { .. })
        ));
        assert!(matches!(
            quantize(&mut model, &[], 4, 0.5, &GridConfig::default()),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn smoothing_helps_when_activations_have_outliers() {
        // Construct a model whose first block sees a huge activation on
        // one channel by scaling an embedding column; smoothing should
        // reduce quantization drift relative to plain RTN.
        let mut base = Model::new(&ModelConfig::test_tiny(16), 25);
        for r in 0..16 {
            base.embed_mut()[(r, 3)] *= 8.0;
        }
        let probe: Vec<u32> = (0..12).map(|i| ((i * 3) % 16) as u32).collect();
        let ref_logits = base.forward(&probe);
        let cfg = GridConfig::default();

        let mut sq = base.clone();
        quantize(&mut sq, &calib(), 3, 0.5, &cfg).unwrap();
        let mut rtn = base.clone();
        crate::methods::rtn::quantize(&mut rtn, 3, &cfg).unwrap();

        let drift = |m: &Model| m.forward(&probe).sub(&ref_logits).frobenius_norm();
        let (ds, dr) = (drift(&sq), drift(&rtn));
        // Weight-only RTN is not hurt by activation outliers, so parity is
        // acceptable; what must not happen is smoothing blowing up.
        assert!(
            ds < dr * 2.0,
            "smoothing must stay in RTN's ballpark: {ds} vs {dr}"
        );
    }
}
