//! APTQ — the paper's method (Algorithm 1).
//!
//! Step 1: quantize with the OBQ engine driven by **attention-aware
//! Hessians** (Eqs. 9–15 via [`crate::attn`]), computing each layer's
//! average Hessian trace along the way.
//!
//! Step 2: for mixed precision, rank layers by trace and re-quantize the
//! least sensitive ones at 2 bits until the 4-bit weight ratio matches
//! the requested `R` (Eq. 18). `APTQ-R%` in the tables is
//! [`quantize_mixed`] with `ratio = R`.

use aptq_lm::Model;

use crate::grid::GridConfig;
use crate::hessian::HessianMode;
use crate::methods::apply_plan_obq_recorded;
use crate::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use crate::plan::QuantPlan;
use crate::report::QuantReport;
use crate::session::QuantSession;
use crate::trace::SensitivityReport;
use crate::QuantError;

/// Uniform-precision APTQ (the "APTQ / 4.0 bit" table rows): GPTQ's
/// machinery under attention-aware Hessians.
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` — the layer fan-out is
/// index-ordered (see [`crate::methods::apply_plan_obq`]).
pub fn quantize_uniform(
    model: &mut Model,
    calibration: &[Vec<u32>],
    bits: u8,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_uniform_session(model, &mut session, bits, cfg)
}

/// [`quantize_uniform`] drawing Hessians from a shared [`QuantSession`].
///
/// # Errors
///
/// Propagates calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`, and independent of what the
/// session has already cached.
pub fn quantize_uniform_session(
    model: &mut Model,
    session: &mut QuantSession,
    bits: u8,
    cfg: &GridConfig,
) -> Result<QuantReport, QuantError> {
    let hessians = session.hessians(model, HessianMode::AttentionAware)?;
    let plan = QuantPlan::uniform(model, bits);
    apply_plan_obq_recorded(
        &format!("APTQ-{bits}bit"),
        model,
        &plan,
        &hessians,
        cfg,
        session.metrics_mut(),
    )
}

/// Mixed-precision APTQ (`APTQ-R%`): 2/4-bit allocation by Hessian
/// trace (or the manual block-wise ablation policy).
///
/// Returns the report and the sensitivity ranking that produced the
/// allocation (exposed for the Figure 1 sensitivity panel and the
/// ablation analysis).
///
/// # Errors
///
/// Returns [`QuantError::InvalidRatio`] for `ratio ∉ [0,1]`, otherwise
/// propagates calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` — allocation ranks by a total
/// order (score, then layer index) and the layer fan-out is
/// index-ordered.
pub fn quantize_mixed(
    model: &mut Model,
    calibration: &[Vec<u32>],
    ratio: f32,
    policy: AllocationPolicy,
    cfg: &GridConfig,
) -> Result<(QuantReport, SensitivityReport), QuantError> {
    let mut session = QuantSession::new(calibration.to_vec());
    quantize_mixed_session(model, &mut session, ratio, policy, cfg)
}

/// [`quantize_mixed`] drawing Hessians and the sensitivity ranking from
/// a shared [`QuantSession`], so repeated mixed rows (different ratios,
/// both policies) reuse one capture pass and one probe.
///
/// # Errors
///
/// Returns [`QuantError::InvalidRatio`] for `ratio ∉ [0,1]` and
/// [`QuantError::EmptyCalibration`] for a degenerate calibration set
/// (empty, or without any segment of ≥ 2 tokens); otherwise propagates
/// calibration and engine errors.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`, and independent of what the
/// session has already cached.
pub fn quantize_mixed_session(
    model: &mut Model,
    session: &mut QuantSession,
    ratio: f32,
    policy: AllocationPolicy,
    cfg: &GridConfig,
) -> Result<(QuantReport, SensitivityReport), QuantError> {
    let allocator = MixedPrecisionAllocator::two_four(ratio)?;
    let hessians = session.hessians(model, HessianMode::AttentionAware)?;
    // Allocation signal: empirical per-layer low-bit loss increase on a
    // probe slice of the calibration set. Layer-local Hessian traces
    // cannot see error *compounding* through downstream blocks, which
    // dominates at our model depth (DESIGN.md §3 documents this
    // deviation; the trace variants are compared in the ablation bench).
    let sensitivity = session.sensitivity(model, allocator.low_bits, cfg)?;
    let plan = allocator.allocate(model, &sensitivity, policy);
    let name = match policy {
        AllocationPolicy::HessianTrace => format!("APTQ-{:.0}%", ratio * 100.0),
        AllocationPolicy::ManualBlockwise => {
            format!("ManualBlockwise-{:.0}%", ratio * 100.0)
        }
    };
    let report =
        apply_plan_obq_recorded(&name, model, &plan, &hessians, cfg, session.metrics_mut())?;
    Ok((report, (*sensitivity).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::eq18_average_bits;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..6)
            .map(|k| (0..16).map(|i| ((i * 5 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn uniform_aptq_runs() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 12);
        let report = quantize_uniform(&mut model, &calib(), 4, &GridConfig::default()).unwrap();
        assert_eq!(report.avg_bits, 4.0);
        assert!(report.method.contains("APTQ"));
        assert!(model.forward(&[1, 2, 3]).all_finite());
    }

    #[test]
    fn mixed_aptq_hits_requested_ratio() {
        for r in [0.5f32, 0.75, 0.9] {
            let mut model = Model::new(&ModelConfig::test_tiny(16), 13);
            let (report, sens) = quantize_mixed(
                &mut model,
                &calib(),
                r,
                AllocationPolicy::HessianTrace,
                &GridConfig::default(),
            )
            .unwrap();
            assert!(!sens.is_empty());
            let want = eq18_average_bits(r);
            assert!(
                (report.avg_bits - want).abs() < 0.5,
                "r={r}: got {} want ≈{want}",
                report.avg_bits
            );
        }
    }

    #[test]
    fn mixed_rejects_degenerate_calibration() {
        // Empty set, single empty segment, and a one-token segment must
        // all surface EmptyCalibration instead of NaN scores or a panic
        // in the probe slice.
        let cases: [Vec<Vec<u32>>; 3] = [Vec::new(), vec![Vec::new()], vec![vec![3u32]]];
        for calibration in cases {
            let mut model = Model::new(&ModelConfig::test_tiny(16), 13);
            assert!(
                matches!(
                    quantize_mixed(
                        &mut model,
                        &calibration,
                        0.5,
                        AllocationPolicy::HessianTrace,
                        &GridConfig::default()
                    ),
                    Err(QuantError::EmptyCalibration)
                ),
                "calibration {calibration:?} must be rejected"
            );
        }
    }

    #[test]
    fn mixed_rejects_bad_ratio() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 13);
        assert!(matches!(
            quantize_mixed(
                &mut model,
                &calib(),
                2.0,
                AllocationPolicy::HessianTrace,
                &GridConfig::default()
            ),
            Err(QuantError::InvalidRatio { .. })
        ));
    }

    #[test]
    fn trace_policy_beats_blockwise_on_output_drift() {
        // The Table 3 ablation in miniature: at the same average bits,
        // sensitivity-ranked allocation should preserve the model output
        // better than front-to-back block allocation.
        let base = Model::new(&ModelConfig::test_tiny(16), 14);
        let probe: Vec<u32> = (0..14).map(|i| ((i * 5) % 16) as u32).collect();
        let ref_logits = base.forward(&probe);
        let drift = |policy: AllocationPolicy| {
            let mut m = base.clone();
            quantize_mixed(&mut m, &calib(), 0.5, policy, &GridConfig::default()).unwrap();
            m.forward(&probe).sub(&ref_logits).frobenius_norm()
        };
        let d_trace = drift(AllocationPolicy::HessianTrace);
        let d_block = drift(AllocationPolicy::ManualBlockwise);
        // On a random-init tiny model sensitivity rankings are close to
        // noise, so this is a sanity check only; the Table 3 comparison
        // on *trained* models lives in the workspace integration tests.
        assert!(d_trace.is_finite() && d_block.is_finite());
        assert!(
            d_trace > 0.0 && d_block > 0.0,
            "half-2-bit quantization must perturb outputs"
        );
    }
}
