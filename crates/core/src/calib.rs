//! Calibration: running the model over calibration segments and
//! accumulating per-layer Hessians in either GPTQ or APTQ mode.

use std::collections::BTreeMap;

use aptq_lm::{LayerKind, LayerRef, Model};

use crate::attn;
use crate::hessian::{HessianAccumulator, HessianMode, LayerHessian};
use crate::QuantError;

/// Collects per-layer Hessians over a calibration set.
///
/// - [`HessianMode::LayerInput`]: every projection's Hessian is
///   `2·Σ XᵀX` with `X` its raw input (GPTQ).
/// - [`HessianMode::AttentionAware`]: `q/k/v/o_proj` use the
///   attention-aware effective inputs of [`crate::attn`] (Eqs. 9–15);
///   the feed-forward projections use their raw inputs, exactly as the
///   paper prescribes for "the Feed-Forward layer".
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] if `segments` is empty or
/// all segments are shorter than 1 token.
///
/// # Determinism
///
/// Bit-identical at every `APTQ_THREADS`: Hessian accumulation routes
/// all parallelism through `aptq_tensor::parallel`, whose kernels keep
/// the floating-point reduction order of the sequential path.
pub fn collect_hessians(
    model: &Model,
    segments: &[Vec<u32>],
    mode: HessianMode,
) -> Result<BTreeMap<LayerRef, LayerHessian>, QuantError> {
    if segments.iter().all(|s| s.is_empty()) {
        return Err(QuantError::EmptyCalibration);
    }
    let d_model = model.config().d_model;
    let d_ff = model.config().d_ff;

    let mut accs: BTreeMap<LayerRef, HessianAccumulator> = BTreeMap::new();
    for r in model.layer_refs() {
        let dim = if r.kind == LayerKind::Down {
            d_ff
        } else {
            d_model
        };
        accs.insert(r, HessianAccumulator::new(dim));
    }

    for seg in segments.iter().filter(|s| !s.is_empty()) {
        let (_, capture) = model.forward_capture(seg);
        for (b, cap) in capture.blocks.iter().enumerate() {
            let wo = model.layer_weight(LayerRef {
                block: b,
                kind: LayerKind::O,
            });
            for kind in LayerKind::ALL {
                let r = LayerRef { block: b, kind };
                let acc = accs.get_mut(&r).expect("accumulator exists");
                match (mode, kind) {
                    (HessianMode::AttentionAware, LayerKind::Q) => {
                        acc.update(&attn::effective_input_q(cap, wo));
                    }
                    (HessianMode::AttentionAware, LayerKind::K) => {
                        acc.update(&attn::effective_input_k(cap, wo));
                    }
                    (HessianMode::AttentionAware, LayerKind::V) => {
                        // Per-head terms all describe the same tokens;
                        // count them once so the trace normalization stays
                        // comparable across layers.
                        for (i, (s, x)) in attn::effective_inputs_v(cap, wo).into_iter().enumerate()
                        {
                            if i == 0 {
                                acc.update_weighted(&x, s);
                            } else {
                                acc.update_weighted_uncounted(&x, s);
                            }
                        }
                    }
                    (_, LayerKind::O) => acc.update(&attn::effective_input_o(cap)),
                    (HessianMode::LayerInput, LayerKind::Q | LayerKind::K | LayerKind::V) => {
                        acc.update(&cap.attn_input);
                    }
                    (_, LayerKind::Gate | LayerKind::Up) => acc.update(&cap.ffn_input),
                    (_, LayerKind::Down) => acc.update(&cap.ffn_hidden),
                }
            }
        }
    }

    Ok(accs.into_iter().map(|(r, a)| (r, a.finish())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn model_and_segments() -> (Model, Vec<Vec<u32>>) {
        let model = Model::new(&ModelConfig::test_tiny(16), 9);
        let segments: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..10).map(|i| ((i * 3 + k) % 16) as u32).collect())
            .collect();
        (model, segments)
    }

    #[test]
    fn collects_hessian_for_every_layer() {
        let (model, segs) = model_and_segments();
        for mode in [HessianMode::LayerInput, HessianMode::AttentionAware] {
            let hs = collect_hessians(&model, &segs, mode).unwrap();
            assert_eq!(hs.len(), model.layer_refs().len());
            for (r, lh) in &hs {
                let want = if r.kind == LayerKind::Down { 32 } else { 16 };
                assert_eq!(lh.h.shape(), (want, want), "{r}");
                assert!(lh.mean_trace > 0.0, "{r} has zero sensitivity");
                assert_eq!(lh.n_tokens % 10, 0);
            }
        }
    }

    #[test]
    fn modes_agree_on_ffn_and_o_but_differ_on_qkv() {
        let (model, segs) = model_and_segments();
        let gptq = collect_hessians(&model, &segs, HessianMode::LayerInput).unwrap();
        let aptq = collect_hessians(&model, &segs, HessianMode::AttentionAware).unwrap();
        for r in model.layer_refs() {
            let a = &gptq[&r].h;
            let b = &aptq[&r].h;
            let same = a.sub(b).frobenius_norm() < 1e-4 * a.frobenius_norm().max(1.0);
            match r.kind {
                LayerKind::O | LayerKind::Gate | LayerKind::Up | LayerKind::Down => {
                    assert!(same, "{r}: modes must agree");
                }
                LayerKind::Q | LayerKind::K | LayerKind::V => {
                    assert!(
                        !same,
                        "{r}: attention-aware Hessian must differ from GPTQ's"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_calibration_is_an_error() {
        let (model, _) = model_and_segments();
        assert!(matches!(
            collect_hessians(&model, &[], HessianMode::LayerInput),
            Err(QuantError::EmptyCalibration)
        ));
        assert!(matches!(
            collect_hessians(&model, &[vec![], vec![]], HessianMode::LayerInput),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn empty_segments_are_skipped_not_fatal() {
        let (model, mut segs) = model_and_segments();
        segs.push(vec![]);
        let hs = collect_hessians(&model, &segs, HessianMode::LayerInput).unwrap();
        assert!(!hs.is_empty());
    }

    #[test]
    fn more_data_scales_hessian_not_trace() {
        let (model, segs) = model_and_segments();
        let h1 = collect_hessians(&model, &segs[..2], HessianMode::LayerInput).unwrap();
        let h2 = collect_hessians(&model, &segs, HessianMode::LayerInput).unwrap();
        let r = model.layer_refs()[0];
        assert!(h2[&r].n_tokens > h1[&r].n_tokens);
        // Trace statistic is token-normalized; same distribution → same
        // order of magnitude.
        let ratio = h2[&r].mean_trace / h1[&r].mean_trace;
        assert!(ratio > 0.3 && ratio < 3.0, "trace not normalized: {ratio}");
    }
}
