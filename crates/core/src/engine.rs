//! The OBQ/GPTQ column-update engine (Eqs. 2–4, 16–17 of the paper).
//!
//! Both GPTQ and APTQ share this machinery; the only difference between
//! them is *which Hessian* drives it (layer-input vs attention-aware).
//! Weights are stored `d_in × d_out` (input-major), so the engine walks
//! **rows** in fixed order, quantizing one input dimension at a time and
//! distributing the error onto not-yet-quantized rows through the upper
//! Cholesky factor of the inverse Hessian.

use aptq_tensor::{linalg, Matrix};

use crate::grid::{GridConfig, GroupParams, QuantGrid};
use crate::hessian::LayerHessian;
use crate::pack::PackedTensor;
use crate::QuantError;

/// Result of quantizing one layer.
#[derive(Debug, Clone)]
pub struct LayerQuantResult {
    /// Storage-format tensor (packed codes + group parameters).
    pub packed: PackedTensor,
    /// The dequantized weight to install into the model.
    pub dequantized: Matrix,
    /// Hessian-weighted reconstruction error
    /// `tr(ΔWᵀ·H·ΔW) / n_weights` — the layer-wise objective of Eq. (5)
    /// evaluated at the solution.
    pub recon_error: f32,
    /// Damping that was actually used (escalated on factorization
    /// failure).
    pub damp_used: f32,
}

/// Quantizes a layer with the GPTQ/OBQ update under the given Hessian.
///
/// `w` is `d_in × d_out`; `hessian.h` must be `d_in × d_in`. The grid's
/// group parameters are re-fit at every `group_size` boundary from the
/// *updated* weights, matching GPTQ's group quantization.
///
/// # Errors
///
/// Returns [`QuantError::HessianNotInvertible`] if damping escalation
/// (up to 10⁴× the configured value) cannot make the Hessian SPD.
///
/// # Panics
///
/// Panics if shapes disagree.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`: the column sweep is sequential
/// and matrix products reduce in fixed index order.
pub fn quantize_layer_obq(
    layer_name: &str,
    w: &Matrix,
    hessian: &LayerHessian,
    grid: QuantGrid,
    cfg: &GridConfig,
) -> Result<LayerQuantResult, QuantError> {
    let d_in = w.rows();
    let d_out = w.cols();
    assert_eq!(
        hessian.h.shape(),
        (d_in, d_in),
        "hessian shape mismatch for {layer_name}"
    );

    // Damping escalation: a rank-deficient calibration set (few tokens)
    // can leave H semidefinite; GPTQ's answer is more damping.
    let mut damp = cfg.damp.max(1e-6);
    let (u, damp_used) = loop {
        let h = hessian.damped(damp);
        match linalg::inverse_cholesky_upper(&h) {
            Ok(u) => break (u, damp),
            Err(_) if damp < cfg.damp * 1e4 => damp *= 10.0,
            Err(_) => {
                return Err(QuantError::HessianNotInvertible {
                    layer: layer_name.to_string(),
                })
            }
        }
    };

    let group_size = cfg.group_size.min(d_in).max(1);
    let block = cfg.block_size.min(d_in).max(1);
    let n_groups = d_in.div_ceil(group_size);

    let mut work = w.clone();
    let mut codes = vec![0u8; d_in * d_out];
    let mut params = vec![
        GroupParams {
            scale: 1.0,
            zero: 0
        };
        n_groups * d_out
    ];

    for i0 in (0..d_in).step_by(block) {
        let i1 = (i0 + block).min(d_in);
        let mut errs = Matrix::zeros(i1 - i0, d_out);

        for j in i0..i1 {
            let g = j / group_size;
            if j % group_size == 0 {
                // Fit group parameters per output column over the group's
                // current (already error-compensated) weights.
                let gend = (j + group_size).min(d_in);
                for c in 0..d_out {
                    let col: Vec<f32> = (j..gend).map(|r| work[(r, c)]).collect();
                    params[g * d_out + c] = grid.fit_params(&col);
                }
            }

            let d = u[(j, j)];
            debug_assert!(d > 0.0, "Cholesky diagonal must be positive");
            for c in 0..d_out {
                let wv = work[(j, c)];
                let p = params[g * d_out + c];
                let (code, deq) = grid.quantize(wv, p);
                codes[j * d_out + c] = code;
                errs[(j - i0, c)] = (wv - deq) / d;
                work[(j, c)] = deq;
            }

            // Within-block error propagation (Eq. 17 restricted to the
            // lazy-update window).
            for r in j + 1..i1 {
                let urj = u[(j, r)];
                // audit:allow(fpeq): exact-zero sparsity skip; no tolerance intended
                if urj == 0.0 {
                    continue;
                }
                let (ej, wr) = (j - i0, r);
                for c in 0..d_out {
                    work[(wr, c)] -= urj * errs[(ej, c)];
                }
            }
        }

        // Batched propagation to all remaining rows:
        // W[i1.., :] −= U[i0..i1, i1..]ᵀ · errs.
        if i1 < d_in {
            let u_rest = u.slice_rows(i0, i1).slice_cols(i1, d_in); // blk × rest
                                                                    // u_restᵀ (rest × blk) · errs (blk × d_out) = rest × d_out
            let delta = u_rest.matmul_tn(&errs);
            for r in i1..d_in {
                for c in 0..d_out {
                    work[(r, c)] -= delta[(r - i1, c)];
                }
            }
        }
    }

    // Objective value: tr(ΔWᵀ H ΔW) / n (H is the undamped Hessian).
    let dw = w.sub(&work);
    let hdw = hessian.h.matmul(&dw);
    let recon_error = dw.hadamard(&hdw).sum() / (d_in * d_out) as f32;

    let packed = PackedTensor::from_codes(&codes, d_in, d_out, group_size, grid, params);
    Ok(LayerQuantResult {
        packed,
        dequantized: work,
        recon_error,
        damp_used,
    })
}

/// Round-to-nearest baseline: group quantization with no error
/// compensation (the RTN row of Table 2).
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`: per-group rounding has no
/// cross-thread reduction.
pub fn quantize_layer_rtn(w: &Matrix, grid: QuantGrid, cfg: &GridConfig) -> LayerQuantResult {
    let d_in = w.rows();
    let d_out = w.cols();
    let group_size = cfg.group_size.min(d_in).max(1);
    let n_groups = d_in.div_ceil(group_size);
    let mut codes = vec![0u8; d_in * d_out];
    let mut params = vec![
        GroupParams {
            scale: 1.0,
            zero: 0
        };
        n_groups * d_out
    ];
    let mut deq = Matrix::zeros(d_in, d_out);
    for g in 0..n_groups {
        let j0 = g * group_size;
        let j1 = (j0 + group_size).min(d_in);
        for c in 0..d_out {
            let col: Vec<f32> = (j0..j1).map(|r| w[(r, c)]).collect();
            let p = grid.fit_params(&col);
            params[g * d_out + c] = p;
            for (idx, r) in (j0..j1).enumerate() {
                let (code, d) = grid.quantize(col[idx], p);
                codes[r * d_out + c] = code;
                deq[(r, c)] = d;
            }
        }
    }
    let dw = w.sub(&deq);
    let recon_error = dw.frobenius_norm_sq() / (d_in * d_out) as f32;
    let packed = PackedTensor::from_codes(&codes, d_in, d_out, group_size, grid, params);
    LayerQuantResult {
        packed,
        dequantized: deq,
        recon_error,
        damp_used: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::HessianAccumulator;
    use aptq_tensor::init;

    fn make_hessian(x: &Matrix) -> LayerHessian {
        let mut acc = HessianAccumulator::new(x.cols());
        acc.update(x);
        acc.finish()
    }

    fn objective(w: &Matrix, deq: &Matrix, x: &Matrix) -> f32 {
        // ‖XW − XŴ‖²_F — the actual Eq. (1) objective.
        x.matmul(w).sub(&x.matmul(deq)).frobenius_norm_sq()
    }

    #[test]
    fn obq_beats_rtn_on_correlated_inputs() {
        // The whole point of second-order quantization: with correlated
        // input dimensions, error compensation reduces the output error.
        let mut rng = init::rng(0);
        let d_in = 24;
        let d_out = 16;
        let base = init::normal(60, 4, 1.0, &mut rng);
        let mix = init::normal(4, d_in, 1.0, &mut rng);
        let x = base.matmul(&mix); // rank-4: highly correlated dims
        let noise = init::normal(60, d_in, 0.2, &mut rng);
        let x = x.add(&noise);
        let w = init::normal(d_in, d_out, 0.5, &mut rng);
        let h = make_hessian(&x);
        let cfg = GridConfig {
            group_size: 8,
            block_size: 8,
            ..GridConfig::default()
        };
        let grid = QuantGrid::int(3, true);

        let obq = quantize_layer_obq("test", &w, &h, grid, &cfg).unwrap();
        let rtn = quantize_layer_rtn(&w, grid, &cfg);
        let e_obq = objective(&w, &obq.dequantized, &x);
        let e_rtn = objective(&w, &rtn.dequantized, &x);
        assert!(
            e_obq < e_rtn * 0.9,
            "OBQ ({e_obq}) should clearly beat RTN ({e_rtn}) on correlated inputs"
        );
    }

    #[test]
    fn identity_hessian_reduces_to_rtn_error_level() {
        // With H ∝ I there is nothing to compensate; OBQ ≈ RTN.
        let mut rng = init::rng(1);
        let w = init::normal(16, 8, 0.5, &mut rng);
        let lh = LayerHessian {
            h: Matrix::identity(16).scale(2.0),
            n_tokens: 1,
            mean_trace: 2.0,
        };
        let cfg = GridConfig {
            group_size: 16,
            block_size: 8,
            ..GridConfig::default()
        };
        let grid = QuantGrid::int(4, true);
        let obq = quantize_layer_obq("test", &w, &lh, grid, &cfg).unwrap();
        let rtn = quantize_layer_rtn(&w, grid, &cfg);
        let d_obq = w.sub(&obq.dequantized).frobenius_norm_sq();
        let d_rtn = w.sub(&rtn.dequantized).frobenius_norm_sq();
        assert!(
            (d_obq - d_rtn).abs() / d_rtn.max(1e-9) < 0.25,
            "identity Hessian: OBQ {d_obq} vs RTN {d_rtn}"
        );
    }

    #[test]
    fn dequantized_matches_packed_storage() {
        let mut rng = init::rng(2);
        let x = init::normal(40, 12, 1.0, &mut rng);
        let w = init::normal(12, 10, 0.4, &mut rng);
        let h = make_hessian(&x);
        let cfg = GridConfig {
            group_size: 4,
            block_size: 4,
            ..GridConfig::default()
        };
        let res = quantize_layer_obq("test", &w, &h, QuantGrid::int(4, true), &cfg).unwrap();
        let unpacked = res.packed.dequantize();
        for (a, b) in unpacked.as_slice().iter().zip(res.dequantized.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rank_deficient_hessian_escalates_damping() {
        // Single calibration token → rank-1 Hessian. Must still succeed.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let h = make_hessian(&x);
        let w = Matrix::from_fn(4, 3, |i, j| (i + j) as f32 * 0.1);
        let cfg = GridConfig::default();
        let res = quantize_layer_obq("test", &w, &h, QuantGrid::int(4, true), &cfg).unwrap();
        assert!(res.dequantized.all_finite());
        assert!(res.damp_used >= cfg.damp);
    }

    #[test]
    fn more_bits_reduce_objective() {
        let mut rng = init::rng(3);
        let x = init::normal(50, 10, 1.0, &mut rng);
        let w = init::normal(10, 8, 0.5, &mut rng);
        let h = make_hessian(&x);
        let cfg = GridConfig {
            group_size: 10,
            block_size: 5,
            ..GridConfig::default()
        };
        let e = |bits: u8| {
            let r = quantize_layer_obq("t", &w, &h, QuantGrid::int(bits, true), &cfg).unwrap();
            objective(&w, &r.dequantized, &x)
        };
        assert!(e(2) > e(3));
        assert!(e(3) > e(4));
    }

    #[test]
    fn recon_error_is_nonnegative_and_reported() {
        let mut rng = init::rng(4);
        let x = init::normal(30, 6, 1.0, &mut rng);
        let w = init::normal(6, 6, 0.5, &mut rng);
        let h = make_hessian(&x);
        let res = quantize_layer_obq("t", &w, &h, QuantGrid::int(2, true), &GridConfig::default())
            .unwrap();
        assert!(res.recon_error >= 0.0);
        assert!(res.recon_error > 0.0, "2-bit quantization must incur error");
    }

    #[test]
    fn group_boundaries_respected() {
        // Each group's params must be able to represent its own range:
        // two groups with very different scales.
        let mut w = Matrix::zeros(8, 2);
        for r in 0..4 {
            w[(r, 0)] = 10.0 + r as f32;
            w[(r, 1)] = -(10.0 + r as f32);
        }
        for r in 4..8 {
            w[(r, 0)] = 0.01 * r as f32;
            w[(r, 1)] = -0.01 * r as f32;
        }
        let cfg = GridConfig {
            group_size: 4,
            block_size: 4,
            ..GridConfig::default()
        };
        let res = quantize_layer_rtn(&w, QuantGrid::int(4, true), &cfg);
        // Small group must not inherit the large group's coarse scale.
        let small_err: f32 = (4..8)
            .map(|r| (w[(r, 0)] - res.dequantized[(r, 0)]).abs())
            .sum();
        assert!(small_err < 0.02, "per-group scaling failed: {small_err}");
    }

    #[test]
    fn blocked_and_unblocked_updates_agree() {
        // Lazy batched propagation must match fully sequential updates.
        let mut rng = init::rng(5);
        let x = init::normal(50, 12, 1.0, &mut rng);
        let w = init::normal(12, 6, 0.5, &mut rng);
        let h = make_hessian(&x);
        let grid = QuantGrid::int(3, true);
        let small = GridConfig {
            group_size: 12,
            block_size: 1,
            ..GridConfig::default()
        };
        let big = GridConfig {
            group_size: 12,
            block_size: 12,
            ..GridConfig::default()
        };
        let a = quantize_layer_obq("t", &w, &h, grid, &small).unwrap();
        let b = quantize_layer_obq("t", &w, &h, grid, &big).unwrap();
        for (x1, x2) in a
            .dequantized
            .as_slice()
            .iter()
            .zip(b.dequantized.as_slice())
        {
            assert!((x1 - x2).abs() < 1e-4, "{x1} vs {x2}");
        }
    }
}
