//! Debug-build numerical invariants — the runtime side of the audit.
//!
//! The static pass (`aptq-audit`) keeps panics and lossy casts out of
//! the source; this module keeps the *numbers* honest while tests and
//! debug binaries run. Every check compiles to nothing in release
//! builds (`cfg!(debug_assertions)`), so the quantization hot paths pay
//! zero cost in `--release`.
//!
//! Invariant catalog (paper references in parentheses):
//!
//! | # | Invariant | Where wired | Why it must hold |
//! |---|-----------|-------------|------------------|
//! | I1 | Hessian symmetry `H = Hᵀ` | [`crate::hessian::HessianAccumulator::finish`], [`crate::hessian::LayerHessian::damped`] | `H = 2·ΣX̃ᵀX̃` (Eq. 7) is a sum of Gram matrices |
//! | I2 | Hessian finiteness | same | a single NaN token poisons every OBQ update downstream |
//! | I3 | Damped diagonal positivity | [`crate::hessian::LayerHessian::damped`] | `H + λ·mean(diag H)·I` must be Cholesky-factorizable (§3.2 dampening) |
//! | I4 | Budget conservation (Eq. 18) | [`crate::mixed::MixedPrecisionAllocator::allocate`] | achieved average bits must sit in `[b̄, b̄ + Δb·s_max]` for target `b̄ = 4R + 2(1−R)` and largest layer share `s_max` |
//! | I5 | Allocation monotonicity | same | under the Hessian-trace policy, every high-bit layer must be at least as sensitive as every low-bit layer (§3.3) |
//! | I6 | Pack round-trip identity | [`crate::pack::PackedTensor::from_codes`] | `unpack(pack(codes)) == codes` — storage must be lossless over codes |

use aptq_tensor::Matrix;

use crate::plan::QuantPlan;
use crate::trace::SensitivityReport;

/// True when invariant checks are active (debug builds and tests).
pub const ENABLED: bool = cfg!(debug_assertions);

/// Relative tolerance for symmetry: the Gram accumulation is exact in
/// exact arithmetic; blocked f32 kernels reorder sums, so entries can
/// drift by a few ulps of the largest entry.
const SYMMETRY_RTOL: f32 = 1e-4;

/// I1 + I2: the Hessian must be finite and symmetric.
///
/// # Panics
///
/// In debug builds, panics if any entry is non-finite or the matrix is
/// asymmetric beyond `SYMMETRY_RTOL` of its largest entry. No-op in
/// release builds.
pub fn hessian_well_formed(h: &Matrix, ctx: &str) {
    if !ENABLED {
        return;
    }
    let n = h.rows();
    let tol = SYMMETRY_RTOL * h.abs_max().max(1.0);
    for i in 0..n {
        for j in 0..=i {
            let v = h[(i, j)];
            assert!(
                v.is_finite(),
                "{ctx}: H[{i},{j}] = {v} is not finite (invariant I2)"
            );
            let d = (v - h[(j, i)]).abs();
            assert!(
                d <= tol,
                "{ctx}: H[{i},{j}] = {v} vs H[{j},{i}] = {} breaks symmetry by {d} (invariant I1)",
                h[(j, i)]
            );
        }
    }
}

/// I3: after Levenberg–Marquardt dampening the diagonal must be
/// strictly positive — otherwise the Cholesky factorization the OBQ
/// update relies on cannot succeed.
///
/// # Panics
///
/// In debug builds, panics if any diagonal entry is not strictly
/// positive or not finite. No-op in release builds.
pub fn damped_diagonal_positive(h: &Matrix, ctx: &str) {
    if !ENABLED {
        return;
    }
    for i in 0..h.rows() {
        let d = h[(i, i)];
        assert!(
            d.is_finite() && d > 0.0,
            "{ctx}: damped diagonal H[{i},{i}] = {d} must be strictly positive (invariant I3)"
        );
    }
}

/// I4: Eq. 18 budget conservation. For a target high-bit ratio `R` the
/// paper's average is `b̄ = high·R + low·(1−R)`; the greedy layer-wise
/// cover can only overshoot by the share of its last-added layer, so
/// the achieved average must land in `[b̄ − ε, b̄ + (high−low)·s_max + ε]`
/// where `s_max` is the largest single layer's weight share.
///
/// # Panics
///
/// In debug builds, panics if `avg_bits` falls outside the band. No-op
/// in release builds.
pub fn budget_conserved(
    avg_bits: f32,
    high_bits: u8,
    low_bits: u8,
    ratio: f32,
    max_layer_share: f32,
    ctx: &str,
) {
    if !ENABLED {
        return;
    }
    let target = f32::from(high_bits) * ratio + f32::from(low_bits) * (1.0 - ratio);
    let overshoot = f32::from(high_bits - low_bits) * max_layer_share;
    assert!(
        avg_bits >= target - 1e-4,
        "{ctx}: avg bits {avg_bits} below Eq.18 target {target} (invariant I4)"
    );
    assert!(
        avg_bits <= target + overshoot + 1e-4,
        "{ctx}: avg bits {avg_bits} exceeds Eq.18 target {target} + one-layer overshoot \
         {overshoot} (invariant I4)"
    );
}

/// I5: under the Hessian-trace policy the high-bit set must be a prefix
/// of the sensitivity ranking — equivalently, the assignment is monotone
/// in Hessian trace: no low-bit layer may out-rank a high-bit layer.
///
/// # Panics
///
/// In debug builds, panics if a high-bit layer appears after a low-bit
/// layer in the descending-trace order. No-op in release builds.
pub fn allocation_monotone(
    plan: &QuantPlan,
    sensitivity: &SensitivityReport,
    high_bits: u8,
    ctx: &str,
) {
    if !ENABLED {
        return;
    }
    let mut seen_low = false;
    for e in sensitivity.entries() {
        let high = plan.bits_for(e.layer) == Some(high_bits);
        if high {
            assert!(
                !seen_low,
                "{ctx}: layer {:?} is high-bit but a more sensitive layer was low-bit \
                 (invariant I5)",
                e.layer
            );
        } else {
            seen_low = true;
        }
    }
}

/// I6: packed storage must be lossless over codes.
///
/// # Panics
///
/// In debug builds, panics if unpacking `data` does not reproduce
/// `codes` exactly. No-op in release builds.
pub fn pack_roundtrip(codes: &[u8], data: &[u8], bits: u8, ctx: &str) {
    if !ENABLED {
        return;
    }
    let back = crate::pack::unpack_codes(data, bits, codes.len());
    assert!(
        back == codes,
        "{ctx}: unpack(pack(codes)) != codes at {bits} bits (invariant I6)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack_codes;

    #[test]
    fn symmetric_finite_hessian_passes() {
        let h = Matrix::from_fn(3, 3, |i, j| (i + j) as f32);
        hessian_well_formed(&h, "test");
        damped_diagonal_positive(
            &Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 }),
            "test",
        );
    }

    #[test]
    #[should_panic(expected = "invariant I1")]
    fn asymmetry_is_caught() {
        let mut h = Matrix::zeros(2, 2);
        h[(0, 1)] = 1.0;
        h[(1, 0)] = -1.0;
        hessian_well_formed(&h, "test");
    }

    #[test]
    #[should_panic(expected = "invariant I2")]
    fn nan_is_caught() {
        let mut h = Matrix::zeros(2, 2);
        h[(1, 0)] = f32::NAN;
        hessian_well_formed(&h, "test");
    }

    #[test]
    #[should_panic(expected = "invariant I3")]
    fn zero_diagonal_after_damping_is_caught() {
        damped_diagonal_positive(&Matrix::zeros(2, 2), "test");
    }

    #[test]
    fn budget_band_is_exact_for_clean_ratios() {
        // Target 3.0 at R = 0.5 for 2/4 bits; share 0.1 allows up to 3.2.
        budget_conserved(3.0, 4, 2, 0.5, 0.1, "test");
        budget_conserved(3.15, 4, 2, 0.5, 0.1, "test");
    }

    #[test]
    #[should_panic(expected = "invariant I4")]
    fn budget_undershoot_is_caught() {
        budget_conserved(2.8, 4, 2, 0.5, 0.1, "test");
    }

    #[test]
    #[should_panic(expected = "invariant I4")]
    fn budget_overshoot_is_caught() {
        budget_conserved(3.5, 4, 2, 0.5, 0.1, "test");
    }

    #[test]
    fn pack_roundtrip_check_passes_on_real_packing() {
        let codes: Vec<u8> = (0..33).map(|i| i % 4).collect();
        let data = pack_codes(&codes, 2);
        pack_roundtrip(&codes, &data, 2, "test");
    }

    #[test]
    #[should_panic(expected = "invariant I6")]
    fn corrupted_packing_is_caught() {
        let codes: Vec<u8> = (0..16).map(|i| i % 4).collect();
        let mut data = pack_codes(&codes, 2);
        data[0] ^= 0xFF;
        pack_roundtrip(&codes, &data, 2, "test");
    }
}
