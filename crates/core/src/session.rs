//! Shared calibration/Hessian state for multi-method quantization runs.
//!
//! Regenerating a paper table quantizes the *same* pretrained model with
//! many methods, and every OBQ-family method starts from the same
//! expensive step: a full forward pass over the calibration set to
//! accumulate per-layer Hessians ([`crate::calib::collect_hessians`]).
//! GPTQ, OWQ and PB-LLM share [`HessianMode::LayerInput`]; every APTQ
//! row shares [`HessianMode::AttentionAware`]; the mixed-precision rows
//! additionally share one empirical sensitivity probe. A [`QuantSession`]
//! owns the calibration snapshot and memoizes both products, so one
//! activation-capture pass serves every method row that shares a mode.
//!
//! Cache entries are keyed by `(mode, model fingerprint)` — a hash over
//! every weight bit — so a mutated model (e.g. a quantized clone fed
//! back in) never observes stale Hessians. Freshly collected Hessians
//! are re-validated against the [`crate::invariants`] layer (symmetry,
//! finiteness) at the cache boundary in debug builds.

use std::collections::BTreeMap;
use std::sync::Arc;

use aptq_artifact::Fnv64;
use aptq_lm::{LayerRef, Model};
use aptq_obs::Recorder;
use aptq_tensor::Matrix;

use crate::grid::GridConfig;
use crate::hessian::{HessianMode, LayerHessian};
use crate::trace::SensitivityReport;
use crate::QuantError;

/// Shared Hessians for one model fingerprint + mode.
pub type SharedHessians = Arc<BTreeMap<LayerRef, LayerHessian>>;

/// Owns a calibration set plus lazily-populated Hessian and sensitivity
/// caches, shared across every method applied during one experiment run.
#[derive(Debug, Clone)]
pub struct QuantSession {
    calibration: Vec<Vec<u32>>,
    hessians: BTreeMap<(u8, u64), SharedHessians>,
    sensitivities: BTreeMap<(u64, u8, u64), Arc<SensitivityReport>>,
    capture_passes: usize,
    sensitivity_passes: usize,
    metrics: Recorder,
}

impl QuantSession {
    /// Creates a session over a calibration snapshot.
    pub fn new(calibration: Vec<Vec<u32>>) -> Self {
        QuantSession {
            calibration,
            hessians: BTreeMap::new(),
            sensitivities: BTreeMap::new(),
            capture_passes: 0,
            sensitivity_passes: 0,
            metrics: Recorder::new(),
        }
    }

    /// The session's metrics recorder: capture passes, cache hits and
    /// misses under `quant/session/…`, plus everything the OBQ
    /// scheduler records under `quant/obq/…` when driven through the
    /// `*_session` method entry points.
    pub fn metrics(&self) -> &Recorder {
        &self.metrics
    }

    /// Mutable access for instrumented pipelines that record their own
    /// counters (e.g. the OBQ scheduler) into the session's recorder.
    pub fn metrics_mut(&mut self) -> &mut Recorder {
        &mut self.metrics
    }

    /// Takes the accumulated metrics out of the session, leaving an
    /// empty recorder behind — the bench binaries' snapshot hook.
    pub fn take_metrics(&mut self) -> Recorder {
        std::mem::take(&mut self.metrics)
    }

    /// The calibration segments this session was built over.
    pub fn calibration(&self) -> &[Vec<u32>] {
        &self.calibration
    }

    /// How many activation-capture passes ([`crate::collect_hessians`]
    /// runs) this session has performed. A full multi-method table run
    /// should show exactly one per [`HessianMode`] in play.
    pub fn capture_passes(&self) -> usize {
        self.capture_passes
    }

    /// How many empirical sensitivity probes this session has run.
    pub fn sensitivity_passes(&self) -> usize {
        self.sensitivity_passes
    }

    /// Calibration Hessians for `model` under `mode`, collected on first
    /// use and served from the cache afterwards.
    ///
    /// The returned map is shared ([`Arc`]) so callers can hold it while
    /// also mutating the model: the Hessians describe the model *at
    /// collection time*, which is exactly what the OBQ solves need.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::calib::collect_hessians`] failures
    /// (e.g. [`QuantError::EmptyCalibration`]).
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`; the cache key is
    /// content-addressed, so hits and misses return the same values.
    pub fn hessians(
        &mut self,
        model: &Model,
        mode: HessianMode,
    ) -> Result<SharedHessians, QuantError> {
        let key = (mode_key(mode), fingerprint(model));
        if let Some(cached) = self.hessians.get(&key) {
            self.metrics.incr("quant/session/hessian_hits");
            return Ok(Arc::clone(cached));
        }
        self.metrics.incr("quant/session/hessian_misses");
        let fresh = crate::calib::collect_hessians(model, &self.calibration, mode)?;
        self.capture_passes += 1;
        self.metrics.incr("quant/session/capture_passes");
        if crate::invariants::ENABLED {
            for (layer, lh) in &fresh {
                crate::invariants::hessian_well_formed(
                    &lh.h,
                    &format!("QuantSession::hessians({mode}, {layer})"),
                );
            }
        }
        let shared = Arc::new(fresh);
        self.hessians.insert(key, Arc::clone(&shared));
        Ok(shared)
    }

    /// Empirical per-layer sensitivity of `model` at `low_bits` under
    /// `cfg`, probed on a slice of the calibration set (at most 16
    /// segments) and cached per `(model, low_bits, cfg)`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyCalibration`] when the calibration set
    /// is empty or no probe segment has at least two tokens; propagates
    /// probe failures otherwise.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`: layer probes run via
    /// `aptq_tensor::parallel::run_indexed_with`, which returns results
    /// in layer-index order regardless of scheduling.
    pub fn sensitivity(
        &mut self,
        model: &Model,
        low_bits: u8,
        cfg: &GridConfig,
    ) -> Result<Arc<SensitivityReport>, QuantError> {
        if self.calibration.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        let key = (fingerprint(model), low_bits, grid_key(cfg));
        if let Some(cached) = self.sensitivities.get(&key) {
            self.metrics.incr("quant/session/sensitivity_hits");
            return Ok(Arc::clone(cached));
        }
        self.metrics.incr("quant/session/sensitivity_misses");
        let probe_len = self.calibration.len().clamp(1, 16);
        let report = crate::trace::empirical_sensitivity(
            model,
            &self.calibration[..probe_len],
            low_bits,
            cfg,
        )?;
        self.sensitivity_passes += 1;
        self.metrics.incr("quant/session/sensitivity_probes");
        let shared = Arc::new(report);
        self.sensitivities.insert(key, Arc::clone(&shared));
        Ok(shared)
    }
}

fn mode_key(mode: HessianMode) -> u8 {
    match mode {
        HessianMode::LayerInput => 0,
        HessianMode::AttentionAware => 1,
    }
}

/// FNV-1a over every weight bit of the model (embedding, LM head, all
/// transformer layer weights). Any weight mutation — quantization
/// installing dequantized values, finetuning — changes the fingerprint,
/// so cache entries can never serve a stale model state.
///
/// The hashing primitive is [`aptq_artifact::Fnv64`] — the same
/// machinery artifact envelopes checksum with, so fingerprints here
/// and on-disk artifacts can never use divergent schemes.
fn fingerprint(model: &Model) -> u64 {
    let mut h = Fnv64::new();
    eat_matrix(&mut h, model.embed());
    eat_matrix(&mut h, model.lm_head());
    for layer in model.layer_refs() {
        eat_matrix(&mut h, model.layer_weight(layer));
    }
    h.finish()
}

/// Grid parameters that influence the sensitivity probe (RTN fit).
fn grid_key(cfg: &GridConfig) -> u64 {
    let mut h = Fnv64::new();
    h.eat_u64(cfg.group_size as u64);
    h.eat_u64(cfg.block_size as u64);
    h.eat_u64(u64::from(cfg.asymmetric));
    h.eat_u64(u64::from(cfg.damp.to_bits()));
    h.finish()
}

/// Absorbs shape + every f32 bit pattern (one word per value).
fn eat_matrix(h: &mut Fnv64, m: &Matrix) {
    h.eat_u64(m.rows() as u64);
    h.eat_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.eat_word(u64::from(v.to_bits()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_lm::ModelConfig;

    fn calib() -> Vec<Vec<u32>> {
        (0..6)
            .map(|k| (0..16).map(|i| ((i * 5 + k) % 16) as u32).collect())
            .collect()
    }

    #[test]
    fn hessians_are_collected_once_per_mode() {
        let model = Model::new(&ModelConfig::test_tiny(16), 5);
        let mut session = QuantSession::new(calib());
        let a = session.hessians(&model, HessianMode::LayerInput).unwrap();
        let b = session.hessians(&model, HessianMode::LayerInput).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(session.capture_passes(), 1);
        session
            .hessians(&model, HessianMode::AttentionAware)
            .unwrap();
        session
            .hessians(&model, HessianMode::AttentionAware)
            .unwrap();
        assert_eq!(session.capture_passes(), 2);
    }

    #[test]
    fn metrics_track_hits_and_misses() {
        let model = Model::new(&ModelConfig::test_tiny(16), 5);
        let mut session = QuantSession::new(calib());
        session.hessians(&model, HessianMode::LayerInput).unwrap();
        session.hessians(&model, HessianMode::LayerInput).unwrap();
        session.hessians(&model, HessianMode::LayerInput).unwrap();
        let m = session.metrics();
        assert_eq!(m.get("quant/session/capture_passes"), 1);
        assert_eq!(m.get("quant/session/hessian_misses"), 1);
        assert_eq!(m.get("quant/session/hessian_hits"), 2);

        let cfg = GridConfig::default();
        session.sensitivity(&model, 2, &cfg).unwrap();
        session.sensitivity(&model, 2, &cfg).unwrap();
        assert_eq!(session.metrics().get("quant/session/sensitivity_probes"), 1);
        assert_eq!(session.metrics().get("quant/session/sensitivity_hits"), 1);

        let taken = session.take_metrics();
        assert!(!taken.is_empty());
        assert!(session.metrics().is_empty(), "take must drain the recorder");
    }

    #[test]
    fn mutated_model_invalidates_cache() {
        let mut model = Model::new(&ModelConfig::test_tiny(16), 6);
        let mut session = QuantSession::new(calib());
        session.hessians(&model, HessianMode::LayerInput).unwrap();
        let r = model.layer_refs()[0];
        model.layer_weight_mut(r)[(0, 0)] += 1.0;
        session.hessians(&model, HessianMode::LayerInput).unwrap();
        assert_eq!(
            session.capture_passes(),
            2,
            "a weight change must force a fresh capture pass"
        );
    }

    #[test]
    fn sensitivity_is_probed_once_per_config() {
        let model = Model::new(&ModelConfig::test_tiny(16), 7);
        let mut session = QuantSession::new(calib());
        let cfg = GridConfig::default();
        let a = session.sensitivity(&model, 2, &cfg).unwrap();
        let b = session.sensitivity(&model, 2, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(session.sensitivity_passes(), 1);
        // A different grid config is a different probe.
        let other = GridConfig {
            group_size: 16,
            ..cfg
        };
        session.sensitivity(&model, 2, &other).unwrap();
        assert_eq!(session.sensitivity_passes(), 2);
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let model = Model::new(&ModelConfig::test_tiny(16), 8);
        let mut session = QuantSession::new(Vec::new());
        assert!(matches!(
            session.hessians(&model, HessianMode::LayerInput),
            Err(QuantError::EmptyCalibration)
        ));
        assert!(matches!(
            session.sensitivity(&model, 2, &GridConfig::default()),
            Err(QuantError::EmptyCalibration)
        ));
        assert_eq!(session.capture_passes(), 0);
    }

    #[test]
    fn fingerprint_tracks_every_weight_family() {
        let base = Model::new(&ModelConfig::test_tiny(16), 9);
        let f0 = fingerprint(&base);
        assert_eq!(
            f0,
            fingerprint(&base.clone()),
            "clone must fingerprint equal"
        );

        let mut m = base.clone();
        m.embed_mut()[(0, 0)] += 0.5;
        assert_ne!(f0, fingerprint(&m), "embedding change must be visible");

        let mut m = base.clone();
        let r = *base.layer_refs().last().unwrap();
        m.layer_weight_mut(r)[(0, 0)] += 0.5;
        assert_ne!(f0, fingerprint(&m), "layer weight change must be visible");
    }
}
