//! Determinism suite for the layer-job scheduler and the session caches.
//!
//! Contract: the parallel OBQ scheduler and the parallel sensitivity
//! probe are *bit-identical* to their sequential paths at any thread
//! count, and session-cached Hessians equal freshly collected ones.
//! `ci/check.sh` additionally runs this suite under `APTQ_THREADS=1`
//! and `APTQ_THREADS=4` to exercise the env-driven default path.

use std::sync::Arc;

use aptq_core::grid::GridConfig;
use aptq_core::methods::apply_plan_obq_threads;
use aptq_core::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq_core::trace::empirical_sensitivity_threads;
use aptq_core::{collect_hessians, HessianMode, QuantPlan, QuantSession};
use aptq_lm::{Model, ModelConfig};

fn calib() -> Vec<Vec<u32>> {
    (0..8)
        .map(|k| (0..16).map(|i| ((i * 5 + k) % 16) as u32).collect())
        .collect()
}

fn plans_under_test(model: &Model, sensitivity_cfg: &GridConfig) -> Vec<QuantPlan> {
    let mut session = QuantSession::new(calib());
    let sensitivity = session
        .sensitivity(model, 2, sensitivity_cfg)
        .expect("sensitivity probe");
    let allocator = MixedPrecisionAllocator::two_four(0.5).expect("ratio");
    vec![
        QuantPlan::uniform(model, 4),
        QuantPlan::uniform(model, 2),
        allocator.allocate(model, &sensitivity, AllocationPolicy::HessianTrace),
        allocator.allocate(model, &sensitivity, AllocationPolicy::ManualBlockwise),
    ]
}

#[test]
fn scheduler_bit_identical_across_thread_counts() {
    let cfg = GridConfig::default();
    for mode in [HessianMode::LayerInput, HessianMode::AttentionAware] {
        let base = Model::new(&ModelConfig::test_tiny(16), 42);
        let hessians = collect_hessians(&base, &calib(), mode).unwrap();
        for (p, plan) in plans_under_test(&base, &cfg).iter().enumerate() {
            let mut seq_model = base.clone();
            let seq_report =
                apply_plan_obq_threads("ref", &mut seq_model, plan, &hessians, &cfg, 1).unwrap();
            for threads in [2usize, 4] {
                let mut par_model = base.clone();
                let par_report =
                    apply_plan_obq_threads("ref", &mut par_model, plan, &hessians, &cfg, threads)
                        .unwrap();
                assert_eq!(
                    seq_report, par_report,
                    "{mode} plan {p}: report differs at {threads} threads"
                );
                for layer in base.layer_refs() {
                    assert_eq!(
                        seq_model.layer_weight(layer),
                        par_model.layer_weight(layer),
                        "{mode} plan {p}: weight {layer} differs at {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn scheduler_errors_deterministically_and_leaves_model_untouched() {
    let base = Model::new(&ModelConfig::test_tiny(16), 43);
    let hessians = collect_hessians(&base, &calib(), HessianMode::LayerInput).unwrap();
    let plan = QuantPlan::uniform(&base, 9); // unsupported width
    for threads in [1usize, 4] {
        let mut model = base.clone();
        let err = apply_plan_obq_threads(
            "x",
            &mut model,
            &plan,
            &hessians,
            &GridConfig::default(),
            threads,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            aptq_core::QuantError::UnsupportedBits { bits: 9 }
        ));
        for layer in base.layer_refs() {
            assert_eq!(
                base.layer_weight(layer),
                model.layer_weight(layer),
                "failed run must not mutate weights ({threads} threads)"
            );
        }
    }
}

#[test]
fn cached_session_hessians_equal_fresh_collection() {
    let model = Model::new(&ModelConfig::test_tiny(16), 44);
    let mut session = QuantSession::new(calib());
    for mode in [HessianMode::LayerInput, HessianMode::AttentionAware] {
        // Warm the cache, then compare the cached copy against a fresh
        // collect_hessians run.
        session.hessians(&model, mode).unwrap();
        let cached = session.hessians(&model, mode).unwrap();
        let fresh = collect_hessians(&model, &calib(), mode).unwrap();
        assert_eq!(cached.len(), fresh.len());
        for (layer, fresh_lh) in &fresh {
            let cached_lh = &cached[layer];
            assert_eq!(cached_lh.n_tokens, fresh_lh.n_tokens, "{mode} {layer}");
            assert_eq!(cached_lh.mean_trace, fresh_lh.mean_trace, "{mode} {layer}");
            assert_eq!(
                cached_lh.h.as_slice(),
                fresh_lh.h.as_slice(),
                "{mode} {layer}: cached Hessian must be bit-identical"
            );
        }
    }
    assert_eq!(
        session.capture_passes(),
        2,
        "exactly one capture pass per mode"
    );
}

#[test]
fn session_sensitivity_matches_direct_probe() {
    let model = Model::new(&ModelConfig::test_tiny(16), 45);
    let cfg = GridConfig::default();
    let mut session = QuantSession::new(calib());
    let via_session = session.sensitivity(&model, 2, &cfg).unwrap();
    let probe_len = calib().len().clamp(1, 16);
    let direct = empirical_sensitivity_threads(&model, &calib()[..probe_len], 2, &cfg, 1).unwrap();
    assert_eq!(*Arc::clone(&via_session), direct);
    // Cache hit: no extra probe.
    session.sensitivity(&model, 2, &cfg).unwrap();
    assert_eq!(session.sensitivity_passes(), 1);
}
