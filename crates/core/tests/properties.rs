//! Property-based tests for the quantization core.

use aptq_core::engine::{quantize_layer_obq, quantize_layer_rtn};
use aptq_core::grid::{GridConfig, QuantGrid};
use aptq_core::hessian::{HessianAccumulator, HessianMode};
use aptq_core::invariants;
use aptq_core::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq_core::pack::{pack_codes, unpack_codes};
use aptq_core::plan::eq18_average_bits;
use aptq_core::trace::SensitivityReport;
use aptq_lm::{Model, ModelConfig};
use aptq_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn int_grid_roundtrip_bounded_by_half_step(
        group in proptest::collection::vec(-3.0f32..3.0, 1..40),
        bits in 2u8..=8,
        asym in proptest::bool::ANY,
    ) {
        let grid = QuantGrid::int(bits, asym);
        let (codes, deq, p) = grid.quantize_group(&group);
        prop_assert_eq!(codes.len(), group.len());
        for (w, d) in group.iter().zip(deq.iter()) {
            // Within the representable range the error is ≤ step/2; the
            // asymmetric grid covers [min,max]∪{0} exactly, the symmetric
            // grid may clip the single most-negative value by one step.
            prop_assert!((w - d).abs() <= p.scale * 1.01 + 1e-5,
                "bits={bits} asym={asym}: |{w}-{d}| vs step {}", p.scale);
        }
    }

    #[test]
    fn quantized_codes_always_decode_to_same_value(
        group in proptest::collection::vec(-2.0f32..2.0, 1..24),
        bits in 1u8..=8,
    ) {
        let grid = QuantGrid::int(bits, true);
        let p = grid.fit_params(&group);
        for &w in &group {
            let (c, d) = grid.quantize(w, p);
            prop_assert_eq!(grid.dequantize(c, p), d);
        }
    }

    #[test]
    fn packing_roundtrips(
        codes in proptest::collection::vec(0u8..16, 0..200),
        bits in 4u8..=8,
    ) {
        let packed = pack_codes(&codes, bits);
        let back = unpack_codes(&packed, bits, codes.len());
        prop_assert_eq!(back, codes);
    }

    #[test]
    fn packing_is_tight(
        n in 1usize..300,
        bits in 1u8..=8,
    ) {
        let codes = vec![0u8; n];
        let packed = pack_codes(&codes, bits);
        prop_assert_eq!(packed.len(), (n * bits as usize).div_ceil(8));
    }

    #[test]
    fn eq18_is_affine_and_bounded(r in 0.0f32..=1.0) {
        let b = eq18_average_bits(r);
        prop_assert!((2.0..=4.0).contains(&b));
        // Affine: midpoint property.
        let mid = eq18_average_bits(r / 2.0);
        prop_assert!((mid - (b + 2.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn obq_never_increases_hessian_objective_vs_rtn(
        x in matrix(30, 8),
        w in matrix(8, 5),
    ) {
        // tr(ΔᵀHΔ) for OBQ must not exceed RTN's by more than round-off:
        // OBQ greedily minimizes exactly this objective.
        let mut acc = HessianAccumulator::new(8);
        acc.update(&x);
        let h = acc.finish();
        let cfg = GridConfig { group_size: 8, block_size: 4, ..GridConfig::default() };
        let grid = QuantGrid::int(3, true);
        let obq = quantize_layer_obq("p", &w, &h, grid, &cfg).unwrap();
        let rtn = quantize_layer_rtn(&w, grid, &cfg);
        let obj = |deq: &Matrix| {
            let dw = w.sub(deq);
            dw.hadamard(&h.h.matmul(&dw)).sum()
        };
        prop_assert!(obj(&obq.dequantized) <= obj(&rtn.dequantized) * 1.3 + 1e-3,
            "OBQ {} vs RTN {}", obj(&obq.dequantized), obj(&rtn.dequantized));
    }

    #[test]
    fn obq_output_is_always_finite(
        x in matrix(12, 6),
        w in matrix(6, 4),
        bits in 2u8..=4,
    ) {
        let mut acc = HessianAccumulator::new(6);
        acc.update(&x);
        let h = acc.finish();
        let res = quantize_layer_obq("p", &w, &h, QuantGrid::int(bits, true),
            &GridConfig::default()).unwrap();
        prop_assert!(res.dequantized.all_finite());
        prop_assert!(res.recon_error.is_finite());
        prop_assert!(res.recon_error >= -1e-3);
    }

    #[test]
    fn packed_storage_matches_dequantized(
        w in matrix(8, 6),
        bits in 2u8..=4,
    ) {
        let cfg = GridConfig { group_size: 4, ..GridConfig::default() };
        let res = quantize_layer_rtn(&w, QuantGrid::int(bits, true), &cfg);
        let unpacked = res.packed.dequantize();
        for (a, b) in unpacked.as_slice().iter().zip(res.dequantized.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn binary_grid_preserves_signs(
        group in proptest::collection::vec(-2.0f32..2.0, 1..32),
    ) {
        let grid = QuantGrid::binary();
        let (_, deq, _) = grid.quantize_group(&group);
        for (w, d) in group.iter().zip(deq.iter()) {
            if w.abs() > 1e-6 {
                prop_assert_eq!(w.signum(), d.signum());
            }
        }
    }

    #[test]
    fn packing_roundtrips_at_mixed_precision_widths(
        codes in proptest::collection::vec(0u8..4, 0..240),
        bits in 2u8..=4,
    ) {
        // The widths the APTQ 2/4 scheme (and the 3-bit ablation) store:
        // codes drawn from 0..4 are valid under every width in 2..=4.
        let packed = pack_codes(&codes, bits);
        let back = unpack_codes(&packed, bits, codes.len());
        prop_assert_eq!(back.len(), codes.len());
        prop_assert_eq!(back, codes);
        // I6 is also enforced as a debug invariant at the same boundary.
        invariants::pack_roundtrip(&codes, &packed, bits, "property test");
    }

    #[test]
    fn hessian_accumulator_stays_symmetric_and_finite(
        batches in proptest::collection::vec(matrix(7, 5), 1..5),
        weight in 0.1f32..4.0,
    ) {
        // Eq. 7: H = 2·ΣX̃ᵀX̃ is a Gram sum — symmetric PSD, and finite
        // for finite inputs, regardless of how updates are interleaved.
        let mut acc = HessianAccumulator::new(5);
        for (k, x) in batches.iter().enumerate() {
            match k % 3 {
                0 => acc.update(x),
                1 => acc.update_weighted(x, weight),
                _ => acc.update_weighted_uncounted(x, weight),
            }
        }
        let lh = acc.finish();
        invariants::hessian_well_formed(&lh.h, "property test");
        for i in 0..5 {
            prop_assert!(lh.h[(i, i)] >= 0.0, "Gram diagonal must be non-negative");
            for j in 0..5 {
                prop_assert!(lh.h[(i, j)].is_finite());
            }
        }
        prop_assert!(lh.mean_trace >= 0.0);
        // Dampening must yield a strictly positive diagonal (I3).
        invariants::damped_diagonal_positive(&lh.damped(0.01), "property test");
    }
}

proptest! {
    // Each case builds a model and collects Hessians, so keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mixed_allocation_tracks_eq18_budget(r in 0.0f32..=1.0) {
        // Eq. 18: average bits = 4R + 2(1−R). The layer-wise greedy cover
        // may overshoot by at most one layer's weight share.
        let model = Model::new(&ModelConfig::test_tiny(16), 5);
        let segs: Vec<Vec<u32>> =
            (0..3).map(|k| (0..12).map(|i| ((i + 2 * k) % 16) as u32).collect()).collect();
        let hs = aptq_core::collect_hessians(&model, &segs, HessianMode::AttentionAware)
            .expect("hessian collection on a fresh tiny model must succeed");
        let sens = SensitivityReport::from_hessians(&hs);
        let alloc = MixedPrecisionAllocator::two_four(r)
            .expect("ratio sampled from [0,1] is always valid");
        for policy in [AllocationPolicy::HessianTrace, AllocationPolicy::ManualBlockwise] {
            let plan = alloc.allocate(&model, &sens, policy);
            let avg = plan.avg_bits(&model);
            let want = eq18_average_bits(r);
            prop_assert!(avg >= want - 1e-4,
                "{policy}: achieved {avg} must reach Eq.18 target {want}");
            prop_assert!(avg <= want + 2.0 * 0.35 + 1e-4,
                "{policy}: achieved {avg} overshoots Eq.18 target {want} by more than one layer");
        }
    }
}
