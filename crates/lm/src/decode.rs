//! KV-cache incremental decoding.
//!
//! The paper motivates APTQ with LLM deployment on edge devices; the
//! inference loop that actually runs there is autoregressive decoding
//! with a key/value cache — O(T) attention work per new token instead of
//! re-running the full O(T²) prefill every step. [`DecodeSession`]
//! implements that loop and is verified (see tests) to produce logits
//! identical to the full forward pass.
//!
//! The cache is **preallocated** at `max_seq_len` rows per layer and
//! written in place, one row per token. Growing it with
//! [`Matrix::vcat`] instead would copy the entire cache on every token —
//! O(T²) bytes moved over a T-token decode — which is exactly the kind
//! of regression the `decode/kv_bytes_moved` counter exists to catch:
//! it counts bytes *written into* the cache and must stay linear in T.

use aptq_obs::Recorder;
use aptq_tensor::Matrix;

use crate::linear::{Linear, LinearOp};
use crate::model::ModelOf;
use crate::rope::RopeTable;
use crate::LmError;

/// Per-layer key/value cache: rotated keys and raw values, preallocated
/// at `max_seq_len × d_model`; rows `[0, pos)` are valid.
#[derive(Debug, Clone)]
struct LayerKv {
    /// Rotated keys (heads concatenated).
    k_rot: Matrix,
    /// Values.
    v: Matrix,
}

/// An incremental decoding session over a model, generic over the
/// linear operator `L`.
///
/// Instantiated at `L = `[`Linear`] this is fp32 cached decoding;
/// instantiated at `aptq_qmodel::QuantizedLinear` the same loop decodes
/// straight from packed sub-byte storage, turning quantized generation
/// from O(T²) full re-forwards into O(T) cached steps.
///
/// # Example
///
/// ```
/// use aptq_lm::{decode::DecodeSession, Model, ModelConfig};
///
/// # fn main() -> Result<(), aptq_lm::LmError> {
/// let model = Model::new(&ModelConfig::test_tiny(16), 0);
/// let mut session = DecodeSession::new(&model);
/// let logits = session.feed(3)?;
/// assert_eq!(logits.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeSession<'m, L = Linear> {
    model: &'m ModelOf<L>,
    layers: Vec<LayerKv>,
    pos: usize,
    /// Position at which non-finite logits first appeared, if ever.
    /// A quarantined session refuses all further tokens.
    quarantined: Option<usize>,
    metrics: Recorder,
}

impl<'m, L: LinearOp> DecodeSession<'m, L> {
    /// Starts an empty session, preallocating the full
    /// `max_seq_len`-row KV cache so [`DecodeSession::feed`] never
    /// reallocates or copies previously cached rows.
    pub fn new(model: &'m ModelOf<L>) -> Self {
        let d = model.config().d_model;
        let t_max = model.config().max_seq_len;
        let layers = (0..model.config().n_layers)
            .map(|_| LayerKv {
                k_rot: Matrix::zeros(t_max, d),
                v: Matrix::zeros(t_max, d),
            })
            .collect();
        DecodeSession {
            model,
            layers,
            pos: 0,
            quarantined: None,
            metrics: Recorder::new(),
        }
    }

    /// The model this session decodes.
    pub fn model(&self) -> &'m ModelOf<L> {
        self.model
    }

    /// Number of tokens consumed so far.
    pub fn len(&self) -> usize {
        self.pos
    }

    /// Whether no tokens have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// Cache memory in **used** bytes (the edge-deployment statistic:
    /// 2 matrices × layers × T × d_model × 4 bytes). Preallocated but
    /// not-yet-written rows are capacity, not usage, so this grows
    /// linearly with the number of tokens fed.
    pub fn cache_bytes(&self) -> usize {
        self.layers.len() * 2 * self.pos * self.model.config().d_model * std::mem::size_of::<f32>()
    }

    /// Telemetry recorded so far: `decode/tokens`,
    /// `decode/kv_bytes_moved`, plus whatever the operator's
    /// [`LinearOp::forward_into`] hook counts (packed operators record
    /// `qmodel/qlinear/…` unpacking work per fed token).
    pub fn metrics(&self) -> &Recorder {
        &self.metrics
    }

    /// Takes the accumulated telemetry, leaving an empty recorder (for
    /// merging into a pipeline-wide [`Recorder`]).
    pub fn take_metrics(&mut self) -> Recorder {
        std::mem::take(&mut self.metrics)
    }

    /// The position at which non-finite logits first appeared, if the
    /// session is quarantined. A quarantined session rejects every
    /// further [`DecodeSession::feed`] with
    /// [`LmError::NonFiniteLogits`].
    pub fn quarantined(&self) -> Option<usize> {
        self.quarantined
    }

    /// Fault-injection hook (chaos suite): overwrites the most
    /// recently written layer-0 key-cache row with NaN, so the next
    /// [`DecodeSession::feed`] attends over poisoned state and must
    /// detect the resulting non-finite logits. No-op before the first
    /// fed token (no cache row has been written yet).
    pub fn poison_kv_cache(&mut self) {
        if self.pos == 0 || self.layers.is_empty() {
            return;
        }
        let row = self.layers[0].k_rot.row_mut(self.pos - 1);
        for v in row {
            *v = f32::NAN;
        }
    }

    /// Feeds one token; returns the next-token logits.
    ///
    /// # Determinism
    ///
    /// Projections run on the shared matmul threadpool
    /// ([`aptq_tensor::parallel`]); logits and recorded counters are
    /// bit-identical at any `APTQ_THREADS` value.
    ///
    /// # HotPath
    ///
    /// Allocation budget: per-token scratch (projection rows, per-head
    /// score vector, logits row) sized by the model, never by the
    /// sequence; the KV cache is written in place, never regrown. The
    /// non-finite quarantine scan reads the logits row in place.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for invalid ids,
    /// [`LmError::SequenceFull`] when the RoPE table (i.e.
    /// `max_seq_len`) is exhausted, and [`LmError::NonFiniteLogits`]
    /// when the logits row contains NaN/Inf — the session is then
    /// quarantined (this and all later feeds fail, the position never
    /// advances) and `decode/quarantine/sessions` is recorded.
    pub fn feed(&mut self, token: u32) -> Result<Vec<f32>, LmError> {
        if let Some(pos) = self.quarantined {
            return Err(LmError::NonFiniteLogits { pos });
        }
        let cfg = self.model.config();
        if token as usize >= cfg.vocab_size {
            return Err(LmError::TokenOutOfRange {
                token,
                vocab: cfg.vocab_size,
            });
        }
        if self.pos >= cfg.max_seq_len {
            return Err(LmError::SequenceFull {
                pos: self.pos,
                max_seq_len: cfg.max_seq_len,
            });
        }
        let d_model = cfg.d_model;
        let n_heads = cfg.n_heads;
        let d_head = cfg.d_head();
        let rope = self.model.rope();
        let pos = self.pos;

        // Embedding row.
        let mut x = Matrix::zeros(1, d_model);
        x.row_mut(0)
            .copy_from_slice(self.model.embed().row(token as usize));

        let model = self.model;
        for (li, block) in model.blocks().iter().enumerate() {
            // Attention sub-layer. Projections go through the generic
            // LinearOp hook so packed operators count their unpacking
            // work into the session metrics.
            let (normed, _) = block.norm1.forward(&x);
            let mut q = block.attn.wq().forward_op(&normed, Some(&mut self.metrics));
            let mut k = block.attn.wk().forward_op(&normed, Some(&mut self.metrics));
            let v = block.attn.wv().forward_op(&normed, Some(&mut self.metrics));
            // RoPE, in-place cache append (only the new row is written,
            // the rest of the cache is untouched) and attention all run
            // in the shared per-row kernel, so a batched step produces
            // this row bit-for-bit.
            let mut concat = Matrix::zeros(1, d_model);
            attend_cached_row(
                &mut self.layers[li],
                rope,
                n_heads,
                d_head,
                pos,
                q.row_mut(0),
                k.row_mut(0),
                v.row(0),
                concat.row_mut(0),
            );
            self.metrics.add(
                "decode/kv_bytes_moved",
                (2 * d_model * std::mem::size_of::<f32>()) as u64,
            );
            let attn_out = block.attn.wo().forward_op(&concat, Some(&mut self.metrics));
            x.add_assign(&attn_out);

            // FFN sub-layer.
            let (normed2, _) = block.norm2.forward(&x);
            let (ffn_out, _) = block.ffn.forward_opt(&normed2, Some(&mut self.metrics));
            x.add_assign(&ffn_out);
        }

        let (normed, _) = model.final_norm().forward(&x);
        let logits = normed.matmul(model.lm_head());
        if !logits.row(0).iter().all(|v| v.is_finite()) {
            self.quarantined = Some(self.pos);
            self.metrics.incr("decode/quarantine/sessions");
            return Err(LmError::NonFiniteLogits { pos: self.pos });
        }
        self.pos += 1;
        self.metrics.incr("decode/tokens");
        // `logits` is 1 × vocab: moving it out is free, where
        // `row(0).to_vec()` would copy the row.
        Ok(logits.into_vec())
    }

    /// Feeds a whole prompt, returning the logits after its last token.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`; see [`DecodeSession::feed`].
    ///
    /// # Errors
    ///
    /// Returns [`LmError::EmptyInput`] for an empty prompt; propagates
    /// [`DecodeSession::feed`] errors.
    pub fn feed_all(&mut self, tokens: &[u32]) -> Result<Vec<f32>, LmError> {
        let mut last = None;
        for &t in tokens {
            last = Some(self.feed(t)?);
        }
        last.ok_or(LmError::EmptyInput)
    }
}

/// Greedy generation through the KV cache (functionally identical to
/// [`crate::generate::generate_greedy`], asymptotically cheaper), for
/// any linear operator — fp32 or packed.
///
/// Token selection goes through [`aptq_tensor::select::argmax`]: NaN
/// logits never win and ties break toward the lowest token id.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`; see [`DecodeSession::feed`].
///
/// # Errors
///
/// Propagates session errors; an empty prompt is [`LmError::EmptyInput`].
pub fn generate_greedy_cached<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
) -> Result<Vec<u32>, LmError> {
    if prompt.is_empty() {
        return Err(LmError::EmptyInput);
    }
    let mut session = DecodeSession::new(model);
    let mut logits = session.feed_all(prompt)?;
    let mut out = prompt.to_vec();
    for _ in 0..n_new {
        let next = aptq_tensor::select::argmax(&logits) as u32;
        out.push(next);
        if session.len() >= model.config().max_seq_len {
            break;
        }
        logits = session.feed(next)?;
    }
    Ok(out)
}

/// One sequence's cached-attention step for one layer: rotates the
/// freshly projected `q`/`k` rows for position `pos`, appends `k`/`v`
/// in place at cache row `pos`, and accumulates the softmax-weighted
/// values over rows `[0, pos]` into `out`.
///
/// Shared verbatim between [`DecodeSession::feed`] and
/// [`BatchDecodeSession::step`] (one call per batch row), so a batched
/// row is bit-identical to solo decoding **by construction**: the float
/// operations and their order never depend on how many other sequences
/// share the step.
///
/// Dot-product order matches `Matrix::matmul_nt`; the softmax mirrors
/// `aptq_tensor::activation::softmax_rows`.
#[allow(clippy::too_many_arguments)]
fn attend_cached_row(
    kv: &mut LayerKv,
    rope: &RopeTable,
    n_heads: usize,
    d_head: usize,
    pos: usize,
    q: &mut [f32],
    k: &mut [f32],
    v: &[f32],
    out: &mut [f32],
) {
    for h in 0..n_heads {
        let lo = h * d_head;
        let hi = lo + d_head;
        rope.apply_row(&mut q[lo..hi], pos);
        rope.apply_row(&mut k[lo..hi], pos);
    }
    kv.k_rot.row_mut(pos).copy_from_slice(k);
    kv.v.row_mut(pos).copy_from_slice(v);

    let t = pos + 1;
    let scale = 1.0 / (d_head as f32).sqrt();
    for h in 0..n_heads {
        let lo = h * d_head;
        let hi = lo + d_head;
        let qh = &q[lo..hi];
        // Scores against the cached keys, read in place (no per-token
        // copy of the cache).
        let mut scores = vec![0.0f32; t];
        for (ti, s) in scores.iter_mut().enumerate() {
            let kh = &kv.k_rot.row(ti)[lo..hi];
            let mut acc = 0.0f32;
            for (a, b) in qh.iter().zip(kh) {
                acc += a * b;
            }
            *s = acc * scale;
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for s in &mut scores {
            *s = (*s - max).exp();
            sum += *s;
        }
        let inv = 1.0 / sum;
        for s in &mut scores {
            *s *= inv;
        }
        let head = &mut out[lo..hi];
        for (ti, &s) in scores.iter().enumerate() {
            let vh = &kv.v.row(ti)[lo..hi];
            for (o, b) in head.iter_mut().zip(vh) {
                *o += s * b;
            }
        }
    }
}

/// One sequence's state inside a [`BatchDecodeSession`]: its private
/// per-layer KV cache and its own position counter.
#[derive(Debug)]
struct SeqSlot {
    layers: Vec<LayerKv>,
    pos: usize,
}

/// A multi-sequence KV-cached decode engine: one token per active
/// sequence per step, with the per-sequence hidden rows stacked into a
/// single B×d matrix so every projection runs **once per layer per
/// step** over the whole batch. For a packed operator
/// (`aptq_qmodel::QuantizedLinear`) that means each sub-byte weight
/// group is unpacked once for B sequences instead of B times — the
/// serving amortization APTQ targets.
///
/// Sequences join and leave independently (continuous batching): a
/// retired slot is reused by the next [`BatchDecodeSession::join`] and
/// never disturbs other sequences' caches or positions.
///
/// Every sequence's logits are bit-identical to decoding it alone in a
/// [`DecodeSession`] — attention runs per row against that sequence's
/// own cache through the same kernel, and the batched projections are
/// row-independent by the [`LinearOp`] contract.
///
/// # Example
///
/// ```
/// use aptq_lm::{decode::BatchDecodeSession, Model, ModelConfig};
///
/// # fn main() -> Result<(), aptq_lm::LmError> {
/// let model = Model::new(&ModelConfig::test_tiny(16), 0);
/// let mut batch = BatchDecodeSession::new(&model);
/// let a = batch.join();
/// let b = batch.join();
/// let logits = batch.step(&[(a, 3), (b, 7)])?;
/// assert_eq!(logits.shape(), (2, 16));
/// batch.leave(a)?;
/// let logits = batch.step(&[(b, 1)])?; // `b` continues undisturbed
/// assert_eq!(logits.shape(), (1, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchDecodeSession<'m, L = Linear> {
    model: &'m ModelOf<L>,
    slots: Vec<Option<SeqSlot>>,
    /// Sequence ids evicted by the most recent
    /// [`BatchDecodeSession::step`] for non-finite logits.
    evicted: Vec<usize>,
    metrics: Recorder,
}

impl<'m, L: LinearOp> BatchDecodeSession<'m, L> {
    /// Starts a session with no active sequences.
    pub fn new(model: &'m ModelOf<L>) -> Self {
        BatchDecodeSession {
            model,
            slots: Vec::new(),
            evicted: Vec::new(),
            metrics: Recorder::new(),
        }
    }

    /// Admits a new sequence and returns its id (used with
    /// [`BatchDecodeSession::step`] / [`BatchDecodeSession::leave`]).
    /// The lowest retired slot is reused if one exists; its
    /// `max_seq_len`-row KV cache is preallocated here so stepping
    /// never regrows it.
    pub fn join(&mut self) -> usize {
        let d = self.model.config().d_model;
        let t_max = self.model.config().max_seq_len;
        let fresh = SeqSlot {
            layers: (0..self.model.config().n_layers)
                .map(|_| LayerKv {
                    k_rot: Matrix::zeros(t_max, d),
                    v: Matrix::zeros(t_max, d),
                })
                .collect(),
            pos: 0,
        };
        self.metrics.incr("decode/batch/joins");
        if let Some(i) = self.slots.iter().position(|s| s.is_none()) {
            self.slots[i] = Some(fresh);
            i
        } else {
            self.slots.push(Some(fresh));
            self.slots.len() - 1
        }
    }

    /// Retires sequence `seq`, freeing its slot for a later
    /// [`BatchDecodeSession::join`]. Other sequences are undisturbed.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::UnknownSeq`] if `seq` is not active.
    pub fn leave(&mut self, seq: usize) -> Result<(), LmError> {
        if seq >= self.slots.len() || self.slots[seq].is_none() {
            return Err(LmError::UnknownSeq { seq });
        }
        self.slots[seq] = None;
        self.metrics.incr("decode/batch/leaves");
        Ok(())
    }

    /// Number of currently active sequences.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether sequence `seq` is active.
    pub fn is_active(&self, seq: usize) -> bool {
        seq < self.slots.len() && self.slots[seq].is_some()
    }

    /// Tokens consumed so far by sequence `seq` (`None` if inactive).
    pub fn seq_len(&self, seq: usize) -> Option<usize> {
        match self.slots.get(seq) {
            Some(Some(slot)) => Some(slot.pos),
            _ => None,
        }
    }

    /// Cache memory in **used** bytes, summed over active sequences
    /// (same statistic as [`DecodeSession::cache_bytes`]). A sequence
    /// that leaves stops counting immediately.
    pub fn cache_bytes(&self) -> usize {
        let row = 2 * self.model.config().d_model * std::mem::size_of::<f32>();
        self.slots
            .iter()
            .flatten()
            .map(|slot| slot.layers.len() * slot.pos * row)
            .sum()
    }

    /// Telemetry recorded so far: `decode/batch/steps`,
    /// `decode/batch/tokens`, `decode/batch/occupancy` (active
    /// sequences summed over steps), `decode/batch/joins`/`leaves`,
    /// `decode/batch/kv_bytes_moved`, plus whatever the operator's
    /// [`LinearOp::forward_into`] hook counts — for packed operators
    /// the `qmodel/qlinear/…` counters advance **once per layer per
    /// step**, not once per sequence.
    pub fn metrics(&self) -> &Recorder {
        &self.metrics
    }

    /// Takes the accumulated telemetry, leaving an empty recorder.
    pub fn take_metrics(&mut self) -> Recorder {
        std::mem::take(&mut self.metrics)
    }

    /// Sequence ids quarantined (evicted) by the most recent
    /// [`BatchDecodeSession::step`] because their logits row went
    /// non-finite. Empty after a fully healthy step. Evicted slots are
    /// free for reuse by [`BatchDecodeSession::join`].
    pub fn evicted_last_step(&self) -> &[usize] {
        &self.evicted
    }

    /// Fault-injection hook (chaos suite): overwrites sequence `seq`'s
    /// most recently written layer-0 key-cache row with NaN, so its
    /// next step attends over poisoned state and must be quarantined.
    /// No-op if the sequence has not consumed any token yet.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::UnknownSeq`] if `seq` is not active.
    pub fn poison_kv_cache(&mut self, seq: usize) -> Result<(), LmError> {
        let Some(Some(slot)) = self.slots.get_mut(seq) else {
            return Err(LmError::UnknownSeq { seq });
        };
        if slot.pos == 0 || slot.layers.is_empty() {
            return Ok(());
        }
        let pos = slot.pos;
        let row = slot.layers[0].k_rot.row_mut(pos - 1);
        for v in row {
            *v = f32::NAN;
        }
        Ok(())
    }

    /// Feeds one token per listed sequence; returns the batch logits
    /// (`tokens.len() × vocab`, row `r` answering `tokens[r]`).
    ///
    /// The hidden rows of all listed sequences are stacked into one
    /// B×d matrix, so each [`LinearOp::forward_into`] call runs once
    /// per layer per step over the whole batch; attention then runs
    /// per row against that sequence's own cache at its own position,
    /// through the same kernel as [`DecodeSession::feed`].
    ///
    /// # Determinism
    ///
    /// Projections run on the shared matmul threadpool
    /// ([`aptq_tensor::parallel`]); logits and recorded counters are
    /// bit-identical at any `APTQ_THREADS`, and every row is
    /// bit-identical to feeding that sequence alone in its own
    /// [`DecodeSession`].
    ///
    /// # Quarantine
    ///
    /// After the forward pass each logits row is scanned for
    /// NaN/Inf. A non-finite row **evicts** that sequence — its slot
    /// is freed, its position never advances, and its id is reported
    /// via [`BatchDecodeSession::evicted_last_step`] with one
    /// `decode/quarantine/evictions` count per eviction — while the
    /// step still returns `Ok` with every row. Surviving sequences
    /// are unaffected: attention is per-row against private caches
    /// and projections are row-independent ([`LinearOp`] contract),
    /// so peer logits are bit-identical to a batch that never
    /// contained the poisoned sequence (pinned in
    /// `tests/batch_decode.rs`).
    ///
    /// # HotPath
    ///
    /// Allocation budget: per-step scratch (stacked hidden rows,
    /// projection outputs, per-head score vector, logits, and a
    /// batch-sized eviction list) sized by batch × model, never by
    /// sequence length; per-sequence KV caches are preallocated at
    /// [`BatchDecodeSession::join`] and written in place, never
    /// regrown.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::EmptyInput`] for an empty batch,
    /// [`LmError::UnknownSeq`] for an inactive sequence id,
    /// [`LmError::DuplicateSeq`] if an id is listed twice, and
    /// [`LmError::TokenOutOfRange`] / [`LmError::SequenceFull`] per
    /// sequence as in [`DecodeSession::feed`]. No cache row or
    /// position advances unless the whole batch validates.
    pub fn step(&mut self, tokens: &[(usize, u32)]) -> Result<Matrix, LmError> {
        if tokens.is_empty() {
            return Err(LmError::EmptyInput);
        }
        let cfg = self.model.config();
        for (i, &(seq, token)) in tokens.iter().enumerate() {
            if seq >= self.slots.len() || self.slots[seq].is_none() {
                return Err(LmError::UnknownSeq { seq });
            }
            for &(prev, _) in &tokens[..i] {
                if prev == seq {
                    return Err(LmError::DuplicateSeq { seq });
                }
            }
            if token as usize >= cfg.vocab_size {
                return Err(LmError::TokenOutOfRange {
                    token,
                    vocab: cfg.vocab_size,
                });
            }
            if let Some(slot) = &self.slots[seq] {
                if slot.pos >= cfg.max_seq_len {
                    return Err(LmError::SequenceFull {
                        pos: slot.pos,
                        max_seq_len: cfg.max_seq_len,
                    });
                }
            }
        }

        let b = tokens.len();
        let d_model = cfg.d_model;
        let n_heads = cfg.n_heads;
        let d_head = cfg.d_head();
        let model = self.model;
        let rope = model.rope();

        // Stacked embedding rows, one per listed sequence.
        let mut x = Matrix::zeros(b, d_model);
        for (r, &(_, token)) in tokens.iter().enumerate() {
            x.row_mut(r)
                .copy_from_slice(model.embed().row(token as usize));
        }

        for (li, block) in model.blocks().iter().enumerate() {
            // One projection call covers every sequence in the batch —
            // this is where a packed operator's unpacking amortizes.
            let (normed, _) = block.norm1.forward(&x);
            let mut q = block.attn.wq().forward_op(&normed, Some(&mut self.metrics));
            let mut k = block.attn.wk().forward_op(&normed, Some(&mut self.metrics));
            let v = block.attn.wv().forward_op(&normed, Some(&mut self.metrics));
            let mut concat = Matrix::zeros(b, d_model);
            for (r, &(seq, _)) in tokens.iter().enumerate() {
                if let Some(slot) = self.slots[seq].as_mut() {
                    attend_cached_row(
                        &mut slot.layers[li],
                        rope,
                        n_heads,
                        d_head,
                        slot.pos,
                        q.row_mut(r),
                        k.row_mut(r),
                        v.row(r),
                        concat.row_mut(r),
                    );
                    self.metrics.add(
                        "decode/batch/kv_bytes_moved",
                        (2 * d_model * std::mem::size_of::<f32>()) as u64,
                    );
                }
            }
            let attn_out = block.attn.wo().forward_op(&concat, Some(&mut self.metrics));
            x.add_assign(&attn_out);

            let (normed2, _) = block.norm2.forward(&x);
            let (ffn_out, _) = block.ffn.forward_opt(&normed2, Some(&mut self.metrics));
            x.add_assign(&ffn_out);
        }

        let (normed, _) = model.final_norm().forward(&x);
        let logits = normed.matmul(model.lm_head());
        let mut occupancy = 0u64;
        for s in &self.slots {
            if s.is_some() {
                occupancy += 1;
            }
        }
        // Non-finite quarantine: evict poisoned rows before positions
        // advance. Batch-sized one-shot scratch, filled by index.
        let mut evicted = vec![usize::MAX; b];
        let mut n_evicted = 0usize;
        for (r, &(seq, _)) in tokens.iter().enumerate() {
            if !logits.row(r).iter().all(|v| v.is_finite()) {
                evicted[n_evicted] = seq;
                n_evicted += 1;
                self.slots[seq] = None;
                self.metrics.incr("decode/quarantine/evictions");
            }
        }
        evicted.truncate(n_evicted);
        self.evicted = evicted;
        for &(seq, _) in tokens {
            if let Some(slot) = self.slots[seq].as_mut() {
                slot.pos += 1;
            }
        }
        self.metrics.incr("decode/batch/steps");
        self.metrics.add("decode/batch/tokens", b as u64);
        self.metrics.add("decode/batch/occupancy", occupancy);
        Ok(logits)
    }
}

/// Greedy generation over many prompts at once through a
/// [`BatchDecodeSession`] — continuous batching: every sequence
/// prefills and generates at its own pace, leaving the batch as soon
/// as it has `n_new` new tokens (or fills the context), and each
/// step's projections run once for all sequences still active.
///
/// Output `i` is bit-identical to
/// `generate_greedy_cached(model, &prompts[i], n_new)`: same length
/// rule (capped at `max_seq_len + 1` total tokens), same argmax
/// tie-breaking, same logits.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`; see
/// [`BatchDecodeSession::step`].
///
/// A sequence quarantined mid-generation (non-finite logits — see
/// [`BatchDecodeSession::step`]'s quarantine contract) stops where it
/// was: its output keeps every token up to the last healthy step while
/// the rest of the batch finishes normally.
///
/// # Errors
///
/// Returns [`LmError::EmptyInput`] if `prompts` is empty or any prompt
/// is empty, [`LmError::SequenceFull`] if a prompt exceeds
/// `max_seq_len`, and propagates token-validation errors from
/// [`BatchDecodeSession::step`].
pub fn generate_greedy_batched<L: LinearOp>(
    model: &ModelOf<L>,
    prompts: &[Vec<u32>],
    n_new: usize,
) -> Result<Vec<Vec<u32>>, LmError> {
    if prompts.is_empty() || prompts.iter().any(|p| p.is_empty()) {
        return Err(LmError::EmptyInput);
    }
    let max = model.config().max_seq_len;
    for p in prompts {
        if p.len() > max {
            return Err(LmError::SequenceFull {
                pos: max,
                max_seq_len: max,
            });
        }
    }
    let mut session = BatchDecodeSession::new(model);
    let slots: Vec<usize> = prompts.iter().map(|_| session.join()).collect();
    let mut outs: Vec<Vec<u32>> = prompts.to_vec();
    let mut fed = vec![0usize; prompts.len()];
    let mut batch: Vec<(usize, u32)> = Vec::with_capacity(prompts.len());
    let mut rows: Vec<usize> = Vec::with_capacity(prompts.len());
    loop {
        batch.clear();
        rows.clear();
        for (i, out) in outs.iter().enumerate() {
            if session.is_active(slots[i]) {
                batch.push((slots[i], out[fed[i]]));
                rows.push(i);
            }
        }
        if batch.is_empty() {
            break;
        }
        let logits = session.step(&batch)?;
        for (r, &i) in rows.iter().enumerate() {
            // A sequence quarantined this step is already evicted: its
            // output stays truncated at the last healthy token and the
            // surviving sequences keep decoding undisturbed.
            if session.evicted_last_step().contains(&slots[i]) {
                continue;
            }
            fed[i] += 1;
            let target = prompts[i].len() + n_new;
            if fed[i] >= prompts[i].len() && outs[i].len() < target {
                outs[i].push(aptq_tensor::select::argmax(logits.row(r)) as u32);
            }
            if outs[i].len() >= target || fed[i] >= max {
                session.leave(slots[i])?;
            }
        }
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_greedy;
    use crate::{Model, ModelConfig};

    fn model() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 42)
    }

    #[test]
    fn incremental_matches_full_forward() {
        let m = model();
        let seq = [1u32, 5, 9, 2, 7, 11];
        let full = m.forward(&seq);
        let mut session = DecodeSession::new(&m);
        for (i, &t) in seq.iter().enumerate() {
            let logits = session.feed(t).unwrap();
            for (a, b) in logits.iter().zip(full.row(i)) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {i}: incremental {a} vs full {b}"
                );
            }
        }
        assert_eq!(session.len(), seq.len());
    }

    #[test]
    fn cached_generation_matches_uncached() {
        let m = model();
        let a = generate_greedy(&m, &[1, 2, 3], 8).unwrap();
        let b = generate_greedy_cached(&m, &[1, 2, 3], 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn feed_rejects_bad_tokens_and_overflow() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        assert!(matches!(s.feed(99), Err(LmError::TokenOutOfRange { .. })));
        // Exhaust max_seq_len (32 for test_tiny).
        for i in 0..32 {
            s.feed((i % 16) as u32).unwrap();
        }
        assert!(matches!(s.feed(0), Err(LmError::SequenceFull { .. })));
    }

    #[test]
    fn cache_grows_linearly() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        assert!(s.is_empty());
        assert_eq!(s.cache_bytes(), 0);
        s.feed(1).unwrap();
        let one = s.cache_bytes();
        s.feed(2).unwrap();
        assert_eq!(s.cache_bytes(), 2 * one);
        // 2 matrices × n_layers × d_model × 4 bytes per token.
        assert_eq!(one, 2 * 2 * 16 * 4);
    }

    #[test]
    fn kv_write_traffic_is_linear_in_tokens() {
        // The whole point of the preallocated cache: each fed token
        // writes exactly one new row per matrix per layer, so write
        // traffic equals used bytes — no O(T²) regrowth copies.
        let m = model();
        let mut s = DecodeSession::new(&m);
        for i in 0..16 {
            s.feed((i % 16) as u32).unwrap();
        }
        assert_eq!(s.metrics().get("decode/tokens"), 16);
        assert_eq!(
            s.metrics().get("decode/kv_bytes_moved"),
            s.cache_bytes() as u64
        );
        let drained = s.take_metrics();
        assert_eq!(drained.get("decode/tokens"), 16);
        assert!(s.metrics().is_empty());
    }

    #[test]
    fn long_sequence_incremental_matches_full_forward() {
        // 256 tokens through the preallocated cache must agree with the
        // one-shot forward pass and keep write traffic linear.
        let cfg = ModelConfig {
            max_seq_len: 256,
            ..ModelConfig::test_tiny(16)
        };
        let m = Model::new(&cfg, 7);
        let seq: Vec<u32> = (0..256).map(|i| (i * 11 % 16) as u32).collect();
        let full = m.forward(&seq);
        let mut s = DecodeSession::new(&m);
        for (i, &t) in seq.iter().enumerate() {
            let logits = s.feed(t).unwrap();
            for (a, b) in logits.iter().zip(full.row(i)) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "position {i}: incremental {a} vs full {b}"
                );
            }
        }
        assert_eq!(s.metrics().get("decode/tokens"), 256);
        assert_eq!(
            s.metrics().get("decode/kv_bytes_moved"),
            s.cache_bytes() as u64
        );
    }

    #[test]
    fn feed_all_returns_last_logits() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        let logits = s.feed_all(&[3, 4, 5]).unwrap();
        let full = m.forward(&[3, 4, 5]);
        for (a, b) in logits.iter().zip(full.row(2)) {
            assert!((a - b).abs() < 1e-4);
        }
        let mut empty = DecodeSession::new(&m);
        assert!(matches!(empty.feed_all(&[]), Err(LmError::EmptyInput)));
    }
}
