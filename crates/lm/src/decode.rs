//! KV-cache incremental decoding.
//!
//! The paper motivates APTQ with LLM deployment on edge devices; the
//! inference loop that actually runs there is autoregressive decoding
//! with a key/value cache — O(T) attention work per new token instead of
//! re-running the full O(T²) prefill every step. [`DecodeSession`]
//! implements that loop and is verified (see tests) to produce logits
//! identical to the full forward pass.
//!
//! The cache is **preallocated** at `max_seq_len` rows per layer and
//! written in place, one row per token. Growing it with
//! [`Matrix::vcat`] instead would copy the entire cache on every token —
//! O(T²) bytes moved over a T-token decode — which is exactly the kind
//! of regression the `decode/kv_bytes_moved` counter exists to catch:
//! it counts bytes *written into* the cache and must stay linear in T.

use aptq_obs::Recorder;
use aptq_tensor::Matrix;

use crate::linear::{Linear, LinearOp};
use crate::model::ModelOf;
use crate::LmError;

/// Per-layer key/value cache: rotated keys and raw values, preallocated
/// at `max_seq_len × d_model`; rows `[0, pos)` are valid.
#[derive(Debug, Clone)]
struct LayerKv {
    /// Rotated keys (heads concatenated).
    k_rot: Matrix,
    /// Values.
    v: Matrix,
}

/// An incremental decoding session over a model, generic over the
/// linear operator `L`.
///
/// Instantiated at `L = `[`Linear`] this is fp32 cached decoding;
/// instantiated at `aptq_qmodel::QuantizedLinear` the same loop decodes
/// straight from packed sub-byte storage, turning quantized generation
/// from O(T²) full re-forwards into O(T) cached steps.
///
/// # Example
///
/// ```
/// use aptq_lm::{decode::DecodeSession, Model, ModelConfig};
///
/// # fn main() -> Result<(), aptq_lm::LmError> {
/// let model = Model::new(&ModelConfig::test_tiny(16), 0);
/// let mut session = DecodeSession::new(&model);
/// let logits = session.feed(3)?;
/// assert_eq!(logits.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeSession<'m, L = Linear> {
    model: &'m ModelOf<L>,
    layers: Vec<LayerKv>,
    pos: usize,
    metrics: Recorder,
}

impl<'m, L: LinearOp> DecodeSession<'m, L> {
    /// Starts an empty session, preallocating the full
    /// `max_seq_len`-row KV cache so [`DecodeSession::feed`] never
    /// reallocates or copies previously cached rows.
    pub fn new(model: &'m ModelOf<L>) -> Self {
        let d = model.config().d_model;
        let t_max = model.config().max_seq_len;
        let layers = (0..model.config().n_layers)
            .map(|_| LayerKv {
                k_rot: Matrix::zeros(t_max, d),
                v: Matrix::zeros(t_max, d),
            })
            .collect();
        DecodeSession {
            model,
            layers,
            pos: 0,
            metrics: Recorder::new(),
        }
    }

    /// Number of tokens consumed so far.
    pub fn len(&self) -> usize {
        self.pos
    }

    /// Whether no tokens have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// Cache memory in **used** bytes (the edge-deployment statistic:
    /// 2 matrices × layers × T × d_model × 4 bytes). Preallocated but
    /// not-yet-written rows are capacity, not usage, so this grows
    /// linearly with the number of tokens fed.
    pub fn cache_bytes(&self) -> usize {
        self.layers.len() * 2 * self.pos * self.model.config().d_model * std::mem::size_of::<f32>()
    }

    /// Telemetry recorded so far: `decode/tokens`,
    /// `decode/kv_bytes_moved`, plus whatever the operator's
    /// [`LinearOp::forward_into`] hook counts (packed operators record
    /// `qmodel/qlinear/…` unpacking work per fed token).
    pub fn metrics(&self) -> &Recorder {
        &self.metrics
    }

    /// Takes the accumulated telemetry, leaving an empty recorder (for
    /// merging into a pipeline-wide [`Recorder`]).
    pub fn take_metrics(&mut self) -> Recorder {
        std::mem::take(&mut self.metrics)
    }

    /// Feeds one token; returns the next-token logits.
    ///
    /// # Determinism
    ///
    /// Projections run on the shared matmul threadpool
    /// ([`aptq_tensor::parallel`]); logits and recorded counters are
    /// bit-identical at any `APTQ_THREADS` value.
    ///
    /// # HotPath
    ///
    /// Allocation budget: per-token scratch (projection rows, per-head
    /// score vector, logits row) sized by the model, never by the
    /// sequence; the KV cache is written in place, never regrown.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for invalid ids and
    /// [`LmError::SequenceFull`] when the RoPE table (i.e.
    /// `max_seq_len`) is exhausted.
    pub fn feed(&mut self, token: u32) -> Result<Vec<f32>, LmError> {
        let cfg = self.model.config();
        if token as usize >= cfg.vocab_size {
            return Err(LmError::TokenOutOfRange {
                token,
                vocab: cfg.vocab_size,
            });
        }
        if self.pos >= cfg.max_seq_len {
            return Err(LmError::SequenceFull {
                pos: self.pos,
                max_seq_len: cfg.max_seq_len,
            });
        }
        let d_model = cfg.d_model;
        let n_heads = cfg.n_heads;
        let d_head = cfg.d_head();
        let rope = self.model.rope();
        let pos = self.pos;

        // Embedding row.
        let mut x = Matrix::zeros(1, d_model);
        x.row_mut(0)
            .copy_from_slice(self.model.embed().row(token as usize));

        let model = self.model;
        for (li, block) in model.blocks().iter().enumerate() {
            // Attention sub-layer. Projections go through the generic
            // LinearOp hook so packed operators count their unpacking
            // work into the session metrics.
            let (normed, _) = block.norm1.forward(&x);
            let mut q = block.attn.wq().forward_op(&normed, Some(&mut self.metrics));
            let mut k = block.attn.wk().forward_op(&normed, Some(&mut self.metrics));
            let v = block.attn.wv().forward_op(&normed, Some(&mut self.metrics));
            for h in 0..n_heads {
                let lo = h * d_head;
                let hi = lo + d_head;
                rope.apply_row(&mut q.row_mut(0)[lo..hi], pos);
                rope.apply_row(&mut k.row_mut(0)[lo..hi], pos);
            }
            // Append in place: only the new row is written, the rest of
            // the cache is untouched.
            let kv = &mut self.layers[li];
            kv.k_rot.row_mut(pos).copy_from_slice(k.row(0));
            kv.v.row_mut(pos).copy_from_slice(v.row(0));
            self.metrics.add(
                "decode/kv_bytes_moved",
                (2 * d_model * std::mem::size_of::<f32>()) as u64,
            );

            let t = pos + 1;
            let scale = 1.0 / (d_head as f32).sqrt();
            let mut concat = Matrix::zeros(1, d_model);
            for h in 0..n_heads {
                let lo = h * d_head;
                let hi = lo + d_head;
                let qh = &q.row(0)[lo..hi];
                // Scores against the cached keys, read in place (no
                // per-token copy of the cache). Dot-product order
                // matches `Matrix::matmul_nt`; the softmax mirrors
                // `aptq_tensor::activation::softmax_rows`.
                let mut scores = vec![0.0f32; t];
                for (ti, s) in scores.iter_mut().enumerate() {
                    let kh = &self.layers[li].k_rot.row(ti)[lo..hi];
                    let mut acc = 0.0f32;
                    for (a, b) in qh.iter().zip(kh) {
                        acc += a * b;
                    }
                    *s = acc * scale;
                }
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for s in &mut scores {
                    *s = (*s - max).exp();
                    sum += *s;
                }
                let inv = 1.0 / sum;
                for s in &mut scores {
                    *s *= inv;
                }
                let head = &mut concat.row_mut(0)[lo..hi];
                for (ti, &s) in scores.iter().enumerate() {
                    let vh = &self.layers[li].v.row(ti)[lo..hi];
                    for (o, b) in head.iter_mut().zip(vh) {
                        *o += s * b;
                    }
                }
            }
            let attn_out = block.attn.wo().forward_op(&concat, Some(&mut self.metrics));
            x.add_assign(&attn_out);

            // FFN sub-layer.
            let (normed2, _) = block.norm2.forward(&x);
            let (ffn_out, _) = block.ffn.forward_opt(&normed2, Some(&mut self.metrics));
            x.add_assign(&ffn_out);
        }

        let (normed, _) = model.final_norm().forward(&x);
        let logits = normed.matmul(model.lm_head());
        self.pos += 1;
        self.metrics.incr("decode/tokens");
        // `logits` is 1 × vocab: moving it out is free, where
        // `row(0).to_vec()` would copy the row.
        Ok(logits.into_vec())
    }

    /// Feeds a whole prompt, returning the logits after its last token.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS`; see [`DecodeSession::feed`].
    ///
    /// # Errors
    ///
    /// Returns [`LmError::EmptyInput`] for an empty prompt; propagates
    /// [`DecodeSession::feed`] errors.
    pub fn feed_all(&mut self, tokens: &[u32]) -> Result<Vec<f32>, LmError> {
        let mut last = None;
        for &t in tokens {
            last = Some(self.feed(t)?);
        }
        last.ok_or(LmError::EmptyInput)
    }
}

/// Greedy generation through the KV cache (functionally identical to
/// [`crate::generate::generate_greedy`], asymptotically cheaper), for
/// any linear operator — fp32 or packed.
///
/// Token selection goes through [`aptq_tensor::select::argmax`]: NaN
/// logits never win and ties break toward the lowest token id.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS`; see [`DecodeSession::feed`].
///
/// # Errors
///
/// Propagates session errors; an empty prompt is [`LmError::EmptyInput`].
pub fn generate_greedy_cached<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
) -> Result<Vec<u32>, LmError> {
    if prompt.is_empty() {
        return Err(LmError::EmptyInput);
    }
    let mut session = DecodeSession::new(model);
    let mut logits = session.feed_all(prompt)?;
    let mut out = prompt.to_vec();
    for _ in 0..n_new {
        let next = aptq_tensor::select::argmax(&logits) as u32;
        out.push(next);
        if session.len() >= model.config().max_seq_len {
            break;
        }
        logits = session.feed(next)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_greedy;
    use crate::{Model, ModelConfig};

    fn model() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 42)
    }

    #[test]
    fn incremental_matches_full_forward() {
        let m = model();
        let seq = [1u32, 5, 9, 2, 7, 11];
        let full = m.forward(&seq);
        let mut session = DecodeSession::new(&m);
        for (i, &t) in seq.iter().enumerate() {
            let logits = session.feed(t).unwrap();
            for (a, b) in logits.iter().zip(full.row(i)) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {i}: incremental {a} vs full {b}"
                );
            }
        }
        assert_eq!(session.len(), seq.len());
    }

    #[test]
    fn cached_generation_matches_uncached() {
        let m = model();
        let a = generate_greedy(&m, &[1, 2, 3], 8).unwrap();
        let b = generate_greedy_cached(&m, &[1, 2, 3], 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn feed_rejects_bad_tokens_and_overflow() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        assert!(matches!(s.feed(99), Err(LmError::TokenOutOfRange { .. })));
        // Exhaust max_seq_len (32 for test_tiny).
        for i in 0..32 {
            s.feed((i % 16) as u32).unwrap();
        }
        assert!(matches!(s.feed(0), Err(LmError::SequenceFull { .. })));
    }

    #[test]
    fn cache_grows_linearly() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        assert!(s.is_empty());
        assert_eq!(s.cache_bytes(), 0);
        s.feed(1).unwrap();
        let one = s.cache_bytes();
        s.feed(2).unwrap();
        assert_eq!(s.cache_bytes(), 2 * one);
        // 2 matrices × n_layers × d_model × 4 bytes per token.
        assert_eq!(one, 2 * 2 * 16 * 4);
    }

    #[test]
    fn kv_write_traffic_is_linear_in_tokens() {
        // The whole point of the preallocated cache: each fed token
        // writes exactly one new row per matrix per layer, so write
        // traffic equals used bytes — no O(T²) regrowth copies.
        let m = model();
        let mut s = DecodeSession::new(&m);
        for i in 0..16 {
            s.feed((i % 16) as u32).unwrap();
        }
        assert_eq!(s.metrics().get("decode/tokens"), 16);
        assert_eq!(
            s.metrics().get("decode/kv_bytes_moved"),
            s.cache_bytes() as u64
        );
        let drained = s.take_metrics();
        assert_eq!(drained.get("decode/tokens"), 16);
        assert!(s.metrics().is_empty());
    }

    #[test]
    fn long_sequence_incremental_matches_full_forward() {
        // 256 tokens through the preallocated cache must agree with the
        // one-shot forward pass and keep write traffic linear.
        let cfg = ModelConfig {
            max_seq_len: 256,
            ..ModelConfig::test_tiny(16)
        };
        let m = Model::new(&cfg, 7);
        let seq: Vec<u32> = (0..256).map(|i| (i * 11 % 16) as u32).collect();
        let full = m.forward(&seq);
        let mut s = DecodeSession::new(&m);
        for (i, &t) in seq.iter().enumerate() {
            let logits = s.feed(t).unwrap();
            for (a, b) in logits.iter().zip(full.row(i)) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "position {i}: incremental {a} vs full {b}"
                );
            }
        }
        assert_eq!(s.metrics().get("decode/tokens"), 256);
        assert_eq!(
            s.metrics().get("decode/kv_bytes_moved"),
            s.cache_bytes() as u64
        );
    }

    #[test]
    fn feed_all_returns_last_logits() {
        let m = model();
        let mut s = DecodeSession::new(&m);
        let logits = s.feed_all(&[3, 4, 5]).unwrap();
        let full = m.forward(&[3, 4, 5]);
        for (a, b) in logits.iter().zip(full.row(2)) {
            assert!((a - b).abs() < 1e-4);
        }
        let mut empty = DecodeSession::new(&m);
        assert!(matches!(empty.feed_all(&[]), Err(LmError::EmptyInput)));
    }
}
