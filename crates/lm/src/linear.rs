//! Bias-free linear projection (LLaMA-style) with manual backward, and
//! the [`LinearOp`] abstraction that lets the whole transformer stack
//! run over any weight representation.

use aptq_obs::Recorder;
use aptq_tensor::{init, Matrix};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A linear operator `y = x · W` with `W: d_in × d_out`, independent of
/// how the weight is stored.
///
/// This is the seam between the float and quantized transformer stacks:
/// [`Linear`] (fp32 matmul) and `aptq_qmodel::QuantizedLinear` (packed
/// sub-byte streaming) both implement it, so one generic forward path —
/// attention, FFN, block, model, decode session — serves both
/// precisions and can never drift apart.
///
/// Implementations must be **row-independent**: the output row for an
/// input row must not depend on how many other rows are in the batch.
/// That property is what makes KV-cache incremental decoding (1-row
/// batches) bit-identical to the full-sequence forward.
pub trait LinearOp {
    /// Input width.
    fn d_in(&self) -> usize;

    /// Output width.
    fn d_out(&self) -> usize;

    /// Forward one row-batch `x` (`T × d_in`) into the caller buffer
    /// `out` (`T × d_out`), overwriting its prior contents.
    ///
    /// `rec` is the observability hook: implementations with work worth
    /// counting (e.g. packed-code unpacking) record it there;
    /// [`Linear`] ignores it. Counters must be deterministic — a pure
    /// function of the input shapes, never of timing or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in()` or `out` is not
    /// `(x.rows(), d_out())`.
    ///
    /// # Determinism
    ///
    /// Implementations are bit-identical at any `APTQ_THREADS` value
    /// (fp32 path: deterministic threadpool in
    /// [`aptq_tensor::parallel`]; packed path: sequential scalar loops).
    fn forward_into(&self, x: &Matrix, out: &mut Matrix, rec: Option<&mut Recorder>);

    /// Allocating convenience wrapper around
    /// [`forward_into`](LinearOp::forward_into).
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value; see
    /// [`forward_into`](LinearOp::forward_into).
    fn forward_op(&self, x: &Matrix, rec: Option<&mut Recorder>) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.d_out());
        self.forward_into(x, &mut out, rec);
        out
    }
}

/// A bias-free linear layer computing `y = x · W` with `W: d_in × d_out`.
///
/// Activations are `(tokens × d_in)` matrices; the weight is stored
/// input-major so quantizers that walk "one input dimension at a time"
/// (GPTQ column order) process one **row** of `W` per step.
///
/// # Example
///
/// ```
/// use aptq_lm::linear::Linear;
/// use aptq_tensor::{init, Matrix};
///
/// let lin = Linear::new(4, 3, &mut init::rng(0));
/// let x = Matrix::zeros(2, 4);
/// assert_eq!(lin.forward(&x).shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
}

impl Linear {
    /// Creates a layer with Kaiming-scaled random weights.
    pub fn new(d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: init::kaiming(d_in, d_out, rng),
        }
    }

    /// Wraps an existing weight matrix (`d_in × d_out`).
    pub fn from_weight(weight: Matrix) -> Self {
        Linear { weight }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.weight.cols()
    }

    /// Immutable weight access (`d_in × d_out`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable weight access, used by optimizers and quantizers.
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Forward pass `y = x · W`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.weight)
    }

    /// Backward pass.
    ///
    /// Given the upstream gradient `dy` (`tokens × d_out`) and the cached
    /// input `x`, returns `(dx, dw)` where `dx = dy · Wᵀ` and
    /// `dw = xᵀ · dy`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, Matrix) {
        let dx = dy.matmul_nt(&self.weight);
        let dw = x.matmul_tn(dy);
        (dx, dw)
    }
}

impl LinearOp for Linear {
    fn d_in(&self) -> usize {
        Linear::d_in(self)
    }

    fn d_out(&self) -> usize {
        Linear::d_out(self)
    }

    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: the matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]). The
    /// recorder hook is a no-op — fp32 matmuls have no unpacking work
    /// to count.
    fn forward_into(&self, x: &Matrix, out: &mut Matrix, _rec: Option<&mut Recorder>) {
        x.matmul_into(&self.weight, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init::rng;

    #[test]
    fn forward_shape_and_linearity() {
        let lin = Linear::new(5, 3, &mut rng(0));
        let x = init::normal(4, 5, 1.0, &mut rng(1));
        let y = lin.forward(&x);
        assert_eq!(y.shape(), (4, 3));
        // Linearity: f(2x) == 2 f(x).
        let y2 = lin.forward(&x.scale(2.0));
        for (a, b) in y2.as_slice().iter().zip(y.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut lin = Linear::new(3, 2, &mut rng(2));
        let x = init::normal(2, 3, 1.0, &mut rng(3));
        let y = lin.forward(&x);
        // Loss = sum(y); dy = ones.
        let dy = Matrix::filled(2, 2, 1.0);
        let (dx, dw) = lin.backward(&x, &dy);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dw.shape(), lin.weight().shape());

        let eps = 1e-3f32;
        // Check dw entries.
        for (i, j) in [(0, 0), (1, 1), (2, 0)] {
            let orig = lin.weight()[(i, j)];
            lin.weight_mut()[(i, j)] = orig + eps;
            let lp = lin.forward(&x).sum();
            lin.weight_mut()[(i, j)] = orig - eps;
            let lm = lin.forward(&x).sum();
            lin.weight_mut()[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (dw[(i, j)] - fd).abs() < 1e-2,
                "dw({i},{j}): {} vs {fd}",
                dw[(i, j)]
            );
        }
        // Check dx entries.
        for (i, j) in [(0, 0), (1, 2)] {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let lp = lin.forward(&xp).sum();
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            let lm = lin.forward(&xm).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((dx[(i, j)] - fd).abs() < 1e-2);
        }
        let _ = y;
    }

    #[test]
    fn from_weight_preserves_matrix() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lin = Linear::from_weight(w.clone());
        assert_eq!(lin.weight(), &w);
        assert_eq!(lin.d_in(), 2);
        assert_eq!(lin.d_out(), 2);
    }

    #[test]
    fn linear_op_matches_inherent_forward() {
        let lin = Linear::new(6, 4, &mut rng(4));
        let x = init::normal(3, 6, 1.0, &mut rng(5));
        let want = lin.forward(&x);
        // Trait entry points must agree bit-for-bit with the inherent path.
        let via_op = LinearOp::forward_op(&lin, &x, None);
        assert_eq!(via_op, want);
        let mut out = Matrix::filled(3, 4, f32::NAN);
        lin.forward_into(&x, &mut out, None);
        assert_eq!(out, want);
        assert_eq!(LinearOp::d_in(&lin), 6);
        assert_eq!(LinearOp::d_out(&lin), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let lin = Linear::new(3, 3, &mut rng(9));
        let json = serde_json::to_string(&lin).unwrap();
        let back: Linear = serde_json::from_str(&json).unwrap();
        assert_eq!(lin, back);
    }
}
