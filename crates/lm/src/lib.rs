//! # aptq-lm
//!
//! LLaMA-family transformer substrate for the APTQ reproduction.
//!
//! The APTQ paper quantizes LLaMA-7B/13B checkpoints. Those checkpoints
//! (and the GPUs to run them) are not available in this environment, so —
//! per the substitution policy in `DESIGN.md` — this crate implements the
//! same architecture family at laptop scale and pretrains it from scratch
//! on the synthetic corpus from `aptq-textgen`:
//!
//! - token embedding, **RMSNorm**, **rotary position embeddings (RoPE)**,
//!   multi-head **causal attention**, **SwiGLU** feed-forward, untied LM
//!   head — the LLaMA block structure;
//! - a complete, hand-written **backward pass** for every module, enabling
//!   in-repo pretraining (Adam) and the LLM-QAT-style baseline;
//! - **activation capture** ([`capture::BlockCapture`]) exposing exactly
//!   the intermediate quantities APTQ's attention-aware Hessians need:
//!   per-layer inputs, per-head attention probabilities, head outputs;
//! - deterministic generation and serde checkpointing.
//!
//! # Example
//!
//! ```
//! use aptq_lm::{Model, ModelConfig};
//!
//! let cfg = ModelConfig::test_tiny(32);
//! let model = Model::new(&cfg, 42);
//! let tokens = vec![1u32, 2, 3, 4];
//! let logits = model.forward(&tokens);
//! assert_eq!(logits.shape(), (4, cfg.vocab_size));
//! ```

pub mod adam;
pub mod attention;
pub mod block;
pub mod capture;
pub mod config;
pub mod decode;
pub mod ffn;
pub mod generate;
pub mod linear;
pub mod model;
pub mod rmsnorm;
pub mod rope;
pub mod train;

pub use capture::{BlockCapture, ModelCapture};
pub use config::ModelConfig;
pub use linear::{Linear, LinearOp};
pub use model::{LayerKind, LayerRef, Model, ModelOf};
pub use train::{TrainReport, Trainer, TrainerConfig};

/// Errors surfaced by model construction, checkpointing and inference.
#[derive(Debug)]
pub enum LmError {
    /// A token id was outside the configured vocabulary.
    TokenOutOfRange {
        /// Offending token id.
        token: u32,
        /// Configured vocabulary size.
        vocab: usize,
    },
    /// Input sequence was empty where at least one token is required.
    EmptyInput,
    /// Checkpoint (de)serialization or integrity validation failed.
    /// Carries the structured [`aptq_artifact::ArtifactError`] so
    /// callers can distinguish a parse failure from a checksum
    /// mismatch through `source()`.
    Checkpoint(aptq_artifact::ArtifactError),
    /// A decode step produced non-finite logits; the sequence is
    /// quarantined (solo sessions refuse further tokens, batched
    /// sessions evict the row).
    NonFiniteLogits {
        /// Decode position at which the non-finite row appeared.
        pos: usize,
    },
    /// A configuration invariant was violated.
    InvalidConfig(String),
    /// A decode session consumed all `max_seq_len` positions.
    SequenceFull {
        /// Position the rejected token would have occupied.
        pos: usize,
        /// The configured sequence capacity.
        max_seq_len: usize,
    },
    /// A batched decode step referenced a sequence id that was never
    /// joined or has already left.
    UnknownSeq {
        /// The offending sequence id.
        seq: usize,
    },
    /// The same sequence id appeared more than once in one batched step.
    DuplicateSeq {
        /// The repeated sequence id.
        seq: usize,
    },
}

impl std::fmt::Display for LmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmError::TokenOutOfRange { token, vocab } => {
                write!(f, "token id {token} out of range for vocabulary of {vocab}")
            }
            LmError::EmptyInput => write!(f, "input sequence must contain at least one token"),
            LmError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            LmError::NonFiniteLogits { pos } => {
                write!(
                    f,
                    "non-finite logits at decode position {pos}: sequence quarantined"
                )
            }
            LmError::InvalidConfig(msg) => write!(f, "invalid model config: {msg}"),
            LmError::SequenceFull { pos, max_seq_len } => {
                write!(f, "decode position {pos} exceeds max_seq_len {max_seq_len}")
            }
            LmError::UnknownSeq { seq } => {
                write!(f, "sequence {seq} is not active in this batch session")
            }
            LmError::DuplicateSeq { seq } => {
                write!(
                    f,
                    "sequence {seq} appears more than once in one batched step"
                )
            }
        }
    }
}

impl std::error::Error for LmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LmError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aptq_artifact::ArtifactError> for LmError {
    fn from(e: aptq_artifact::ArtifactError) -> Self {
        LmError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format() {
        assert!(LmError::TokenOutOfRange { token: 9, vocab: 4 }
            .to_string()
            .contains('9'));
        assert!(!LmError::EmptyInput.to_string().is_empty());
        let ck = LmError::Checkpoint(aptq_artifact::ArtifactError::Malformed("x".into()));
        assert!(ck.to_string().contains('x'));
        assert!(std::error::Error::source(&ck).is_some());
        assert!(LmError::InvalidConfig("y".into()).to_string().contains('y'));
        assert!(LmError::NonFiniteLogits { pos: 3 }
            .to_string()
            .contains('3'));
        let full = LmError::SequenceFull {
            pos: 32,
            max_seq_len: 32,
        };
        assert!(full.to_string().contains("32"));
        assert!(LmError::UnknownSeq { seq: 4 }.to_string().contains('4'));
        assert!(LmError::DuplicateSeq { seq: 2 }.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LmError>();
    }
}
