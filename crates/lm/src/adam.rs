//! Adam optimizer over the full model parameter set.

use aptq_tensor::Matrix;

use crate::model::{Model, ModelGrads};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 1.0,
        }
    }
}

/// Flat-buffer Adam state covering every model parameter.
///
/// Parameters are visited in a fixed canonical order (embedding, blocks
/// in order with `Q,K,V,O,gate,up,down,norm1,norm2`, final norm, LM
/// head), so the state buffers line up across steps.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state sized for `model`.
    pub fn new(model: &Model, cfg: AdamConfig) -> Self {
        let n = model.config().param_count();
        Adam {
            cfg,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Current step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update of `grads` to `model`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not structurally match `model`.
    pub fn step(&mut self, model: &mut Model, grads: &ModelGrads) {
        self.t += 1;
        let mut grads_scaled;
        let grads = if self.cfg.clip_norm > 0.0 {
            let norm = grads.global_norm();
            if norm > self.cfg.clip_norm {
                grads_scaled = grads.clone();
                grads_scaled.scale_assign(self.cfg.clip_norm / norm);
                &grads_scaled
            } else {
                grads
            }
        } else {
            grads
        };

        let bias1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        let mut offset = 0usize;

        // The update core over one (param, grad) slice pair.
        let cfg = self.cfg;
        let m_buf = &mut self.m;
        let v_buf = &mut self.v;
        let mut update = |param: &mut [f32], grad: &[f32], offset: usize| {
            assert_eq!(param.len(), grad.len(), "adam: param/grad length mismatch");
            for (i, (p, &g)) in param.iter_mut().zip(grad.iter()).enumerate() {
                let m = &mut m_buf[offset + i];
                let v = &mut v_buf[offset + i];
                *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
                *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
                let mhat = *m / bias1;
                let vhat = *v / bias2;
                *p -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        };

        // Embedding.
        {
            let g = grads.embed.as_slice().to_vec();
            let p = model_embed_mut(model);
            update(p.as_mut_slice(), &g, offset);
            offset += g.len();
        }
        // Blocks.
        for (bi, bg) in grads.blocks.iter().enumerate() {
            let pairs: [(&Matrix, u8); 7] = [
                (&bg.attn.dwq, 0),
                (&bg.attn.dwk, 1),
                (&bg.attn.dwv, 2),
                (&bg.attn.dwo, 3),
                (&bg.ffn.dgate, 4),
                (&bg.ffn.dup, 5),
                (&bg.ffn.ddown, 6),
            ];
            for (g, which) in pairs {
                let g = g.as_slice().to_vec();
                let block = &mut model.blocks_mut()[bi];
                let p = match which {
                    0 => block.attn.wq_mut().weight_mut(),
                    1 => block.attn.wk_mut().weight_mut(),
                    2 => block.attn.wv_mut().weight_mut(),
                    3 => block.attn.wo_mut().weight_mut(),
                    4 => block.ffn.gate_mut().weight_mut(),
                    5 => block.ffn.up_mut().weight_mut(),
                    _ => block.ffn.down_mut().weight_mut(),
                };
                update(p.as_mut_slice(), &g, offset);
                offset += g.len();
            }
            {
                let g = bg.dnorm1.clone();
                let p = model.blocks_mut()[bi].norm1.gain_mut();
                update(p, &g, offset);
                offset += g.len();
            }
            {
                let g = bg.dnorm2.clone();
                let p = model.blocks_mut()[bi].norm2.gain_mut();
                update(p, &g, offset);
                offset += g.len();
            }
        }
        // Final norm.
        {
            let g = grads.dfinal_norm.clone();
            let p = model_final_norm_mut(model);
            update(p, &g, offset);
            offset += g.len();
        }
        // LM head.
        {
            let g = grads.lm_head.as_slice().to_vec();
            let p = model_lm_head_mut(model);
            update(p.as_mut_slice(), &g, offset);
            offset += g.len();
        }
        assert_eq!(
            offset,
            self.m.len(),
            "adam: parameter walk covered {offset} of {}",
            self.m.len()
        );
    }
}

// Private accessors: Adam needs mutable access to parameters the public
// API does not otherwise expose mutably (embedding, final norm, head).
// They live here rather than on Model's public surface to keep the
// checkpoint/quantization API minimal.
fn model_embed_mut(model: &mut Model) -> &mut Matrix {
    model.embed_mut()
}
fn model_final_norm_mut(model: &mut Model) -> &mut [f32] {
    model.final_norm_gain_mut()
}
fn model_lm_head_mut(model: &mut Model) -> &mut Matrix {
    model.lm_head_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn adam_reduces_loss_on_fixed_batch() {
        let cfg = ModelConfig::test_tiny(16);
        let mut model = Model::new(&cfg, 3);
        let mut adam = Adam::new(
            &model,
            AdamConfig {
                lr: 5e-3,
                ..AdamConfig::default()
            },
        );
        let seqs: Vec<Vec<u32>> = vec![vec![1, 2, 3, 4, 5, 6], vec![2, 4, 6, 8, 10, 12]];
        let loss_of = |m: &Model| -> f32 {
            seqs.iter().map(|s| m.sequence_loss(s)).sum::<f32>() / seqs.len() as f32
        };
        let before = loss_of(&model);
        for _ in 0..30 {
            let mut total: Option<crate::model::ModelGrads> = None;
            for s in &seqs {
                let (_, g) = model.sequence_grads(s);
                match &mut total {
                    None => total = Some(g),
                    Some(t) => t.add_assign(&g),
                }
            }
            let mut g = total.unwrap();
            g.scale_assign(1.0 / seqs.len() as f32);
            adam.step(&mut model, &g);
        }
        let after = loss_of(&model);
        assert!(
            after < before - 0.5,
            "Adam should memorize a 2-sequence batch: {before} -> {after}"
        );
        assert_eq!(adam.step_count(), 30);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let cfg = ModelConfig::test_tiny(16);
        let mut model = Model::new(&cfg, 4);
        let before = model.forward(&[1, 2, 3]);
        let mut adam = Adam::new(
            &model,
            AdamConfig {
                lr: 1e-3,
                clip_norm: 1e-6,
                ..AdamConfig::default()
            },
        );
        let (_, g) = model.sequence_grads(&[1, 2, 3, 4]);
        adam.step(&mut model, &g);
        let after = model.forward(&[1, 2, 3]);
        // With a microscopic clip the parameters barely move... but Adam's
        // normalized update still moves each weight by ~lr. The check:
        // outputs stay finite and close.
        assert!(after.all_finite());
        assert!(before.sub(&after).abs_max() < 1.0);
    }
}
