//! The decoder-only transformer model: embedding, blocks, LM head,
//! loss/gradient computation, layer addressing and checkpointing.

use std::collections::BTreeMap;

use aptq_artifact::{ArtifactError, ArtifactKind, Fnv64};
use aptq_obs::Recorder;
use aptq_tensor::activation::{log_sum_exp, softmax};
use aptq_tensor::{init, Matrix};
use serde::{Deserialize, Serialize};

use crate::block::{BlockGrads, TransformerBlock};
use crate::capture::{BlockCapture, ModelCapture};
use crate::config::ModelConfig;
use crate::linear::{Linear, LinearOp};
use crate::rmsnorm::RmsNorm;
use crate::rope::RopeTable;
use crate::LmError;

/// Which projection inside a block a [`LayerRef`] points at.
///
/// The ordering (`Q, K, V, O, Gate, Up, Down`) is the deterministic
/// iteration order used everywhere: quantization schedules, sensitivity
/// reports, mixed-precision allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerKind {
    /// Attention query projection (`self_attn.q_proj`).
    Q,
    /// Attention key projection (`self_attn.k_proj`).
    K,
    /// Attention value projection (`self_attn.v_proj`).
    V,
    /// Attention output projection (`self_attn.o_proj`).
    O,
    /// FFN gate projection (`mlp.gate_proj`).
    Gate,
    /// FFN up projection (`mlp.up_proj`).
    Up,
    /// FFN down projection (`mlp.down_proj`).
    Down,
}

impl LayerKind {
    /// All kinds in canonical order.
    pub const ALL: [LayerKind; 7] = [
        LayerKind::Q,
        LayerKind::K,
        LayerKind::V,
        LayerKind::O,
        LayerKind::Gate,
        LayerKind::Up,
        LayerKind::Down,
    ];

    /// Whether this projection lives in the attention sub-layer.
    pub fn is_attention(self) -> bool {
        matches!(
            self,
            LayerKind::Q | LayerKind::K | LayerKind::V | LayerKind::O
        )
    }

    /// The HuggingFace-style layer name used in reports (matches the
    /// `layerName` strings in the paper's Algorithm 1).
    pub fn hf_name(self) -> &'static str {
        match self {
            LayerKind::Q => "self_attn.q_proj",
            LayerKind::K => "self_attn.k_proj",
            LayerKind::V => "self_attn.v_proj",
            LayerKind::O => "self_attn.o_proj",
            LayerKind::Gate => "mlp.gate_proj",
            LayerKind::Up => "mlp.up_proj",
            LayerKind::Down => "mlp.down_proj",
        }
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.hf_name())
    }
}

/// Address of one quantizable weight matrix: block index + projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerRef {
    /// Transformer block index.
    pub block: usize,
    /// Projection within the block.
    pub kind: LayerKind,
}

impl std::fmt::Display for LayerRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "layers.{}.{}", self.block, self.kind)
    }
}

/// Gradients of every model parameter, mirroring the model structure.
#[derive(Debug, Clone)]
pub struct ModelGrads {
    /// Embedding gradient (`vocab × d_model`).
    pub embed: Matrix,
    /// Per-block gradients.
    pub blocks: Vec<BlockGrads>,
    /// Final norm gain gradient.
    pub dfinal_norm: Vec<f32>,
    /// LM head gradient (`d_model × vocab`).
    pub lm_head: Matrix,
}

impl ModelGrads {
    /// Accumulates `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on structural mismatch.
    pub fn add_assign(&mut self, other: &ModelGrads) {
        self.embed.add_assign(&other.embed);
        self.lm_head.add_assign(&other.lm_head);
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "grad merge: block count"
        );
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            a.attn.dwq.add_assign(&b.attn.dwq);
            a.attn.dwk.add_assign(&b.attn.dwk);
            a.attn.dwv.add_assign(&b.attn.dwv);
            a.attn.dwo.add_assign(&b.attn.dwo);
            a.ffn.dgate.add_assign(&b.ffn.dgate);
            a.ffn.dup.add_assign(&b.ffn.dup);
            a.ffn.ddown.add_assign(&b.ffn.ddown);
            for (x, y) in a.dnorm1.iter_mut().zip(b.dnorm1.iter()) {
                *x += y;
            }
            for (x, y) in a.dnorm2.iter_mut().zip(b.dnorm2.iter()) {
                *x += y;
            }
        }
        for (x, y) in self.dfinal_norm.iter_mut().zip(other.dfinal_norm.iter()) {
            *x += y;
        }
    }

    /// Scales every gradient by `s` (e.g. `1/batch`).
    pub fn scale_assign(&mut self, s: f32) {
        self.embed.scale_assign(s);
        self.lm_head.scale_assign(s);
        for b in &mut self.blocks {
            b.attn.dwq.scale_assign(s);
            b.attn.dwk.scale_assign(s);
            b.attn.dwv.scale_assign(s);
            b.attn.dwo.scale_assign(s);
            b.ffn.dgate.scale_assign(s);
            b.ffn.dup.scale_assign(s);
            b.ffn.ddown.scale_assign(s);
            for x in &mut b.dnorm1 {
                *x *= s;
            }
            for x in &mut b.dnorm2 {
                *x *= s;
            }
        }
        for x in &mut self.dfinal_norm {
            *x *= s;
        }
    }

    /// Global L2 norm over all gradients (used for clipping).
    pub fn global_norm(&self) -> f32 {
        let mut s = self.embed.frobenius_norm_sq() as f64 + self.lm_head.frobenius_norm_sq() as f64;
        for b in &self.blocks {
            s += b.attn.dwq.frobenius_norm_sq() as f64;
            s += b.attn.dwk.frobenius_norm_sq() as f64;
            s += b.attn.dwv.frobenius_norm_sq() as f64;
            s += b.attn.dwo.frobenius_norm_sq() as f64;
            s += b.ffn.dgate.frobenius_norm_sq() as f64;
            s += b.ffn.dup.frobenius_norm_sq() as f64;
            s += b.ffn.ddown.frobenius_norm_sq() as f64;
            s += b
                .dnorm1
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>();
            s += b
                .dnorm2
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>();
        }
        s += self
            .dfinal_norm
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>();
        (s.sqrt()) as f32
    }
}

/// A decoder-only LLaMA-family transformer, generic over the linear
/// operator `L` executing its projections.
///
/// There is exactly **one** forward implementation: the fp32 training
/// stack ([`Model`] `= ModelOf<Linear>`) and the packed quantized stack
/// (`aptq_qmodel::QuantizedModel`, over `QuantizedLinear`) are both
/// instantiations of this type, so they cannot drift apart.
///
/// # Example
///
/// ```
/// use aptq_lm::{Model, ModelConfig};
///
/// let model = Model::new(&ModelConfig::test_tiny(16), 0);
/// let logits = model.forward(&[1, 2, 3]);
/// assert_eq!(logits.rows(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOf<L = Linear> {
    cfg: ModelConfig,
    embed: Matrix,
    blocks: Vec<TransformerBlock<L>>,
    final_norm: RmsNorm,
    lm_head: Matrix,
    rope: RopeTable,
}

/// The fp32 training/reference model — [`ModelOf`] over [`Linear`].
pub type Model = ModelOf<Linear>;

impl<L: LinearOp> ModelOf<L> {
    /// Assembles a model from prebuilt blocks and float parts (the
    /// weight-install path used by the quantized stack; float models
    /// use [`Model::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or the block count does not
    /// match `cfg.n_layers`.
    pub fn from_parts(
        cfg: ModelConfig,
        embed: Matrix,
        blocks: Vec<TransformerBlock<L>>,
        final_norm: RmsNorm,
        lm_head: Matrix,
    ) -> Self {
        cfg.validate().expect("invalid model config");
        assert_eq!(blocks.len(), cfg.n_layers, "from_parts: block count");
        assert_eq!(
            embed.shape(),
            (cfg.vocab_size, cfg.d_model),
            "from_parts: embedding shape"
        );
        assert_eq!(
            lm_head.shape(),
            (cfg.d_model, cfg.vocab_size),
            "from_parts: LM head shape"
        );
        let rope = RopeTable::new(cfg.d_head(), cfg.max_seq_len, cfg.rope_theta);
        ModelOf {
            cfg,
            embed,
            blocks,
            final_norm,
            lm_head,
            rope,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The RoPE table used by all blocks.
    pub fn rope(&self) -> &RopeTable {
        &self.rope
    }

    /// Immutable block access.
    pub fn blocks(&self) -> &[TransformerBlock<L>] {
        &self.blocks
    }

    /// Mutable block access (optimizer / quantizer / fault-injection).
    pub fn blocks_mut(&mut self) -> &mut [TransformerBlock<L>] {
        &mut self.blocks
    }

    /// Embedding matrix (`vocab × d_model`).
    pub fn embed(&self) -> &Matrix {
        &self.embed
    }

    /// LM head matrix (`d_model × vocab`).
    pub fn lm_head(&self) -> &Matrix {
        &self.lm_head
    }

    /// Final RMSNorm.
    pub fn final_norm(&self) -> &RmsNorm {
        &self.final_norm
    }

    /// All quantizable layer addresses in canonical order
    /// (block-major, then `Q,K,V,O,Gate,Up,Down`).
    ///
    /// Embeddings and LM head are excluded, matching the paper (GPTQ-family
    /// methods leave them in fp16).
    pub fn layer_refs(&self) -> Vec<LayerRef> {
        let mut v = Vec::with_capacity(self.blocks.len() * LayerKind::ALL.len());
        for block in 0..self.blocks.len() {
            for kind in LayerKind::ALL {
                v.push(LayerRef { block, kind });
            }
        }
        v
    }

    /// Embeds a token sequence into a `(T × d_model)` activation matrix.
    ///
    /// # Panics
    ///
    /// Panics if a token is out of range (use [`ModelOf::try_forward`]
    /// for a fallible path).
    pub fn embed_tokens(&self, tokens: &[u32]) -> Matrix {
        let mut x = Matrix::zeros(tokens.len(), self.cfg.d_model);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(
                (t as usize) < self.cfg.vocab_size,
                "token {t} out of range for vocab {}",
                self.cfg.vocab_size
            );
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }
        x
    }

    /// Full forward pass returning next-token logits (`T × vocab`).
    ///
    /// # HotPath
    ///
    /// Allocation budget: per-block activation matrices sized by the
    /// sequence, allocated once per block; inner loops are heap-free.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range tokens or sequences longer than
    /// `max_seq_len`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward(&self, tokens: &[u32]) -> Matrix {
        self.forward_opt(tokens, None)
    }

    /// [`forward`](ModelOf::forward) recording per-projection work into
    /// `rec` via every operator's [`LinearOp::forward_into`] hook
    /// (packed operators count `qmodel/qlinear/…` work; fp32 records
    /// nothing).
    ///
    /// # Panics
    ///
    /// Same as [`forward`](ModelOf::forward).
    /// # Determinism
    ///
    /// Logits *and counters* are bit-identical at any `APTQ_THREADS`
    /// value; counters depend only on shapes.
    pub fn forward_recorded(&self, tokens: &[u32], rec: &mut Recorder) -> Matrix {
        self.forward_opt(tokens, Some(rec))
    }

    fn forward_opt(&self, tokens: &[u32], mut rec: Option<&mut Recorder>) -> Matrix {
        let mut x = self.embed_tokens(tokens);
        for block in &self.blocks {
            x = block.forward_opt(&x, &self.rope, rec.as_deref_mut()).0;
        }
        let (normed, _) = self.final_norm.forward(&x);
        normed.matmul(&self.lm_head)
    }

    /// Fallible forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::EmptyInput`] for an empty sequence and
    /// [`LmError::TokenOutOfRange`] for invalid token ids.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn try_forward(&self, tokens: &[u32]) -> Result<Matrix, LmError> {
        if tokens.is_empty() {
            return Err(LmError::EmptyInput);
        }
        for &t in tokens {
            if t as usize >= self.cfg.vocab_size {
                return Err(LmError::TokenOutOfRange {
                    token: t,
                    vocab: self.cfg.vocab_size,
                });
            }
        }
        Ok(self.forward(tokens))
    }
}

impl Model {
    /// Creates a model with seeded random initialization.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ModelConfig::validate`]).
    pub fn new(cfg: &ModelConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid model config");
        let mut rng = init::rng(seed);
        let embed = init::normal(cfg.vocab_size, cfg.d_model, 0.02, &mut rng);
        let blocks = (0..cfg.n_layers)
            .map(|_| TransformerBlock::new(cfg, &mut rng))
            .collect();
        let final_norm = RmsNorm::new(cfg.d_model, cfg.norm_eps);
        let lm_head = init::kaiming(cfg.d_model, cfg.vocab_size, &mut rng);
        let rope = RopeTable::new(cfg.d_head(), cfg.max_seq_len, cfg.rope_theta);
        Model {
            cfg: cfg.clone(),
            embed,
            blocks,
            final_norm,
            lm_head,
            rope,
        }
    }

    /// Mutable embedding access (trainer use).
    pub fn embed_mut(&mut self) -> &mut Matrix {
        &mut self.embed
    }

    /// Mutable LM head access (trainer use).
    pub fn lm_head_mut(&mut self) -> &mut Matrix {
        &mut self.lm_head
    }

    /// Mutable final-norm gain (trainer use).
    pub fn final_norm_gain_mut(&mut self) -> &mut [f32] {
        self.final_norm.gain_mut()
    }

    /// Immutable access to one projection weight (`d_in × d_out`).
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn layer_weight(&self, r: LayerRef) -> &Matrix {
        let b = &self.blocks[r.block];
        match r.kind {
            LayerKind::Q => b.attn.wq().weight(),
            LayerKind::K => b.attn.wk().weight(),
            LayerKind::V => b.attn.wv().weight(),
            LayerKind::O => b.attn.wo().weight(),
            LayerKind::Gate => b.ffn.gate().weight(),
            LayerKind::Up => b.ffn.up().weight(),
            LayerKind::Down => b.ffn.down().weight(),
        }
    }

    /// Mutable access to one projection weight.
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn layer_weight_mut(&mut self, r: LayerRef) -> &mut Matrix {
        let b = &mut self.blocks[r.block];
        match r.kind {
            LayerKind::Q => b.attn.wq_mut().weight_mut(),
            LayerKind::K => b.attn.wk_mut().weight_mut(),
            LayerKind::V => b.attn.wv_mut().weight_mut(),
            LayerKind::O => b.attn.wo_mut().weight_mut(),
            LayerKind::Gate => b.ffn.gate_mut().weight_mut(),
            LayerKind::Up => b.ffn.up_mut().weight_mut(),
            LayerKind::Down => b.ffn.down_mut().weight_mut(),
        }
    }

    /// Forward pass that records per-block calibration captures.
    ///
    /// Used by the quantization pipelines: the returned
    /// [`ModelCapture`] carries everything both GPTQ and APTQ need.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward_capture(&self, tokens: &[u32]) -> (Matrix, ModelCapture) {
        let mut x = self.embed_tokens(tokens);
        let mut captures = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (y, cache) = block.forward(&x, &self.rope);
            captures.push(BlockCapture::from(cache));
            x = y;
        }
        let (normed, _) = self.final_norm.forward(&x);
        let logits = normed.matmul(&self.lm_head);
        (logits, ModelCapture { blocks: captures })
    }

    /// Mean next-token cross-entropy of a sequence (nats/token).
    ///
    /// Positions `0..T−1` predict tokens `1..T`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence has fewer than 2 tokens.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn sequence_loss(&self, tokens: &[u32]) -> f32 {
        assert!(tokens.len() >= 2, "sequence_loss: need at least 2 tokens");
        let logits = self.forward(tokens);
        let mut total = 0.0f64;
        for i in 0..tokens.len() - 1 {
            let row = logits.row(i);
            let target = tokens[i + 1] as usize;
            total += (log_sum_exp(row) - row[target]) as f64;
        }
        (total / (tokens.len() - 1) as f64) as f32
    }

    /// Loss and full parameter gradients for one sequence.
    ///
    /// Returns `(mean cross-entropy, gradients)`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence has fewer than 2 tokens.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn sequence_grads(&self, tokens: &[u32]) -> (f32, ModelGrads) {
        assert!(tokens.len() >= 2, "sequence_grads: need at least 2 tokens");
        let t = tokens.len();
        let n_pred = (t - 1) as f32;

        // Forward with caches.
        let mut x = self.embed_tokens(tokens);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (y, cache) = block.forward(&x, &self.rope);
            caches.push(cache);
            x = y;
        }
        let (normed, final_cache) = self.final_norm.forward(&x);
        let logits = normed.matmul(&self.lm_head);

        // Loss and dlogits = (softmax − onehot)/n_pred on predicting rows.
        let probs = softmax(&logits);
        let mut loss = 0.0f64;
        let mut dlogits = Matrix::zeros(t, self.cfg.vocab_size);
        for i in 0..t - 1 {
            let target = tokens[i + 1] as usize;
            let row = logits.row(i);
            loss += (log_sum_exp(row) - row[target]) as f64;
            let drow = dlogits.row_mut(i);
            drow.copy_from_slice(probs.row(i));
            drow[target] -= 1.0;
            for v in drow.iter_mut() {
                *v /= n_pred;
            }
        }
        let loss = (loss / n_pred as f64) as f32;

        // Backward through LM head.
        let dnormed = dlogits.matmul_nt(&self.lm_head);
        // lm_head is d_model × vocab; dlm_head = normedᵀ · dlogits.
        let dlm_head = normed.matmul_tn(&dlogits);
        let (mut dx, dfinal_norm) = self.final_norm.backward(&final_cache, &dnormed);

        // Backward through blocks in reverse.
        let mut block_grads: Vec<Option<BlockGrads>> = vec![None; self.blocks.len()];
        for (idx, block) in self.blocks.iter().enumerate().rev() {
            let (dxi, grads) = block.backward(&caches[idx], &dx, &self.rope);
            block_grads[idx] = Some(grads);
            dx = dxi;
        }
        let block_grads: Vec<BlockGrads> = block_grads
            .into_iter()
            .map(|g| g.expect("grad missing"))
            .collect();

        // Embedding gradient: scatter rows.
        let mut dembed = Matrix::zeros(self.cfg.vocab_size, self.cfg.d_model);
        for (i, &tok) in tokens.iter().enumerate() {
            let src = dx.row(i).to_vec();
            let dst = dembed.row_mut(tok as usize);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }

        (
            loss,
            ModelGrads {
                embed: dembed,
                blocks: block_grads,
                dfinal_norm,
                lm_head: dlm_head,
            },
        )
    }

    /// Serializes the model to bare JSON (no integrity envelope; see
    /// [`Model::to_envelope_json`] for the checksummed artifact).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] on serialization failure.
    pub fn to_json(&self) -> Result<String, LmError> {
        serde_json::to_string(self)
            .map_err(|e| LmError::Checkpoint(ArtifactError::Malformed(e.to_string())))
    }

    /// Restores a model from JSON produced by [`Model::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] on malformed input.
    pub fn from_json(json: &str) -> Result<Model, LmError> {
        serde_json::from_str(json)
            .map_err(|e| LmError::Checkpoint(ArtifactError::Malformed(e.to_string())))
    }

    /// Serializes the model into a checksummed
    /// [`aptq_artifact`] envelope: a header carrying the FNV-1a 64 of
    /// every payload byte plus per-tensor section checksums
    /// (`embed`, `lm_head`, and one per projection weight), followed
    /// by the [`Model::to_json`] payload.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] on serialization failure.
    pub fn to_envelope_json(&self) -> Result<String, LmError> {
        let payload = self.to_json()?;
        let text = aptq_artifact::seal(ArtifactKind::Model, &self.section_checksums(), &payload)?;
        Ok(text)
    }

    /// Restores a model from a [`Model::to_envelope_json`] artifact,
    /// validating the header version, the payload checksum, and every
    /// per-tensor section checksum against the decoded weights.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::Checkpoint`] wrapping the structured
    /// [`ArtifactError`]: `Malformed` for framing/JSON damage,
    /// `UnsupportedVersion`/`KindMismatch` for wrong headers, and
    /// `ChecksumMismatch` naming the corrupted section.
    pub fn from_envelope_json(text: &str) -> Result<Model, LmError> {
        let opened = aptq_artifact::open(ArtifactKind::Model, text)?;
        let model = Model::from_json(opened.payload)?;
        aptq_artifact::verify_sections(&opened.sections, &model.section_checksums())?;
        Ok(model)
    }

    /// Per-tensor FNV-1a 64 checksums: `embed`, `lm_head`, and every
    /// projection under its canonical `layers.{block}.{name}` key.
    fn section_checksums(&self) -> BTreeMap<String, u64> {
        let mut sections = BTreeMap::new();
        sections.insert("embed".to_string(), matrix_fnv(&self.embed));
        sections.insert("lm_head".to_string(), matrix_fnv(&self.lm_head));
        for r in self.layer_refs() {
            sections.insert(r.to_string(), matrix_fnv(self.layer_weight(r)));
        }
        sections
    }
}

/// FNV-1a 64 over a matrix: shape, then every value's f32 bit pattern
/// (the same per-word scheme `aptq_core::QuantSession` fingerprints
/// models with).
fn matrix_fnv(m: &Matrix) -> u64 {
    let mut h = Fnv64::new();
    h.eat_u64(m.rows() as u64);
    h.eat_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.eat_word(u64::from(v.to_bits()));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 7)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let m = tiny();
        let logits = m.forward(&[0, 1, 2, 3, 4]);
        assert_eq!(logits.shape(), (5, 16));
        assert!(logits.all_finite());
    }

    #[test]
    fn try_forward_validates() {
        let m = tiny();
        assert!(matches!(m.try_forward(&[]), Err(LmError::EmptyInput)));
        assert!(matches!(
            m.try_forward(&[99]),
            Err(LmError::TokenOutOfRange { token: 99, .. })
        ));
        assert!(m.try_forward(&[1, 2]).is_ok());
    }

    #[test]
    fn layer_refs_canonical_order() {
        let m = tiny();
        let refs = m.layer_refs();
        assert_eq!(refs.len(), 2 * 7);
        assert_eq!(
            refs[0],
            LayerRef {
                block: 0,
                kind: LayerKind::Q
            }
        );
        assert_eq!(
            refs[7],
            LayerRef {
                block: 1,
                kind: LayerKind::Q
            }
        );
        assert_eq!(refs[6].kind, LayerKind::Down);
    }

    #[test]
    fn layer_weight_access_roundtrip() {
        let mut m = tiny();
        let r = LayerRef {
            block: 1,
            kind: LayerKind::Gate,
        };
        let before = m.layer_weight(r).clone();
        m.layer_weight_mut(r).scale_assign(0.0);
        assert_eq!(m.layer_weight(r).frobenius_norm(), 0.0);
        assert_ne!(before.frobenius_norm(), 0.0);
    }

    #[test]
    fn layer_kind_names_match_paper() {
        assert_eq!(LayerKind::K.hf_name(), "self_attn.k_proj");
        assert!(LayerKind::K.is_attention());
        assert!(!LayerKind::Down.is_attention());
        let r = LayerRef {
            block: 3,
            kind: LayerKind::V,
        };
        assert_eq!(r.to_string(), "layers.3.self_attn.v_proj");
    }

    #[test]
    fn capture_contains_all_blocks() {
        let m = tiny();
        let (logits, cap) = m.forward_capture(&[1, 2, 3]);
        assert_eq!(cap.n_blocks(), 2);
        assert_eq!(cap.seq_len(), 3);
        // Capture path must agree with plain forward.
        let plain = m.forward(&[1, 2, 3]);
        for (a, b) in logits.as_slice().iter().zip(plain.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sequence_loss_near_uniform_at_init() {
        let m = tiny();
        let loss = m.sequence_loss(&[1, 2, 3, 4, 5, 6]);
        let uniform = (16f32).ln();
        // Random logits push the CE a bit above ln(V); it must stay in the
        // same ballpark and never fall below the uniform floor minus noise.
        assert!(
            loss > uniform - 0.5 && loss < uniform + 2.5,
            "loss {loss} vs ln(V)={uniform}"
        );
    }

    #[test]
    fn sequence_grads_match_finite_difference() {
        let mut m = tiny();
        let tokens = [1u32, 5, 3, 2, 8];
        let (_, grads) = m.sequence_grads(&tokens);
        let eps = 1e-2f32;

        // Check an lm_head entry.
        {
            let (i, j) = (3, 7);
            let orig = m.lm_head[(i, j)];
            m.lm_head[(i, j)] = orig + eps;
            let lp = m.sequence_loss(&tokens);
            m.lm_head[(i, j)] = orig - eps;
            let lm = m.sequence_loss(&tokens);
            m.lm_head[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grads.lm_head[(i, j)] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "lm_head: {} vs {fd}",
                grads.lm_head[(i, j)]
            );
        }
        // Check an embedding entry (token 5 is in the sequence).
        {
            let (i, j) = (5, 2);
            let orig = m.embed[(i, j)];
            m.embed[(i, j)] = orig + eps;
            let lp = m.sequence_loss(&tokens);
            m.embed[(i, j)] = orig - eps;
            let lm = m.sequence_loss(&tokens);
            m.embed[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grads.embed[(i, j)] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "embed: {} vs {fd}",
                grads.embed[(i, j)]
            );
        }
        // Check one attention weight entry.
        {
            let r = LayerRef {
                block: 0,
                kind: LayerKind::Q,
            };
            let (i, j) = (2, 3);
            let grad = grads.blocks[0].attn.dwq[(i, j)];
            let orig = m.layer_weight(r)[(i, j)];
            m.layer_weight_mut(r)[(i, j)] = orig + eps;
            let lp = m.sequence_loss(&tokens);
            m.layer_weight_mut(r)[(i, j)] = orig - eps;
            let lm = m.sequence_loss(&tokens);
            m.layer_weight_mut(r)[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "wq: {grad} vs {fd}"
            );
        }
    }

    #[test]
    fn grads_merge_and_scale() {
        let m = tiny();
        let (_, mut g1) = m.sequence_grads(&[1, 2, 3]);
        let (_, g2) = m.sequence_grads(&[4, 5, 6]);
        let norm1 = g1.global_norm();
        g1.add_assign(&g2);
        g1.scale_assign(0.5);
        assert!(g1.global_norm() > 0.0);
        assert!(norm1 > 0.0);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_outputs() {
        let m = tiny();
        let json = m.to_json().unwrap();
        let m2 = Model::from_json(&json).unwrap();
        let a = m.forward(&[1, 2, 3]);
        let b = m2.forward(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Model::from_json("not json"),
            Err(LmError::Checkpoint(_))
        ));
    }

    #[test]
    fn envelope_roundtrip_preserves_outputs() {
        let m = tiny();
        let text = m.to_envelope_json().unwrap();
        let m2 = Model::from_envelope_json(&text).unwrap();
        assert_eq!(m.forward(&[1, 2, 3]), m2.forward(&[1, 2, 3]));
    }

    #[test]
    fn envelope_detects_payload_corruption() {
        let m = tiny();
        let text = m.to_envelope_json().unwrap();
        // Flip one payload character (past the header line).
        let head_len = text.find('\n').unwrap();
        let idx = head_len + text.len() / 2;
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'1' { b'2' } else { b'1' };
        let tampered = String::from_utf8(bytes).unwrap();
        match Model::from_envelope_json(&tampered) {
            Err(LmError::Checkpoint(_)) => {}
            other => panic!("tampered envelope must fail integrity: {other:?}"),
        }
    }

    #[test]
    fn envelope_rejects_wrong_kind_and_garbage() {
        assert!(matches!(
            Model::from_envelope_json("junk"),
            Err(LmError::Checkpoint(_))
        ));
        let sealed =
            aptq_artifact::seal(aptq_artifact::ArtifactKind::Plan, &BTreeMap::new(), "{}").unwrap();
        assert!(matches!(
            Model::from_envelope_json(&sealed),
            Err(LmError::Checkpoint(
                aptq_artifact::ArtifactError::KindMismatch { .. }
            ))
        ));
    }

    #[test]
    fn models_with_different_seeds_differ() {
        let cfg = ModelConfig::test_tiny(16);
        let a = Model::new(&cfg, 1);
        let b = Model::new(&cfg, 2);
        assert_ne!(a.forward(&[1, 2]), b.forward(&[1, 2]));
    }
}
