//! A transformer block: pre-norm attention and SwiGLU with residuals.

use aptq_obs::Recorder;
use aptq_tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::attention::{AttentionCache, AttentionGrads, MultiHeadAttention};
use crate::config::ModelConfig;
use crate::ffn::{SwiGlu, SwiGluCache, SwiGluGrads};
use crate::linear::{Linear, LinearOp};
use crate::rmsnorm::{RmsNorm, RmsNormCache};
use crate::rope::RopeTable;

/// One pre-norm LLaMA block, generic over the linear operator `L`:
/// `h = x + Attn(RMSNorm(x))`, `y = h + FFN(RMSNorm(h))`.
///
/// Norms stay fp32 for every `L` (as in the paper's GPTQ-family
/// setting); only the seven projections go through [`LinearOp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerBlock<L = Linear> {
    /// Attention sub-layer.
    pub attn: MultiHeadAttention<L>,
    /// Feed-forward sub-layer.
    pub ffn: SwiGlu<L>,
    /// Norm before attention.
    pub norm1: RmsNorm,
    /// Norm before the FFN.
    pub norm2: RmsNorm,
}

/// Forward cache for [`TransformerBlock::backward`].
#[derive(Debug, Clone)]
pub struct BlockForwardCache {
    /// Cache of the first RMSNorm.
    pub norm1: RmsNormCache,
    /// Cache of the attention sub-layer.
    pub attn: AttentionCache,
    /// Cache of the second RMSNorm.
    pub norm2: RmsNormCache,
    /// Cache of the FFN sub-layer.
    pub ffn: SwiGluCache,
}

/// Gradients of all block parameters.
#[derive(Debug, Clone)]
pub struct BlockGrads {
    /// Attention projection gradients.
    pub attn: AttentionGrads,
    /// FFN projection gradients.
    pub ffn: SwiGluGrads,
    /// Gradient of the first norm's gain.
    pub dnorm1: Vec<f32>,
    /// Gradient of the second norm's gain.
    pub dnorm2: Vec<f32>,
}

impl<L: LinearOp> TransformerBlock<L> {
    /// Assembles a block from prebuilt sub-layers (the weight-install
    /// path used by the quantized stack).
    pub fn from_parts(
        attn: MultiHeadAttention<L>,
        ffn: SwiGlu<L>,
        norm1: RmsNorm,
        norm2: RmsNorm,
    ) -> Self {
        TransformerBlock {
            attn,
            ffn,
            norm1,
            norm2,
        }
    }

    /// Forward pass; returns `(output, cache)`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward(&self, x: &Matrix, rope: &RopeTable) -> (Matrix, BlockForwardCache) {
        self.forward_opt(x, rope, None)
    }

    /// [`forward`](TransformerBlock::forward) with an optional recorder
    /// threaded into every projection's [`LinearOp::forward_into`] hook.
    ///
    /// # HotPath
    ///
    /// Allocation budget: residual/norm/sub-layer buffers sized by the
    /// input, allocated once per call; inner loops are heap-free.
    ///
    /// # Determinism
    ///
    /// Outputs *and counters* are bit-identical at any `APTQ_THREADS`
    /// value: matmuls run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) and counters depend only on shapes.
    pub fn forward_opt(
        &self,
        x: &Matrix,
        rope: &RopeTable,
        mut rec: Option<&mut Recorder>,
    ) -> (Matrix, BlockForwardCache) {
        let (normed1, c_norm1) = self.norm1.forward(x);
        let (attn_out, c_attn) = self.attn.forward_opt(&normed1, rope, rec.as_deref_mut());
        // audit:allow(alloc): residual buffer, one per call, sized by the input
        let mut h = x.clone();
        h.add_assign(&attn_out);
        let (normed2, c_norm2) = self.norm2.forward(&h);
        let (ffn_out, c_ffn) = self.ffn.forward_opt(&normed2, rec);
        let mut y = h;
        y.add_assign(&ffn_out);
        (
            y,
            BlockForwardCache {
                norm1: c_norm1,
                attn: c_attn,
                norm2: c_norm2,
                ffn: c_ffn,
            },
        )
    }

    /// Fast forward pass without cache (inference / evaluation).
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward_no_cache(&self, x: &Matrix, rope: &RopeTable) -> Matrix {
        // Reuses the caching path; caches are small relative to the
        // matmuls at the scales this crate targets.
        self.forward(x, rope).0
    }
}

impl TransformerBlock {
    /// Creates a block with random weights per the config.
    pub fn new(cfg: &ModelConfig, rng: &mut StdRng) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(cfg.d_model, cfg.n_heads, rng),
            ffn: SwiGlu::new(cfg.d_model, cfg.d_ff, rng),
            norm1: RmsNorm::new(cfg.d_model, cfg.norm_eps),
            norm2: RmsNorm::new(cfg.d_model, cfg.norm_eps),
        }
    }

    /// Backward pass; returns `(dx, grads)`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn backward(
        &self,
        cache: &BlockForwardCache,
        dy: &Matrix,
        rope: &RopeTable,
    ) -> (Matrix, BlockGrads) {
        // y = h + ffn(norm2(h))
        let (dnormed2, ffn_grads) = self.ffn.backward(&cache.ffn, dy);
        let (dh_from_ffn, dnorm2) = self.norm2.backward(&cache.norm2, &dnormed2);
        let mut dh = dy.clone();
        dh.add_assign(&dh_from_ffn);

        // h = x + attn(norm1(x))
        let (dnormed1, attn_grads) = self.attn.backward(&cache.attn, &dh, rope);
        let (dx_from_attn, dnorm1) = self.norm1.backward(&cache.norm1, &dnormed1);
        let mut dx = dh;
        dx.add_assign(&dx_from_attn);

        (
            dx,
            BlockGrads {
                attn: attn_grads,
                ffn: ffn_grads,
                dnorm1,
                dnorm2,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init;

    fn setup(seed: u64) -> (TransformerBlock, Matrix, RopeTable) {
        let cfg = ModelConfig::test_tiny(16);
        let mut rng = init::rng(seed);
        let block = TransformerBlock::new(&cfg, &mut rng);
        let x = init::normal(5, cfg.d_model, 1.0, &mut rng);
        let rope = RopeTable::new(cfg.d_head(), cfg.max_seq_len, cfg.rope_theta);
        (block, x, rope)
    }

    #[test]
    fn forward_preserves_shape() {
        let (block, x, rope) = setup(0);
        let (y, _) = block.forward(&x, &rope);
        assert_eq!(y.shape(), x.shape());
        assert!(y.all_finite());
    }

    #[test]
    fn residual_keeps_signal() {
        // Output should correlate with input thanks to the residual path.
        let (block, x, rope) = setup(1);
        let (y, _) = block.forward(&x, &rope);
        let diff = y.sub(&x);
        assert!(diff.frobenius_norm() > 0.0, "block must do something");
        assert!(
            diff.frobenius_norm() < 10.0 * x.frobenius_norm(),
            "block output should stay bounded at init"
        );
    }

    #[test]
    fn block_is_causal_end_to_end() {
        let (block, x, rope) = setup(2);
        let (y1, _) = block.forward(&x, &rope);
        let mut x2 = x.clone();
        for v in x2.row_mut(4) {
            *v = -*v + 0.5;
        }
        let (y2, _) = block.forward(&x2, &rope);
        for i in 0..4 {
            for j in 0..x.cols() {
                assert!((y1[(i, j)] - y2[(i, j)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (block, x, rope) = setup(3);
        let dy = init::normal(5, 16, 1.0, &mut init::rng(4));
        let (_, cache) = block.forward(&x, &rope);
        let (dx, _) = block.backward(&cache, &dy, &rope);
        let eps = 1e-2f32;
        for (i, j) in [(0, 0), (2, 7), (4, 15)] {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            let fd = (block.forward(&xp, &rope).0.hadamard(&dy).sum()
                - block.forward(&xm, &rope).0.hadamard(&dy).sum())
                / (2.0 * eps);
            assert!(
                (dx[(i, j)] - fd).abs() < 3e-2 * (1.0 + fd.abs()),
                "dx({i},{j}): {} vs {fd}",
                dx[(i, j)]
            );
        }
    }

    #[test]
    fn grads_have_parameter_shapes() {
        let (block, x, rope) = setup(5);
        let dy = init::normal(5, 16, 1.0, &mut init::rng(6));
        let (_, cache) = block.forward(&x, &rope);
        let (_, grads) = block.backward(&cache, &dy, &rope);
        assert_eq!(grads.attn.dwq.shape(), block.attn.wq().weight().shape());
        assert_eq!(grads.ffn.ddown.shape(), block.ffn.down().weight().shape());
        assert_eq!(grads.dnorm1.len(), 16);
        assert_eq!(grads.dnorm2.len(), 16);
    }
}
